//! Speculative store buffer with store-to-load forwarding.

use vanguard_isa::Memory;

/// One buffered store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreEntry {
    /// Word-aligned address.
    pub addr: u64,
    /// Value.
    pub value: u64,
    /// Issue sequence number (for rollback).
    pub seq: u64,
    /// Cycle the store issued (for drain safety).
    pub issue_cycle: u64,
}

/// A FIFO of issued-but-not-committed stores.
///
/// Stores execute speculatively into this buffer; younger-than-checkpoint
/// entries are discarded on a misprediction rollback, and entries old
/// enough to be unsquashable drain into the architectural [`Memory`]
/// image. Loads forward from the youngest matching entry.
#[derive(Clone, Debug, Default)]
pub struct StoreBuffer {
    entries: Vec<StoreEntry>,
}

impl StoreBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a store.
    pub fn push(&mut self, addr: u64, value: u64, seq: u64, issue_cycle: u64) {
        self.entries.push(StoreEntry {
            addr: addr & !7,
            value,
            seq,
            issue_cycle,
        });
    }

    /// Forwards the youngest buffered value for the word containing
    /// `addr`, if any.
    pub fn forward(&self, addr: u64) -> Option<u64> {
        let w = addr & !7;
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == w)
            .map(|e| e.value)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards entries with `seq >= from_seq` (misprediction rollback).
    pub fn squash_from(&mut self, from_seq: u64) {
        self.entries.retain(|e| e.seq < from_seq);
    }

    /// Writes entries issued at or before `safe_cycle` to memory and
    /// removes them. Entries are drained in order.
    pub fn drain_older_than(&mut self, safe_cycle: u64, memory: &mut Memory) {
        let mut i = 0;
        while i < self.entries.len() && self.entries[i].issue_cycle <= safe_cycle {
            memory.write(self.entries[i].addr, self.entries[i].value);
            i += 1;
        }
        self.entries.drain(..i);
    }

    /// Drains everything (end of simulation).
    pub fn drain_all(&mut self, memory: &mut Memory) {
        for e in self.entries.drain(..) {
            memory.write(e.addr, e.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_returns_youngest_match() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, 1, 0, 0);
        sb.push(0x100, 2, 1, 0);
        sb.push(0x200, 3, 2, 0);
        assert_eq!(sb.forward(0x100), Some(2));
        assert_eq!(sb.forward(0x104), Some(2)); // same word
        assert_eq!(sb.forward(0x300), None);
    }

    #[test]
    fn squash_drops_young_entries_only() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, 1, 10, 0);
        sb.push(0x200, 2, 11, 0);
        sb.push(0x300, 3, 12, 0);
        sb.squash_from(11);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.forward(0x100), Some(1));
        assert_eq!(sb.forward(0x200), None);
    }

    #[test]
    fn drain_commits_in_order() {
        let mut sb = StoreBuffer::new();
        let mut mem = Memory::new();
        sb.push(0x100, 7, 0, 5);
        sb.push(0x100, 8, 1, 9);
        sb.drain_older_than(5, &mut mem);
        assert_eq!(mem.read(0x100), Some(7));
        assert_eq!(sb.len(), 1);
        sb.drain_all(&mut mem);
        assert_eq!(mem.read(0x100), Some(8));
        assert!(sb.is_empty());
    }

    #[test]
    fn drain_respects_cycle_boundary() {
        let mut sb = StoreBuffer::new();
        let mut mem = Memory::new();
        sb.push(0x100, 1, 0, 10);
        sb.drain_older_than(9, &mut mem);
        assert_eq!(sb.len(), 1, "not yet safe to drain");
        assert_eq!(mem.read(0x100), None);
    }
}

//! # vanguard-sim
//!
//! A cycle-level **in-order superscalar** simulator with architectural
//! support for the paper's decomposed `predict`/`resolve` branches.
//!
//! The machine models (Table 1):
//!
//! * a 5-stage front end with a 32-entry fetch buffer and 2/4/8-wide
//!   fetch/decode/dispatch;
//! * in-order issue with scoreboarding and strict head-of-line blocking,
//!   limited by functional-unit ports (2×LD/ST, 2×INT, 4×FP);
//! * speculative issue in the shadow of predicted branches, with full
//!   wrong-path execution, checkpoint/rollback, and front-end re-steer on
//!   misprediction;
//! * the non-blocking memory hierarchy of [`vanguard_mem`];
//! * the front-end structures of [`vanguard_bpred`], including the
//!   **Decomposed Branch Buffer** that re-associates `resolve` outcomes
//!   with `predict` predictor entries (§4, Figure 7).
//!
//! Functional execution happens at issue, so wrong-path instructions
//! execute for real (their cache pollution and issue-slot consumption is
//! measured — Figure 14 of the paper) and are rolled back at redirect.
//! The committed architectural state is bit-identical to
//! [`vanguard_isa::Interpreter`]'s, which integration tests verify.
//!
//! ```
//! use vanguard_isa::{ProgramBuilder, Inst, Memory};
//! use vanguard_sim::{Simulator, MachineConfig};
//! use vanguard_bpred::Combined;
//!
//! let mut b = ProgramBuilder::new();
//! let entry = b.block("entry");
//! b.push(entry, Inst::Halt);
//! b.set_entry(entry);
//! let p = b.finish().unwrap();
//!
//! let mut sim = Simulator::new(&p, Memory::new(), MachineConfig::four_wide(),
//!                              Box::new(Combined::ptlsim_default()));
//! let result = sim.run().unwrap();
//! assert!(result.stats.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod front;
mod pipeline;
mod replay;
mod stats;
mod store_buffer;

pub use config::MachineConfig;
pub use front::{FetchedInst, FrontEnd, PredInfo};
pub use pipeline::{
    HotloopProfile, SimError, SimFault, SimResult, Simulator, StopCause, TraceEvent,
};
pub use replay::ReplayStats;
pub use stats::SimStats;
pub use store_buffer::{StoreBuffer, StoreEntry};

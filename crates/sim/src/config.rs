//! Machine configurations (Table 1 of the paper).

use vanguard_mem::MemConfig;

/// Configuration of the simulated in-order superscalar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Fetch/decode/dispatch width (the paper varies 2/4/8).
    pub width: usize,
    /// Fetch-buffer entries (Table 1: 32).
    pub fetch_buffer: usize,
    /// Front-end depth in stages (Table 1: 5). An instruction fetched at
    /// cycle *c* is issue-eligible at *c + fe_depth − 1*.
    pub fe_depth: u32,
    /// Integer/SIMD-permute issue ports per cycle (Table 1: 2).
    pub fu_int: usize,
    /// Load/store issue ports per cycle (Table 1: 2).
    pub fu_ldst: usize,
    /// SIMD/FP issue ports per cycle (Table 1: 4).
    pub fu_fp: usize,
    /// Extra cycles between a mispredicting conditional's issue and the
    /// front-end re-steer (branch resolution latency).
    pub redirect_latency: u32,
    /// Decomposed Branch Buffer entries (§4: 16).
    pub dbb_entries: usize,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Hard cycle limit (safety stop for runaway programs).
    pub max_cycles: u64,
}

impl MachineConfig {
    fn base(width: usize) -> Self {
        MachineConfig {
            width,
            fetch_buffer: 32,
            fe_depth: 5,
            fu_int: 2,
            fu_ldst: 2,
            fu_fp: 4,
            redirect_latency: 1,
            dbb_entries: 16,
            mem: MemConfig::table1_default(),
            max_cycles: 2_000_000_000,
        }
    }

    /// The 2-wide configuration.
    pub fn two_wide() -> Self {
        Self::base(2)
    }

    /// The 4-wide configuration (the paper's primary evaluation point).
    pub fn four_wide() -> Self {
        Self::base(4)
    }

    /// The 8-wide configuration.
    pub fn eight_wide() -> Self {
        Self::base(8)
    }

    /// All three evaluated widths, narrowest first.
    pub fn all_widths() -> [Self; 3] {
        [Self::two_wide(), Self::four_wide(), Self::eight_wide()]
    }

    /// The §6.1 ablation with the 24 KB instruction cache.
    pub fn with_reduced_icache(mut self) -> Self {
        self.mem = MemConfig::reduced_icache();
        self
    }

    /// Cycles between fetch and issue eligibility.
    pub fn fe_latency(&self) -> u64 {
        u64::from(self.fe_depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_table1() {
        assert_eq!(MachineConfig::two_wide().width, 2);
        assert_eq!(MachineConfig::four_wide().width, 4);
        assert_eq!(MachineConfig::eight_wide().width, 8);
    }

    #[test]
    fn shared_structure_sizes() {
        let c = MachineConfig::four_wide();
        assert_eq!(c.fetch_buffer, 32);
        assert_eq!(c.fe_depth, 5);
        assert_eq!((c.fu_ldst, c.fu_int, c.fu_fp), (2, 2, 4));
        assert_eq!(c.dbb_entries, 16);
    }

    #[test]
    fn fe_latency_is_depth_minus_one() {
        assert_eq!(MachineConfig::four_wide().fe_latency(), 4);
    }

    #[test]
    fn reduced_icache_ablation() {
        let c = MachineConfig::four_wide().with_reduced_icache();
        assert_eq!(c.mem.l1i.size_bytes, 24 * 1024);
    }
}

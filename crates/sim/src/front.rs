//! The 5-stage front end: fetch, prediction, and the Decomposed Branch
//! Buffer.

use crate::config::MachineConfig;
use crate::stats::SimStats;
use std::collections::VecDeque;
use vanguard_bpred::{Btb, DecomposedBranchBuffer, DirectionPredictor, PredMeta, Ras};
use vanguard_isa::{BlockId, Inst, LayoutInfo, Program};
use vanguard_mem::{AccessKind, Level, MemSystem};

/// Prediction state attached to a fetched conditional.
#[derive(Clone, Debug)]
pub enum PredInfo {
    /// A conventional branch: the predictor metadata and direction chosen
    /// at fetch.
    Branch {
        /// Predictor metadata for the later update.
        meta: PredMeta,
        /// Direction the front end followed.
        predicted_taken: bool,
    },
    /// A `resolve`: always predicted not-taken; carries the DBB index that
    /// associates it with its `predict` (Figure 7b).
    Resolve {
        /// DBB tail index read at decode.
        dbb_index: usize,
    },
}

/// Front-end state captured at the fetch of every conditional, restored on
/// a misprediction re-steer (the paper notes branch history and the DBB
/// tail are recovered by the same mechanism).
#[derive(Clone, Debug)]
pub struct FetchSnapshot {
    /// DBB tail pointer.
    pub dbb_tail: usize,
    /// Hardware RAS (top, depth).
    pub ras: (usize, usize),
    /// Architectural call stack (perfect; bounded by workload call depth).
    pub call_stack: Vec<BlockId>,
}

/// An instruction waiting in the fetch buffer.
#[derive(Clone, Debug)]
pub struct FetchedInst {
    /// The instruction.
    pub inst: Inst,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
    /// Code address.
    pub pc: u64,
    /// Cycle at which it clears the front end and becomes issue-eligible.
    pub ready_cycle: u64,
    /// Prediction state (conditionals only).
    pub pred: Option<PredInfo>,
    /// Front-end snapshot (conditionals only).
    pub snapshot: Option<FetchSnapshot>,
}

/// The front end: fetch PC, fetch buffer, predictor, BTB, RAS, DBB, and
/// the perfect call stack used to model a translated machine's precise
/// return handling.
pub struct FrontEnd<'p> {
    program: &'p Program,
    layout: LayoutInfo,
    config: MachineConfig,
    /// Next fetch position.
    pc: (BlockId, usize),
    /// Decoded instructions awaiting issue.
    pub(crate) buffer: VecDeque<FetchedInst>,
    pub(crate) predictor: Box<dyn DirectionPredictor>,
    pub(crate) dbb: DecomposedBranchBuffer,
    btb: Btb,
    ras: Ras,
    call_stack: Vec<BlockId>,
    /// Fetch is blocked until this cycle (I$ miss or BTB bubble).
    stall_until: u64,
    /// Set when a `halt` (or an unresolvable wrong-path `ret`) was fetched.
    halted: bool,
    /// Line containing the last fetched instruction (I$ access filter).
    last_line: Option<u64>,
    /// True from a flush until the first I$ line access completes
    /// (measures the §6.1 miss-under-mispredict conjunction).
    redirect_window: bool,
}

impl<'p> std::fmt::Debug for FrontEnd<'p> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("pc", &self.pc)
            .field("buffer_len", &self.buffer.len())
            .field("stall_until", &self.stall_until)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl<'p> FrontEnd<'p> {
    /// Creates a front end positioned at the program entry.
    pub fn new(
        program: &'p Program,
        config: MachineConfig,
        predictor: Box<dyn DirectionPredictor>,
    ) -> Self {
        FrontEnd {
            program,
            layout: program.layout(),
            config,
            pc: (program.entry(), 0),
            buffer: VecDeque::with_capacity(config.fetch_buffer),
            predictor,
            dbb: DecomposedBranchBuffer::new(config.dbb_entries),
            btb: Btb::table1_default(),
            ras: Ras::table1_default(),
            call_stack: Vec::new(),
            stall_until: 0,
            halted: false,
            last_line: None,
            redirect_window: false,
        }
    }

    /// The code layout (shared with the issue stage).
    pub fn layout(&self) -> &LayoutInfo {
        &self.layout
    }

    /// The oldest buffered instruction, if any.
    pub fn head(&self) -> Option<&FetchedInst> {
        self.buffer.front()
    }

    /// Removes and returns the oldest buffered instruction.
    pub fn pop(&mut self) -> Option<FetchedInst> {
        self.buffer.pop_front()
    }

    fn snapshot(&self) -> FetchSnapshot {
        FetchSnapshot {
            dbb_tail: self.dbb.tail(),
            ras: (0, self.ras.depth()),
            call_stack: self.call_stack.clone(),
        }
    }

    /// Runs one fetch cycle: up to `width` instructions, stopping at taken
    /// steers, I$ miss stalls, a full fetch buffer, or `halt`.
    pub fn fetch_cycle(&mut self, cycle: u64, mem: &mut MemSystem, stats: &mut SimStats) {
        if self.halted {
            return;
        }
        if cycle < self.stall_until {
            stats.icache_stall_cycles += 1;
            return;
        }
        let mut slots = self.config.width;
        while slots > 0 && self.buffer.len() < self.config.fetch_buffer {
            let (block, idx) = self.pc;
            let bb = self.program.block(block);
            if idx >= bb.insts().len() {
                // Implicit fall-through: pure next-PC logic, no slot cost.
                self.pc = (
                    bb.fallthrough()
                        .expect("validated program: fall-through present"),
                    0,
                );
                continue;
            }
            let inst = bb.insts()[idx].clone();
            let pc = self.layout.inst_addr(block, idx);

            // Instruction cache: one access per line transition.
            let line = pc >> 6;
            if self.last_line != Some(line) {
                let acc = mem.access(cycle, pc, AccessKind::InstFetch);
                let was_redirect_window = self.redirect_window;
                self.redirect_window = false;
                if acc.level != Level::L1 {
                    if was_redirect_window {
                        stats.icache_miss_under_mispredict += 1;
                    }
                    self.stall_until = acc.complete;
                    self.last_line = Some(line);
                    stats.icache_stall_cycles += 1;
                    return;
                }
                self.last_line = Some(line);
            }

            stats.fetched += 1;
            slots -= 1;

            match inst {
                Inst::Predict { target } => {
                    stats.predicts += 1;
                    let meta = self.predictor.predict(pc);
                    let predicted_taken = meta.taken;
                    self.dbb.insert(pc, meta);
                    if predicted_taken {
                        if self.steer(cycle, pc, target) {
                            return;
                        }
                        break; // taken steer ends the fetch group
                    }
                    self.pc = (
                        bb.fallthrough().expect("validated: predict fall-through"),
                        0,
                    );
                }
                Inst::Branch { target, .. } => {
                    let snapshot = self.snapshot();
                    let meta = self.predictor.predict(pc);
                    let predicted_taken = meta.taken;
                    self.buffer.push_back(FetchedInst {
                        inst,
                        block,
                        index: idx,
                        pc,
                        ready_cycle: cycle + self.config.fe_latency(),
                        pred: Some(PredInfo::Branch {
                            meta,
                            predicted_taken,
                        }),
                        snapshot: Some(snapshot),
                    });
                    if predicted_taken {
                        if self.steer(cycle, pc, target) {
                            return;
                        }
                        break;
                    }
                    self.pc = (
                        bb.fallthrough().expect("validated: branch fall-through"),
                        0,
                    );
                }
                Inst::Resolve { .. } => {
                    // Always predicted not-taken; tagged with the DBB tail.
                    let snapshot = self.snapshot();
                    let dbb_index = self.dbb.tail();
                    self.buffer.push_back(FetchedInst {
                        inst,
                        block,
                        index: idx,
                        pc,
                        ready_cycle: cycle + self.config.fe_latency(),
                        pred: Some(PredInfo::Resolve { dbb_index }),
                        snapshot: Some(snapshot),
                    });
                    self.pc = (
                        bb.fallthrough().expect("validated: resolve fall-through"),
                        0,
                    );
                }
                Inst::Jump { target } => {
                    if self.steer(cycle, pc, target) {
                        return;
                    }
                    break;
                }
                Inst::Call { callee, ret_to } => {
                    self.call_stack.push(ret_to);
                    self.ras.push(self.layout.block_start(ret_to));
                    if self.steer(cycle, pc, callee) {
                        return;
                    }
                    break;
                }
                Inst::Ret => {
                    self.ras.pop();
                    match self.call_stack.pop() {
                        Some(ret) => {
                            if self.steer(cycle, pc, ret) {
                                return;
                            }
                        }
                        None => {
                            // Wrong-path return past the top frame: fetch
                            // cannot proceed; wait to be flushed.
                            self.halted = true;
                        }
                    }
                    break;
                }
                Inst::Halt => {
                    self.buffer.push_back(FetchedInst {
                        inst,
                        block,
                        index: idx,
                        pc,
                        ready_cycle: cycle + self.config.fe_latency(),
                        pred: None,
                        snapshot: None,
                    });
                    self.halted = true;
                    break;
                }
                other => {
                    self.buffer.push_back(FetchedInst {
                        inst: other,
                        block,
                        index: idx,
                        pc,
                        ready_cycle: cycle + self.config.fe_latency(),
                        pred: None,
                        snapshot: None,
                    });
                    self.pc = (block, idx + 1);
                }
            }
        }
    }

    /// Redirects fetch to `target`; returns `true` if a BTB miss inserted a
    /// one-cycle steer bubble (which ends the fetch cycle immediately).
    fn steer(&mut self, cycle: u64, from_pc: u64, target: BlockId) -> bool {
        self.pc = (target, 0);
        self.last_line = None;
        let target_addr = self.layout.block_start(target);
        if self.btb.lookup(from_pc) != Some(target_addr) {
            self.btb.insert(from_pc, target_addr);
            // Decode-stage steer: one bubble cycle.
            self.stall_until = cycle + 2;
            return true;
        }
        false
    }

    /// Squashes all buffered instructions and re-steers fetch after a
    /// misprediction, restoring the snapshot captured at the mispredicting
    /// conditional's fetch.
    pub fn flush(&mut self, target: (BlockId, usize), snap: &FetchSnapshot, resume_cycle: u64) {
        self.buffer.clear();
        self.pc = target;
        self.dbb.recover_tail(snap.dbb_tail);
        // Rebuild the hardware RAS to the snapshot depth (entry contents
        // are re-derived from the perfect stack, modelling a checkpointed
        // top-of-stack pointer).
        self.call_stack = snap.call_stack.clone();
        self.ras = Ras::table1_default();
        for &b in &self.call_stack {
            self.ras.push(self.layout.block_start(b));
        }
        self.stall_until = resume_cycle;
        self.halted = false;
        self.last_line = None;
        self.redirect_window = true;
    }

    /// True when fetch has stopped at a `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimStats;
    use vanguard_bpred::Combined;
    use vanguard_isa::{CondKind, ProgramBuilder, Reg};
    use vanguard_mem::MemConfig;

    fn front_for(p: &Program) -> (FrontEnd<'_>, MemSystem, SimStats) {
        let fe = FrontEnd::new(
            p,
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        (fe, MemSystem::new(MemConfig::table1_default()), SimStats::default())
    }

    fn straightline() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        for _ in 0..6 {
            b.push(e, Inst::Nop);
        }
        b.push(e, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn fetch_fills_the_buffer_at_width_per_cycle() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        // Cycle 0: cold I$ miss stalls fetch.
        fe.fetch_cycle(0, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), 0);
        assert!(stats.icache_stall_cycles > 0);
        // After the fill completes, width instructions per cycle.
        let resume = 200;
        fe.fetch_cycle(resume, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), 4);
        fe.fetch_cycle(resume + 1, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), 7); // 6 nops + halt
        assert!(fe.is_halted());
    }

    #[test]
    fn ready_cycle_reflects_front_end_depth() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        fe.fetch_cycle(0, &mut mem, &mut stats); // cold I$ fill
        fe.fetch_cycle(200, &mut mem, &mut stats);
        let head = fe.head().expect("fetched");
        assert_eq!(head.ready_cycle, 200 + 4);
    }

    #[test]
    fn taken_branch_prediction_ends_the_fetch_group() {
        // entry: br (trained taken) -> target far away.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let t = b.block("target");
        let f = b.block("fall");
        b.push(e, Inst::Nop);
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(e, f);
        b.push(f, Inst::Halt);
        b.push(t, Inst::Nop);
        b.push(t, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        // Warm the I$ then fetch: nop + branch fetched; the branch is
        // predicted not-taken cold, so fetch continues at the fall-through
        // within the same group.
        fe.fetch_cycle(0, &mut mem, &mut stats);
        fe.fetch_cycle(200, &mut mem, &mut stats);
        assert!(fe.buffer.len() >= 2);
        let kinds: Vec<_> = fe.buffer.iter().map(|fi| fi.inst.mnemonic()).collect();
        assert!(kinds.contains(&"br.nz"));
    }

    #[test]
    fn flush_clears_buffer_and_resteers() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        fe.fetch_cycle(0, &mut mem, &mut stats); // cold I$ fill
        fe.fetch_cycle(200, &mut mem, &mut stats);
        assert!(!fe.buffer.is_empty());
        let snap = FetchSnapshot {
            dbb_tail: 0,
            ras: (0, 0),
            call_stack: Vec::new(),
        };
        fe.flush((p.entry(), 0), &snap, 300);
        assert!(fe.buffer.is_empty());
        assert!(!fe.is_halted());
        // Fetch resumes at the redirect cycle, not before.
        fe.fetch_cycle(299, &mut mem, &mut stats);
        assert!(fe.buffer.is_empty());
        fe.fetch_cycle(300, &mut mem, &mut stats);
        assert!(!fe.buffer.is_empty());
    }

    #[test]
    fn fetch_buffer_capacity_is_respected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let l = b.block("loop");
        b.push(e, Inst::Nop);
        b.fallthrough(e, l);
        for _ in 0..8 {
            b.push(l, Inst::Nop);
        }
        b.push(l, Inst::Jump { target: l });
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        for c in 0..300 {
            fe.fetch_cycle(c, &mut mem, &mut stats);
        }
        assert!(fe.buffer.len() <= MachineConfig::four_wide().fetch_buffer);
    }
}

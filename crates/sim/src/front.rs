//! The 5-stage front end: fetch, prediction, and the Decomposed Branch
//! Buffer.

use crate::config::MachineConfig;
use crate::replay::{Fnv, ReplayEngine};
use crate::stats::SimStats;
use std::collections::VecDeque;
use std::sync::Arc;
use vanguard_bpred::{Btb, DbbEntry, DecomposedBranchBuffer, DirectionPredictor, PredMeta, Ras};
use vanguard_isa::{BlockId, DecodedImage, FuClass, Inst, NO_INST};
use vanguard_mem::{AccessKind, Level, MemSystem};

/// Prediction state attached to a fetched conditional.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PredInfo {
    /// A conventional branch: the predictor metadata and direction chosen
    /// at fetch.
    Branch {
        /// Predictor metadata for the later update.
        meta: PredMeta,
        /// Direction the front end followed.
        predicted_taken: bool,
    },
    /// A `resolve`: always predicted not-taken; carries the DBB index that
    /// associates it with its `predict` (Figure 7b).
    Resolve {
        /// DBB tail index read at decode.
        dbb_index: usize,
    },
}

/// One reversible call-stack mutation, recorded at fetch so a
/// misprediction flush can restore the stack without snapshotting it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JournalOp {
    /// A `call` pushed a frame.
    Pushed,
    /// A `ret` popped this return block.
    Popped(BlockId),
}

/// Front-end state captured at the fetch of every conditional, restored on
/// a misprediction re-steer (the paper notes branch history and the DBB
/// tail are recovered by the same mechanism).
///
/// `Copy`: the call stack itself is not cloned per conditional; the flush
/// path instead rewinds the undo journal to `journal_mark`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchSnapshot {
    /// DBB tail pointer.
    pub dbb_tail: usize,
    /// Hardware RAS depth (the entry contents are re-derived from the
    /// perfect call stack, modelling a checkpointed top-of-stack pointer).
    pub ras_depth: usize,
    /// Call-stack journal length at capture time.
    pub journal_mark: usize,
}

/// `LaneMeta::ctrl` value: no control significance at issue.
pub(crate) const CTRL_OTHER: u8 = 0;
/// `LaneMeta::ctrl` value: a conventional `Branch`.
pub(crate) const CTRL_BRANCH: u8 = 1;
/// `LaneMeta::ctrl` value: a `Resolve`.
pub(crate) const CTRL_RESOLVE: u8 = 2;
/// `LaneMeta::ctrl` value: a `Halt`.
pub(crate) const CTRL_HALT: u8 = 3;

/// Issue-stage metadata for one buffered instruction: a packed
/// structure-of-arrays lane kept in lockstep with the fetch buffer so the
/// per-cycle ready/scoreboard/port checks — which re-run every cycle the
/// head stalls — touch 16 contiguous bytes instead of the much larger
/// [`FetchedInst`] (and never re-derive source registers or the FU class
/// through `match`es on the instruction encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct LaneMeta {
    /// Cycle at which the instruction clears the front end (mirrors
    /// `FetchedInst::ready_cycle`).
    pub ready: u64,
    /// Source registers read at issue ([`LaneMeta::NO_SRC`] = unused).
    pub srcs: [u8; 2],
    /// Functional-unit class.
    pub fu: FuClass,
    /// Control class at issue (`CTRL_*`).
    pub ctrl: u8,
}

impl LaneMeta {
    /// Sentinel for an unused source slot (no architectural register has
    /// this index).
    pub(crate) const NO_SRC: u8 = u8::MAX;

    /// Derives the lane metadata for `inst` becoming issue-eligible at
    /// `ready`.
    pub(crate) fn of(inst: &Inst, ready: u64) -> LaneMeta {
        let mut srcs = [LaneMeta::NO_SRC; 2];
        let mut n = 0usize;
        inst.visit_srcs(|r| {
            debug_assert!(n < 2, "no instruction reads more than two registers");
            srcs[n] = r.index() as u8;
            n += 1;
        });
        let ctrl = match inst {
            Inst::Branch { .. } => CTRL_BRANCH,
            Inst::Resolve { .. } => CTRL_RESOLVE,
            Inst::Halt => CTRL_HALT,
            _ => CTRL_OTHER,
        };
        LaneMeta {
            ready,
            srcs,
            fu: inst.fu_class(),
            ctrl,
        }
    }
}

/// An instruction waiting in the fetch buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FetchedInst {
    /// The instruction.
    pub inst: Inst,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
    /// Code address.
    pub pc: u64,
    /// Cycle at which it clears the front end and becomes issue-eligible.
    pub ready_cycle: u64,
    /// Prediction state (conditionals only).
    pub pred: Option<PredInfo>,
    /// Front-end snapshot (conditionals only).
    pub snapshot: Option<FetchSnapshot>,
}

/// The front end: fetch PC, fetch buffer, predictor, BTB, RAS, DBB, and
/// the perfect call stack used to model a translated machine's precise
/// return handling.
///
/// Fetch walks a shared pre-decoded [`DecodedImage`] — the fetch PC is a
/// flat instruction index and fall-through chains cost nothing at run
/// time.
pub struct FrontEnd {
    image: Arc<DecodedImage>,
    config: MachineConfig,
    /// Next fetch position: flat index into the decoded image.
    pc: u32,
    /// Decoded instructions awaiting issue.
    pub(crate) buffer: VecDeque<FetchedInst>,
    /// Issue-stage lane metadata, in lockstep with `buffer` (see
    /// [`LaneMeta`]): the only per-entry state the issue stage reads
    /// until an instruction actually issues.
    pub(crate) meta: VecDeque<LaneMeta>,
    /// Per-flat-index [`LaneMeta`] with `ready = 0`, precomputed at
    /// construction ([`LaneMeta`] is instruction-determined except for
    /// the ready cycle, which fetch patches in).
    meta_tpl: Box<[LaneMeta]>,
    pub(crate) predictor: Box<dyn DirectionPredictor>,
    pub(crate) dbb: DecomposedBranchBuffer,
    btb: Btb,
    ras: Ras,
    call_stack: Vec<BlockId>,
    /// Undo log of speculative call-stack mutations since the last
    /// compaction; snapshots reference a position in it.
    journal: Vec<JournalOp>,
    /// Buffered instructions currently carrying a snapshot (compaction
    /// is legal only when this is zero and no redirect is pending).
    snapshots_in_buffer: usize,
    /// Fetch is blocked until this cycle (I$ miss or BTB bubble).
    stall_until: u64,
    /// Set when a `halt` (or an unresolvable wrong-path `ret`) was fetched.
    halted: bool,
    /// Line containing the last fetched instruction (I$ access filter).
    last_line: Option<u64>,
    /// True from a flush until the first I$ line access completes
    /// (measures the §6.1 miss-under-mispredict conjunction).
    redirect_window: bool,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("pc", &self.pc)
            .field("buffer_len", &self.buffer.len())
            .field("stall_until", &self.stall_until)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl FrontEnd {
    /// Creates a front end positioned at the program entry.
    pub fn new(
        image: Arc<DecodedImage>,
        config: MachineConfig,
        predictor: Box<dyn DirectionPredictor>,
    ) -> Self {
        // Issue metadata is a pure function of the instruction, so it is
        // derived once per flat index here; fetch then copies 16 bytes
        // per instruction instead of re-matching the encoding.
        let meta_tpl = image
            .insts()
            .iter()
            .map(|di| LaneMeta::of(&di.inst, 0))
            .collect();
        FrontEnd {
            pc: image.entry_index(),
            image,
            config,
            buffer: VecDeque::with_capacity(config.fetch_buffer),
            meta: VecDeque::with_capacity(config.fetch_buffer),
            meta_tpl,
            predictor,
            dbb: DecomposedBranchBuffer::new(config.dbb_entries),
            btb: Btb::table1_default(),
            ras: Ras::table1_default(),
            call_stack: Vec::new(),
            journal: Vec::new(),
            snapshots_in_buffer: 0,
            stall_until: 0,
            halted: false,
            last_line: None,
            redirect_window: false,
        }
    }

    /// The decoded image fetch walks (shared with the issue stage).
    pub fn image(&self) -> &DecodedImage {
        &self.image
    }

    /// The oldest buffered instruction, if any.
    pub fn head(&self) -> Option<&FetchedInst> {
        self.buffer.front()
    }

    /// Removes and returns the oldest buffered instruction.
    pub fn pop(&mut self) -> Option<FetchedInst> {
        let fi = self.buffer.pop_front();
        if let Some(fi) = &fi {
            self.meta.pop_front();
            debug_assert_eq!(self.meta.len(), self.buffer.len(), "meta lane in lockstep");
            if fi.snapshot.is_some() {
                self.snapshots_in_buffer -= 1;
            }
        }
        fi
    }

    /// Issue-stage metadata of the oldest buffered instruction.
    pub(crate) fn head_meta(&self) -> Option<LaneMeta> {
        self.meta.front().copied()
    }

    fn snapshot(&self) -> FetchSnapshot {
        FetchSnapshot {
            dbb_tail: self.dbb.tail(),
            ras_depth: self.ras.depth(),
            journal_mark: self.journal.len(),
        }
    }

    /// Runs one fetch cycle: up to `width` instructions, stopping at taken
    /// steers, I$ miss stalls, a full fetch buffer, or `halt`.
    ///
    /// `replay` (when present) observes predictor interactions, I$ line
    /// accesses, and steers so a [`ReplayEngine`] recording can be
    /// finalized into a memoized iteration; backward steers arm it.
    pub(crate) fn fetch_cycle(
        &mut self,
        cycle: u64,
        mem: &mut MemSystem,
        stats: &mut SimStats,
        mut replay: Option<&mut ReplayEngine>,
    ) {
        if self.halted {
            return;
        }
        if cycle < self.stall_until {
            stats.icache_stall_cycles += 1;
            return;
        }
        let mut slots = self.config.width;
        while slots > 0 && self.buffer.len() < self.config.fetch_buffer {
            assert!(
                self.pc != NO_INST,
                "validated program: fall-through present"
            );
            let di = *self.image.get(self.pc);
            let pc = di.pc;

            // Instruction cache: one access per line transition.
            let line = pc >> 6;
            if self.last_line != Some(line) {
                if let Some(r) = replay.as_deref_mut() {
                    r.on_ifetch(pc);
                }
                let acc = mem.access(cycle, pc, AccessKind::InstFetch);
                let was_redirect_window = self.redirect_window;
                self.redirect_window = false;
                if acc.level != Level::L1 {
                    if let Some(r) = replay.as_deref_mut() {
                        r.abort_recording();
                    }
                    if was_redirect_window {
                        stats.icache_miss_under_mispredict += 1;
                    }
                    self.stall_until = acc.complete;
                    self.last_line = Some(line);
                    stats.icache_stall_cycles += 1;
                    return;
                }
                self.last_line = Some(line);
            }

            stats.fetched += 1;
            slots -= 1;

            match di.inst {
                Inst::Predict { target } => {
                    stats.predicts += 1;
                    let meta = self.predictor.predict(pc);
                    let predicted_taken = meta.taken;
                    if let Some(r) = replay.as_deref_mut() {
                        r.on_predict(pc, &meta, &*self.predictor);
                        let head = self.image.block_entry(target);
                        if predicted_taken && head <= self.pc {
                            r.note_backward(head);
                        }
                    }
                    self.dbb.insert(pc, meta);
                    if predicted_taken {
                        if self.steer(cycle, pc, target, replay) {
                            return;
                        }
                        break; // taken steer ends the fetch group
                    }
                    self.pc = di.next;
                }
                Inst::Branch { target, .. } => {
                    let snapshot = self.snapshot();
                    let meta = self.predictor.predict(pc);
                    let predicted_taken = meta.taken;
                    if let Some(r) = replay.as_deref_mut() {
                        r.on_predict(pc, &meta, &*self.predictor);
                        let head = self.image.block_entry(target);
                        if predicted_taken && head <= self.pc {
                            r.note_backward(head);
                        }
                    }
                    self.push_fetched(
                        &di,
                        cycle,
                        Some(PredInfo::Branch {
                            meta,
                            predicted_taken,
                        }),
                        Some(snapshot),
                    );
                    if predicted_taken {
                        if self.steer(cycle, pc, target, replay) {
                            return;
                        }
                        break;
                    }
                    self.pc = di.next;
                }
                Inst::Resolve { .. } => {
                    // Always predicted not-taken; tagged with the DBB tail.
                    let snapshot = self.snapshot();
                    let dbb_index = self.dbb.tail();
                    self.push_fetched(
                        &di,
                        cycle,
                        Some(PredInfo::Resolve { dbb_index }),
                        Some(snapshot),
                    );
                    self.pc = di.next;
                }
                Inst::Jump { target } => {
                    if let Some(r) = replay.as_deref_mut() {
                        let head = self.image.block_entry(target);
                        if head <= self.pc {
                            r.note_backward(head);
                        }
                    }
                    if self.steer(cycle, pc, target, replay) {
                        return;
                    }
                    break;
                }
                Inst::Call { callee, ret_to } => {
                    self.call_stack.push(ret_to);
                    self.journal.push(JournalOp::Pushed);
                    self.ras.push(self.image.block_start(ret_to));
                    if self.steer(cycle, pc, callee, replay) {
                        return;
                    }
                    break;
                }
                Inst::Ret => {
                    self.ras.pop();
                    match self.call_stack.pop() {
                        Some(ret) => {
                            self.journal.push(JournalOp::Popped(ret));
                            if self.steer(cycle, pc, ret, replay) {
                                return;
                            }
                        }
                        None => {
                            // Wrong-path return past the top frame: fetch
                            // cannot proceed; wait to be flushed.
                            if let Some(r) = replay.as_deref_mut() {
                                r.abort_recording();
                            }
                            self.halted = true;
                        }
                    }
                    break;
                }
                Inst::Halt => {
                    if let Some(r) = replay.as_deref_mut() {
                        r.abort_recording();
                    }
                    self.push_fetched(&di, cycle, None, None);
                    self.halted = true;
                    break;
                }
                _ => {
                    self.push_fetched(&di, cycle, None, None);
                    self.pc = di.next;
                }
            }
        }
    }

    fn push_fetched(
        &mut self,
        di: &vanguard_isa::DecodedInst,
        cycle: u64,
        pred: Option<PredInfo>,
        snapshot: Option<FetchSnapshot>,
    ) {
        if snapshot.is_some() {
            self.snapshots_in_buffer += 1;
        }
        let ready_cycle = cycle + self.config.fe_latency();
        // `self.pc` still indexes the instruction being pushed: every
        // fetch arm advances the pc only after pushing.
        let mut m = self.meta_tpl[self.pc as usize];
        m.ready = ready_cycle;
        self.meta.push_back(m);
        self.buffer.push_back(FetchedInst {
            inst: di.inst,
            block: di.block,
            index: di.index as usize,
            pc: di.pc,
            ready_cycle,
            pred,
            snapshot,
        });
    }

    /// Redirects fetch to `target`; returns `true` if a BTB miss inserted a
    /// one-cycle steer bubble (which ends the fetch cycle immediately).
    fn steer(
        &mut self,
        cycle: u64,
        from_pc: u64,
        target: BlockId,
        replay: Option<&mut ReplayEngine>,
    ) -> bool {
        self.pc = self.image.block_entry(target);
        self.last_line = None;
        let target_addr = self.image.block_start(target);
        if self.btb.lookup(from_pc) != Some(target_addr) {
            if let Some(r) = replay {
                r.abort_recording();
            }
            self.btb.insert(from_pc, target_addr);
            // Decode-stage steer: one bubble cycle.
            self.stall_until = cycle + 2;
            return true;
        }
        if let Some(r) = replay {
            r.on_steer(from_pc, target_addr);
        }
        false
    }

    /// Squashes all buffered instructions and re-steers fetch after a
    /// misprediction, restoring the snapshot captured at the mispredicting
    /// conditional's fetch. The call stack is rewound by replaying the
    /// undo journal in reverse down to the snapshot's mark.
    pub fn flush(&mut self, target: BlockId, snap: &FetchSnapshot, resume_cycle: u64) {
        self.buffer.clear();
        self.meta.clear();
        self.snapshots_in_buffer = 0;
        self.pc = self.image.block_entry(target);
        self.dbb.recover_tail(snap.dbb_tail);
        while self.journal.len() > snap.journal_mark {
            match self.journal.pop().expect("journal longer than mark") {
                JournalOp::Pushed => {
                    self.call_stack.pop();
                }
                JournalOp::Popped(b) => self.call_stack.push(b),
            }
        }
        // Rebuild the hardware RAS to the snapshot depth (entry contents
        // are re-derived from the perfect stack, modelling a checkpointed
        // top-of-stack pointer).
        self.ras.clear();
        for &b in &self.call_stack {
            self.ras.push(self.image.block_start(b));
        }
        self.stall_until = resume_cycle;
        self.halted = false;
        self.last_line = None;
        self.redirect_window = true;
    }

    /// Discards the dead journal prefix. Legal only when no live snapshot
    /// references it: the caller must ensure no redirect is pending; the
    /// buffered-snapshot count is checked here.
    pub(crate) fn compact_journal(&mut self) {
        if self.snapshots_in_buffer == 0 {
            self.journal.clear();
        }
    }

    /// True when fetch has stopped at a `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current fetch position (flat instruction index) — the replay
    /// signature's primary key.
    pub(crate) fn replay_pc(&self) -> u32 {
        self.pc
    }

    /// Whether the BTB still maps `from → target` (replay steers must not
    /// re-simulate a BTB miss bubble that the recording did not pay).
    pub(crate) fn replay_btb_hit(&self, from_pc: u64, target_addr: u64) -> bool {
        self.btb.lookup(from_pc) == Some(target_addr)
    }

    /// Folds the cheap-to-read parts of the front-end state into a replay
    /// signature hash. Collisions are resolved by the exact compare in
    /// [`replay_matches`](Self::replay_matches).
    pub(crate) fn replay_hash(&self, cycle: u64, h: &mut Fnv) {
        h.u64(u64::from(self.pc));
        h.u64(self.stall_until.saturating_sub(cycle));
        h.u64(self.last_line.unwrap_or(u64::MAX));
        h.u64(self.buffer.len() as u64);
        for fi in &self.buffer {
            h.u64(fi.pc);
            h.u64(fi.ready_cycle.saturating_sub(cycle));
        }
        h.u64(self.call_stack.len() as u64);
        h.u64(self.journal.len() as u64);
        h.u64(self.dbb.tail() as u64);
    }

    /// Captures the complete fetch-relevant state, with cycle-valued fields
    /// stored relative to `cycle` so a recorded iteration can be matched
    /// and restored at any later cycle.
    pub(crate) fn replay_capture(&self, cycle: u64) -> FrontSnapshot {
        let (dbb_entries, dbb_tail) = self.dbb.replay_state();
        FrontSnapshot {
            pc: self.pc,
            stall_rel: self.stall_until.saturating_sub(cycle),
            last_line: self.last_line,
            redirect_window: self.redirect_window,
            buffer: self
                .buffer
                .iter()
                .map(|fi| FetchedInst {
                    ready_cycle: fi.ready_cycle.saturating_sub(cycle),
                    ..*fi
                })
                .collect(),
            journal: self.journal.clone(),
            call_stack: self.call_stack.clone(),
            ras: self.ras.clone(),
            dbb_entries,
            dbb_tail,
        }
    }

    /// Exact, allocation-free comparison of the live state against a
    /// snapshot relativized at `cycle`.
    ///
    /// Cycle-valued fields are compared saturating-relative: a
    /// `ready_cycle` (or stall) already in the past behaves identically to
    /// one equal to `cycle`, so clamping to zero is behavior-preserving.
    pub(crate) fn replay_matches(&self, s: &FrontSnapshot, cycle: u64) -> bool {
        self.pc == s.pc
            && self.stall_until.saturating_sub(cycle) == s.stall_rel
            && self.last_line == s.last_line
            && self.redirect_window == s.redirect_window
            && self.buffer.len() == s.buffer.len()
            && self.buffer.iter().zip(&s.buffer).all(|(live, snap)| {
                live.ready_cycle.saturating_sub(cycle) == snap.ready_cycle
                    && live.inst == snap.inst
                    && live.block == snap.block
                    && live.index == snap.index
                    && live.pc == snap.pc
                    && live.pred == snap.pred
                    && live.snapshot == snap.snapshot
            })
            && self.journal == s.journal
            && self.call_stack == s.call_stack
            && self.ras == s.ras
            && self.dbb.replay_matches(&s.dbb_entries, s.dbb_tail)
    }

    /// Restores the front end wholesale from a post-iteration snapshot,
    /// re-absolutizing cycle-valued fields at `cycle` and bumping the DBB
    /// lifetime counters by the memoized deltas.
    pub(crate) fn replay_restore(
        &mut self,
        s: &FrontSnapshot,
        cycle: u64,
        d_dbb_inserts: u64,
        d_dbb_spurious: u64,
    ) {
        self.pc = s.pc;
        self.stall_until = cycle + s.stall_rel;
        self.last_line = s.last_line;
        self.redirect_window = s.redirect_window;
        self.buffer.clear();
        self.buffer.extend(s.buffer.iter().map(|fi| FetchedInst {
            ready_cycle: cycle + fi.ready_cycle,
            ..*fi
        }));
        self.meta.clear();
        self.meta.extend(
            s.buffer
                .iter()
                .map(|fi| LaneMeta::of(&fi.inst, cycle + fi.ready_cycle)),
        );
        self.snapshots_in_buffer = s.buffer.iter().filter(|fi| fi.snapshot.is_some()).count();
        self.journal.clear();
        self.journal.extend_from_slice(&s.journal);
        self.call_stack.clear();
        self.call_stack.extend_from_slice(&s.call_stack);
        self.ras = s.ras.clone();
        self.dbb
            .replay_restore(&s.dbb_entries, s.dbb_tail, d_dbb_inserts, d_dbb_spurious);
        self.halted = false;
    }
}

/// A relativized snapshot of the complete fetch-relevant front-end state:
/// one half of a replay signature (the other half — predictor speculative
/// words and the issue scoreboard — lives in the [`ReplayEngine`]'s
/// pre-state).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FrontSnapshot {
    pc: u32,
    /// `stall_until − cycle`, clamped at zero.
    stall_rel: u64,
    last_line: Option<u64>,
    redirect_window: bool,
    /// Buffer contents with `ready_cycle` relativized (clamped at zero).
    buffer: Vec<FetchedInst>,
    journal: Vec<JournalOp>,
    call_stack: Vec<BlockId>,
    ras: Ras,
    dbb_entries: Vec<Option<DbbEntry>>,
    dbb_tail: usize,
}

#[cfg(test)]
impl FrontSnapshot {
    /// A trivially-empty snapshot for unit tests of the replay machinery.
    pub(crate) fn empty_for_test() -> Self {
        FrontSnapshot {
            pc: 0,
            stall_rel: 0,
            last_line: None,
            redirect_window: false,
            buffer: Vec::new(),
            journal: Vec::new(),
            call_stack: Vec::new(),
            ras: Ras::new(1),
            dbb_entries: Vec::new(),
            dbb_tail: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimStats;
    use vanguard_bpred::Combined;
    use vanguard_isa::{CondKind, Program, ProgramBuilder, Reg};
    use vanguard_mem::{MemConfig, MemSystem};

    fn front_for(p: &Program) -> (FrontEnd, MemSystem, SimStats) {
        let fe = FrontEnd::new(
            Arc::new(DecodedImage::build(p)),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        (
            fe,
            MemSystem::new(MemConfig::table1_default()),
            SimStats::default(),
        )
    }

    fn straightline() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        for _ in 0..6 {
            b.push(e, Inst::Nop);
        }
        b.push(e, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn fetch_fills_the_buffer_at_width_per_cycle() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        // Cycle 0: cold I$ miss stalls fetch.
        fe.fetch_cycle(0, &mut mem, &mut stats, None);
        assert_eq!(fe.buffer.len(), 0);
        assert!(stats.icache_stall_cycles > 0);
        // After the fill completes, width instructions per cycle.
        let resume = 200;
        fe.fetch_cycle(resume, &mut mem, &mut stats, None);
        assert_eq!(fe.buffer.len(), 4);
        fe.fetch_cycle(resume + 1, &mut mem, &mut stats, None);
        assert_eq!(fe.buffer.len(), 7); // 6 nops + halt
        assert!(fe.is_halted());
    }

    #[test]
    fn ready_cycle_reflects_front_end_depth() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        fe.fetch_cycle(0, &mut mem, &mut stats, None); // cold I$ fill
        fe.fetch_cycle(200, &mut mem, &mut stats, None);
        let head = fe.head().expect("fetched");
        assert_eq!(head.ready_cycle, 200 + 4);
    }

    #[test]
    fn taken_branch_prediction_ends_the_fetch_group() {
        // entry: br (trained taken) -> target far away.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let t = b.block("target");
        let f = b.block("fall");
        b.push(e, Inst::Nop);
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(e, f);
        b.push(f, Inst::Halt);
        b.push(t, Inst::Nop);
        b.push(t, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        // Warm the I$ then fetch: nop + branch fetched; the branch is
        // predicted not-taken cold, so fetch continues at the fall-through
        // within the same group.
        fe.fetch_cycle(0, &mut mem, &mut stats, None);
        fe.fetch_cycle(200, &mut mem, &mut stats, None);
        assert!(fe.buffer.len() >= 2);
        let kinds: Vec<_> = fe.buffer.iter().map(|fi| fi.inst.mnemonic()).collect();
        assert!(kinds.contains(&"br.nz"));
    }

    #[test]
    fn flush_clears_buffer_and_resteers() {
        let p = straightline();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        fe.fetch_cycle(0, &mut mem, &mut stats, None); // cold I$ fill
        fe.fetch_cycle(200, &mut mem, &mut stats, None);
        assert!(!fe.buffer.is_empty());
        let snap = FetchSnapshot {
            dbb_tail: 0,
            ras_depth: 0,
            journal_mark: 0,
        };
        fe.flush(p.entry(), &snap, 300);
        assert!(fe.buffer.is_empty());
        assert!(!fe.is_halted());
        // Fetch resumes at the redirect cycle, not before.
        fe.fetch_cycle(299, &mut mem, &mut stats, None);
        assert!(fe.buffer.is_empty());
        fe.fetch_cycle(300, &mut mem, &mut stats, None);
        assert!(!fe.buffer.is_empty());
    }

    #[test]
    fn fetch_buffer_capacity_is_respected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let l = b.block("loop");
        b.push(e, Inst::Nop);
        b.fallthrough(e, l);
        for _ in 0..8 {
            b.push(l, Inst::Nop);
        }
        b.push(l, Inst::Jump { target: l });
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        for c in 0..300 {
            fe.fetch_cycle(c, &mut mem, &mut stats, None);
        }
        assert!(fe.buffer.len() <= MachineConfig::four_wide().fetch_buffer);
    }

    #[test]
    fn flush_rewinds_the_call_stack_via_the_journal() {
        // entry: call f; f: branch (snapshot) then ret; after: halt.
        // Fetch past the call, snapshot at the branch, keep fetching
        // through the ret (journal records the pop), then flush back to
        // the snapshot: the call stack must again hold the frame.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let f = b.block("callee");
        let t = b.block("t");
        let r = b.block("after");
        b.push(
            e,
            Inst::Call {
                callee: f,
                ret_to: r,
            },
        );
        b.push(
            f,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(f, t);
        b.push(t, Inst::Ret);
        b.push(r, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        // Drive fetch until the ret's return block has been entered
        // (the halt after the ret marks it).
        for c in 0..2000 {
            fe.fetch_cycle(c, &mut mem, &mut stats, None);
            if fe.is_halted() {
                break;
            }
        }
        assert!(fe.is_halted(), "fetch must reach the halt after ret");
        assert_eq!(fe.call_stack.len(), 0);
        let snap = fe
            .buffer
            .iter()
            .find_map(|fi| fi.snapshot)
            .expect("branch captured a snapshot");
        fe.flush(f, &snap, 0);
        // The ret's pop was rewound: the frame pushed by the call is live.
        assert_eq!(fe.call_stack, vec![r]);
        assert_eq!(fe.ras.depth(), 1);
        assert_eq!(fe.journal.len(), snap.journal_mark);
    }

    #[test]
    fn journal_compacts_when_no_snapshots_are_live() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let f = b.block("callee");
        let r = b.block("after");
        b.push(
            e,
            Inst::Call {
                callee: f,
                ret_to: r,
            },
        );
        b.push(f, Inst::Ret);
        b.push(r, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let (mut fe, mut mem, mut stats) = front_for(&p);
        for c in 0..2000 {
            fe.fetch_cycle(c, &mut mem, &mut stats, None);
            if fe.is_halted() {
                break;
            }
        }
        assert!(!fe.journal.is_empty(), "call/ret journalled");
        assert_eq!(fe.snapshots_in_buffer, 0);
        fe.compact_journal();
        assert!(fe.journal.is_empty());
    }
}

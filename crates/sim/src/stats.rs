//! Simulation statistics.

use vanguard_mem::MemStats;

/// Counters collected over a simulation, sufficient to regenerate every
/// per-benchmark metric of the paper's Table 2 and Figures 8–14.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions issued to the back end, including wrong-path issues.
    pub issued: u64,
    /// Wrong-path instructions issued (flushed before commit).
    pub issued_wrong_path: u64,
    /// Instructions fetched (including `predict`s and other front-end-only
    /// instructions, and wrong-path fetches).
    pub fetched: u64,
    /// `predict` instructions fetched on the committed path.
    pub predicts: u64,
    /// Conventional conditional branches committed.
    pub branches: u64,
    /// Of those, mispredicted.
    pub branch_mispredicts: u64,
    /// `resolve` instructions committed.
    pub resolves: u64,
    /// Of those, detecting a misprediction (resolve taken).
    pub resolve_mispredicts: u64,
    /// Cycles the issue head was a conventional branch waiting on its
    /// condition (the baseline's branch-resolution serialization).
    pub branch_stall_cycles: u64,
    /// Cycles the issue head was a `resolve` waiting on its condition
    /// (feeds the paper's ASPCB metric).
    pub resolve_stall_cycles: u64,
    /// Cycles nothing issued because the fetch buffer was empty or the
    /// head was not yet through the front end.
    pub frontend_stall_cycles: u64,
    /// Cycles nothing issued because the head waited on an operand.
    pub operand_stall_cycles: u64,
    /// Cycles nothing issued because the head's FU port was exhausted.
    pub fu_stall_cycles: u64,
    /// Front-end re-steers due to mispredictions (normal + resolve).
    pub redirects: u64,
    /// I$ misses that occurred while a misprediction redirect was in
    /// flight (the §6.1 conjunction discussion).
    pub icache_miss_under_mispredict: u64,
    /// Cycles fetch was blocked: I$ line-fill misses plus decode-stage
    /// steer bubbles (BTB-miss redirects share the same stall mechanism).
    pub icache_stall_cycles: u64,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
}

/// Applies `op` to every scalar counter pair of two [`SimStats`] (the
/// `mem` sub-struct is deliberately excluded: memory statistics accrue
/// live through re-applied accesses during replay).
macro_rules! for_each_counter {
    ($a:expr, $b:expr, $f:expr) => {{
        let f = $f;
        f(&mut $a.cycles, $b.cycles);
        f(&mut $a.issued, $b.issued);
        f(&mut $a.issued_wrong_path, $b.issued_wrong_path);
        f(&mut $a.fetched, $b.fetched);
        f(&mut $a.predicts, $b.predicts);
        f(&mut $a.branches, $b.branches);
        f(&mut $a.branch_mispredicts, $b.branch_mispredicts);
        f(&mut $a.resolves, $b.resolves);
        f(&mut $a.resolve_mispredicts, $b.resolve_mispredicts);
        f(&mut $a.branch_stall_cycles, $b.branch_stall_cycles);
        f(&mut $a.resolve_stall_cycles, $b.resolve_stall_cycles);
        f(&mut $a.frontend_stall_cycles, $b.frontend_stall_cycles);
        f(&mut $a.operand_stall_cycles, $b.operand_stall_cycles);
        f(&mut $a.fu_stall_cycles, $b.fu_stall_cycles);
        f(&mut $a.redirects, $b.redirects);
        f(
            &mut $a.icache_miss_under_mispredict,
            $b.icache_miss_under_mispredict,
        );
        f(&mut $a.icache_stall_cycles, $b.icache_stall_cycles);
    }};
}

impl SimStats {
    /// Per-iteration counter delta since `start` for the replay memo
    /// table (`mem` zeroed — see [`add_replay_delta`](Self::add_replay_delta)).
    pub(crate) fn replay_delta(&self, start: &SimStats) -> SimStats {
        let mut d = *self;
        d.mem = MemStats::default();
        for_each_counter!(d, start, |a: &mut u64, b: u64| *a -= b);
        d
    }

    /// Adds `k` memoized per-iteration deltas to the live counters
    /// (`mem` untouched: the replay layer re-applies cache accesses for
    /// real).
    pub(crate) fn add_replay_delta(&mut self, d: &SimStats, k: u64) {
        for_each_counter!(*self, d, |a: &mut u64, b: u64| *a += b * k);
    }

    /// Committed (correct-path) instructions issued.
    pub fn committed(&self) -> u64 {
        self.issued - self.issued_wrong_path
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed() as f64 / self.cycles as f64
    }

    /// Branch mispredictions (both kinds) per thousand committed
    /// instructions — the paper's MPPKI.
    pub fn mppki(&self) -> f64 {
        let committed = self.committed();
        if committed == 0 {
            return 0.0;
        }
        (self.branch_mispredicts + self.resolve_mispredicts) as f64 * 1000.0 / committed as f64
    }

    /// Fraction of issued instructions that were wrong-path (Figure 14's
    /// "% increase in instructions issued" comes from comparing this
    /// between configurations).
    pub fn wrong_path_fraction(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.issued_wrong_path as f64 / self.issued as f64
    }

    /// Average stall cycles per committed `resolve` (the paper's ASPCB is
    /// average stall cycles per converted branch).
    pub fn stalls_per_resolve(&self) -> f64 {
        if self.resolves == 0 {
            return 0.0;
        }
        self.resolve_stall_cycles as f64 / self.resolves as f64
    }

    /// Host-side simulation throughput: millions of committed simulated
    /// instructions per wall-clock second of `elapsed`.
    pub fn mips(&self, elapsed: std::time::Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed() as f64 / 1e6 / secs
    }

    /// Overall conditional-prediction accuracy on the committed path.
    pub fn prediction_accuracy(&self) -> f64 {
        let total = self.branches + self.resolves;
        if total == 0 {
            return 1.0;
        }
        1.0 - (self.branch_mispredicts + self.resolve_mispredicts) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            issued: 2200,
            issued_wrong_path: 200,
            branches: 100,
            branch_mispredicts: 5,
            resolves: 50,
            resolve_mispredicts: 5,
            resolve_stall_cycles: 150,
            ..SimStats::default()
        };
        assert_eq!(s.committed(), 2000);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mppki() - 5.0).abs() < 1e-12);
        assert!((s.wrong_path_fraction() - 200.0 / 2200.0).abs() < 1e-12);
        assert!((s.stalls_per_resolve() - 3.0).abs() < 1e-12);
        assert!((s.prediction_accuracy() - (1.0 - 10.0 / 150.0)).abs() < 1e-12);
        let mips = s.mips(std::time::Duration::from_millis(500));
        assert!((mips - 2000.0 / 1e6 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mppki(), 0.0);
        assert_eq!(s.wrong_path_fraction(), 0.0);
        assert_eq!(s.stalls_per_resolve(), 0.0);
        assert_eq!(s.prediction_accuracy(), 1.0);
        assert_eq!(s.mips(std::time::Duration::ZERO), 0.0);
    }
}

//! Steady-state iteration replay: memoize converged loop iterations.
//!
//! Hot loops quickly reach a steady state in which the front end, the
//! predictor, the caches, and the scoreboard all repeat the same
//! per-iteration trajectory. This module fingerprints the
//! iteration-relevant machine state at every backward steer (the loop
//! head); when an identical fingerprint recurs and a set of conservative
//! guards all pass, the memoized per-iteration delta — cycles, statistics,
//! register file, memory stores, predictor interactions, and the complete
//! front-end post-state — is applied in O(iteration) *functional* work
//! instead of O(iteration × pipeline) simulation.
//!
//! # Bit-identity invariant
//!
//! Replay-on must be indistinguishable from replay-off on every committed
//! architectural value and every reported [`crate::SimStats`] field. The
//! design achieves this by construction, not by approximation:
//!
//! * The signature ([`PreState`]) covers *all* state a recorded iteration
//!   reads other than registers and memory: the complete front end
//!   (relativized), the predictor's speculative words, and the scoreboard
//!   (relativized). Register- and memory-dependence is discharged by a
//!   functional pre-pass at replay time that re-executes the recorded
//!   issue steps against the *live* registers and memory, requiring every
//!   conditional to take its recorded direction and every data access to
//!   hit L1.
//! * Predictor table state is guarded by first-touch cell verification:
//!   the recording logs each predictor cell's value the first time an
//!   interaction touches it; replay re-probes those cells against the live
//!   tables and falls back on any difference.
//! * Anything the guards cannot cover cheaply aborts the recording
//!   outright: redirects, BTB misses, non-L1 accesses, `halt`, wrong-path
//!   returns, and iterations longer than a fixed step budget.
//! * Timing guards refuse to replay across the cycle limit, the watchdog
//!   budget, or a wall-clock poll boundary, so stop causes and partial
//!   statistics are unchanged.
//!
//! Cache and predictor side effects are *re-applied live* (real
//! `MemSystem::access` calls on the recorded/re-derived addresses, real
//! `update` calls on the recorded metadata), so their internal state and
//! statistics evolve exactly as full simulation would — L1 hits are
//! cycle-independent, which is what makes this sound.
//!
//! # Adaptive arming
//!
//! Signature capture and probing are not free: on workloads whose loops
//! never converge (irregular branches, growing footprints) every backward
//! steer would pay a store drain, a full state hash, and — on a miss — an
//! expensive front-end capture that never pays off. Each loop-head PC
//! therefore carries a tiny per-site state machine:
//!
//! * **Probing** — no signature work at all. A tick costs one map lookup
//!   and an O(1) proxy signature (the FNV of the cycle/sequence deltas
//!   since the site's previous trigger). Only after
//!   [`DirectionPredictor::replay_probe_streak`] consecutive identical
//!   proxies (a converging loop) does the site arm; after
//!   [`PROBE_FAIL_LIMIT`] accumulated proxy mismatches in one probing
//!   period (a loop that is not converging) the site disarms without
//!   ever having armed.
//! * **Armed** — the full pre-PR behavior: drain, hash, probe, record.
//!   A tick that applies no memoized iteration is a *miss tick*; after
//!   [`MISS_TICK_LIMIT`] consecutive miss ticks the site disarms.
//! * **Disarmed** — suppressed outright for [`REARM_BASE`]`<< backoff`
//!   ticks, then back to probing; the backoff grows on every disarm
//!   (capped) and decays on hits, so persistently non-converging sites
//!   approach zero overhead while phase-changing loops are re-captured.
//!
//! Disarmed sites are cheapest of all: the backward steer itself checks
//! the site table inside [`ReplayEngine::note_backward`] and burns one
//! unit of the suppression budget *without arming the trigger*, so the
//! main loop pays no batch break and no tick for them (an in-flight
//! recording is aborted — its site just disarmed, so the entry was not
//! going to pay off). Probing-mode suppressed ticks still finalize an
//! in-flight recording (finalization touches no memory state, so the
//! skipped store drain is safe — buffered stores drain on age or at the
//! next armed trigger) and are otherwise invisible: all signature work
//! happens only on drained state, and the state the gate consults is
//! replay-private, so arming decisions can never leak into architectural
//! results.

use crate::front::FrontSnapshot;
use crate::pipeline::Simulator;
use crate::stats::SimStats;
use std::collections::{HashMap, HashSet};
use vanguard_bpred::{DirectionPredictor, PredMeta};
use vanguard_isa::{eval_alu, FpOp, Inst, Operand, NUM_ARCH_REGS};
use vanguard_mem::AccessKind;

/// Memo-table entry budget; reaching it clears the whole table (a
/// deterministic, order-independent eviction policy).
const TABLE_CAP: usize = 4096;
/// Longest iteration (in issued instructions) worth memoizing.
const STEP_BUDGET: usize = 2048;
/// Consecutive verify failures before an entry is evicted.
const MAX_ENTRY_FAILS: u32 = 4;
/// Entry evictions before a loop-head PC is banned from re-recording.
const MAX_PC_FAILS: u32 = 8;
/// Consecutive zero-hit armed ticks before a site disarms.
const MISS_TICK_LIMIT: u32 = 4;
/// Miss ticks in an armed period that may start a recording capture.
/// Later miss ticks still probe the memo table (hits reset the count)
/// but skip the capture — the expensive part of a miss — since a site
/// missing this persistently is producing entries that do not match.
const RECORD_MISS_LIMIT: u32 = 1;
/// Proxy mismatches accumulated in one probing period before the site
/// disarms without arming — bounds the per-trigger tick cost a
/// never-converging loop can pay.
const PROBE_FAIL_LIMIT: u32 = 8;
/// Base suppression period (in ticks) of a freshly disarmed site.
const REARM_BASE: u32 = 64;
/// Cap on the exponential re-arm backoff: the longest suppression
/// period is `REARM_BASE << MAX_BACKOFF` ticks.
const MAX_BACKOFF: u32 = 6;

/// Statistics for the steady-state iteration-replay layer.
///
/// Reported on [`crate::SimResult::replay`]; deliberately *not* part of
/// [`crate::SimStats`], whose fields must be bit-identical with replay on
/// or off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Loop iterations applied from the memo table without simulation.
    pub hits: u64,
    /// Trigger points with no matching memo entry.
    pub misses: u64,
    /// Memoized iterations whose guards failed at replay time (fell back
    /// to full simulation).
    pub divergences: u64,
    /// Iterations recorded into the memo table.
    pub recordings: u64,
    /// Recordings discarded before finalization (redirect, BTB miss,
    /// non-L1 access, step budget, …).
    pub aborted_recordings: u64,
    /// Simulated cycles skipped by replay hits.
    pub replayed_cycles: u64,
    /// Issued instructions accounted by replay hits.
    pub replayed_insts: u64,
    /// Memo entries deliberately corrupted by fault injection
    /// (see [`crate::Simulator::set_replay_corruption`]).
    pub corrupted_entries: u64,
    /// Trigger ticks suppressed by the adaptive arming gate (probing or
    /// disarmed sites): backward steers that paid neither the store
    /// drain nor any signature work.
    pub suppressed_ticks: u64,
    /// Loop sites in the `Armed` state at the end of the run.
    pub armed_sites: u64,
    /// Loop sites sitting out a disarm period at the end of the run.
    pub disarmed_sites: u64,
}

/// Incremental FNV-1a over `u64` words, used for the replay signature
/// hash. Collisions are harmless: buckets are resolved by the exact
/// [`PreState`] compare.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// `std::hash::Hasher` adapter over [`Fnv`] for the replay-internal maps.
/// SipHash's DoS resistance buys nothing here (keys are simulator state,
/// not attacker input) and its per-lookup cost is material on the hit
/// path.
#[derive(Clone, Copy, Debug, Default)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// The exact iteration signature: everything an iteration's trajectory
/// depends on *except* registers and memory (those are discharged by the
/// functional pre-pass in [`verify`]).
#[derive(Clone, Debug, PartialEq)]
struct PreState {
    front: FrontSnapshot,
    /// Predictor speculative words (e.g. global history).
    spec: Vec<u64>,
    /// Scoreboard, relativized (`ready − cycle`, clamped at zero: a ready
    /// cycle in the past behaves identically to one equal to `cycle`).
    reg_ready_rel: [u64; NUM_ARCH_REGS],
}

/// One recorded issue step: enough to functionally re-execute the
/// iteration against live registers/memory and check every conditional
/// took its recorded direction.
#[derive(Clone, Debug)]
struct RecStep {
    inst: Inst,
    /// `Branch`: taken; `Resolve`: mispredicted; others: unused.
    outcome: bool,
}

/// One predictor interaction, in global order.
#[derive(Clone, Debug)]
enum PredEvent {
    /// A fetch-time `predict()` whose speculative-history side effect is
    /// re-applied via [`DirectionPredictor::replay_advance`].
    Advance { pc: u64, meta: PredMeta },
    /// An issue-time training `update()`, re-applied for real.
    Update {
        pc: u64,
        meta: PredMeta,
        taken: bool,
    },
}

/// A finalized memoized iteration.
#[derive(Clone, Debug)]
struct MemoEntry {
    pre: PreState,
    steps: Vec<RecStep>,
    inters: Vec<PredEvent>,
    /// First-touch predictor cells `(id, value)` in discovery order.
    cells: Vec<(u64, u64)>,
    /// I-side line-transition addresses (all L1 hits).
    iaccesses: Vec<u64>,
    /// BTB-hit steers `(from_pc, target_addr)` taken by the iteration.
    steers: Vec<(u64, u64)>,
    post: FrontSnapshot,
    post_reg_ready_rel: [u64; NUM_ARCH_REGS],
    d_cycle: u64,
    d_seq: u64,
    /// Per-iteration statistics delta (`mem` zeroed — memory statistics
    /// accrue live through the re-applied accesses).
    d_stats: SimStats,
    d_updates: u64,
    d_dbb_inserts: u64,
    d_dbb_spurious: u64,
    /// The iteration is a signature fixed point: its relativized post
    /// state equals its pre state, so after one replay the very same
    /// entry is guaranteed to match again. Enables the burst fast path
    /// (skip re-hash/re-match, restore the front end once per burst).
    chains: bool,
    /// Consecutive verify failures (reset on every hit).
    fails: u32,
}

/// An in-flight recording between two backward-steer triggers.
#[derive(Debug)]
struct Recording {
    key: (u32, u64),
    pre: PreState,
    start_cycle: u64,
    start_seq: u64,
    start_stats: SimStats,
    start_dbb_inserts: u64,
    start_dbb_spurious: u64,
    /// Update-count guard captured at the start (e.g. TAGE distance to
    /// the next aging event); re-checked against the live predictor at
    /// every replay.
    guard_at_start: u64,
    steps: Vec<RecStep>,
    inters: Vec<PredEvent>,
    cells: Vec<(u64, u64)>,
    seen: HashSet<u64, FnvBuild>,
    iaccesses: Vec<u64>,
    steers: Vec<(u64, u64)>,
    d_updates: u64,
    aborted: bool,
}

/// Reusable buffers for signature computation, verification, and the
/// functional pre-pass (kept out of [`MemoEntry`] borrows so the table and
/// the scratch space can be borrowed simultaneously).
#[derive(Debug)]
struct Scratch {
    spec: Vec<u64>,
    cells: Vec<(u64, u64)>,
    /// First-touch dedup for the verify cell induction. A linear-scan
    /// `Vec` beats a hash set: a converged iteration touches a handful
    /// of distinct cells.
    seen: Vec<u64>,
    regs: [u64; NUM_ARCH_REGS],
    /// Word-aligned store overlay emulating store-buffer forwarding.
    overlay: HashMap<u64, u64, FnvBuild>,
    /// Region stores `(word_addr, value)` in program order.
    store_log: Vec<(u64, u64)>,
    /// Region data accesses in program order (all L1 hits).
    daccesses: Vec<(u64, AccessKind)>,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            spec: Vec::new(),
            cells: Vec::new(),
            seen: Vec::new(),
            regs: [0; NUM_ARCH_REGS],
            overlay: HashMap::default(),
            store_log: Vec::new(),
            daccesses: Vec::new(),
        }
    }
}

/// Where a loop site sits in the adaptive-arming state machine (see the
/// module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SiteMode {
    /// Watching the O(1) proxy signature; no capture/probe work yet.
    Probing {
        /// Proxy signature of the site's previous trigger interval.
        last_proxy: u64,
        /// Consecutive triggers whose proxy matched `last_proxy`.
        streak: u32,
        /// Proxy mismatches accumulated this probing period; reaching
        /// [`PROBE_FAIL_LIMIT`] disarms the site without arming.
        fails: u32,
    },
    /// Full signature capture and probing.
    Armed {
        /// Consecutive armed ticks that applied no memoized iteration.
        miss_ticks: u32,
    },
    /// Suppressed outright; re-probes when `remaining` reaches zero.
    Disarmed {
        /// Suppressed ticks left before re-probing.
        remaining: u32,
    },
}

/// Per-loop-head arming state.
#[derive(Clone, Copy, Debug)]
struct SiteState {
    mode: SiteMode,
    /// Exponential re-arm backoff: grows on every disarm, decays on hits.
    backoff: u32,
    /// Cycle/sequence counters at the site's previous trigger, for the
    /// probing-mode proxy signature.
    last_cycle: u64,
    last_seq: u64,
}

impl Default for SiteState {
    fn default() -> Self {
        SiteState {
            mode: SiteMode::Probing {
                last_proxy: 0,
                streak: 0,
                fails: 0,
            },
            backoff: 0,
            last_cycle: 0,
            last_seq: 0,
        }
    }
}

/// The replay engine: trigger arming, the active recording, and the memo
/// table. Owned by the [`Simulator`] when the predictor supports replay.
#[derive(Debug)]
pub(crate) struct ReplayEngine {
    /// Set by a backward steer during fetch; consumed at the fixed trigger
    /// point in the simulator's main loop.
    pub(crate) armed: bool,
    recording: Option<Recording>,
    table: HashMap<(u32, u64), Vec<MemoEntry>, FnvBuild>,
    entry_count: usize,
    /// Evictions per loop-head PC; persistent verify failures ban the PC.
    fail_counts: HashMap<u32, u32, FnvBuild>,
    /// Adaptive-arming state per loop-head PC.
    sites: HashMap<u32, SiteState, FnvBuild>,
    /// Identical proxies required to arm a probing site (from
    /// [`DirectionPredictor::replay_probe_streak`]).
    probe_streak: u32,
    /// Chaos fault-injection seed: when set, the site gate is replaced by
    /// a seeded random admit/suppress coin (see
    /// [`crate::Simulator::set_replay_chaos`]).
    chaos_seed: Option<u64>,
    scratch: Scratch,
    corrupt_seed: Option<u64>,
    stats: ReplayStats,
}

impl ReplayEngine {
    pub(crate) fn new() -> Self {
        ReplayEngine {
            armed: false,
            recording: None,
            table: HashMap::default(),
            entry_count: 0,
            fail_counts: HashMap::default(),
            sites: HashMap::default(),
            probe_streak: 2,
            chaos_seed: None,
            scratch: Scratch::default(),
            corrupt_seed: None,
            stats: ReplayStats::default(),
        }
    }

    /// Reports lifetime counters plus the end-of-run site census.
    pub(crate) fn stats(&self) -> ReplayStats {
        let mut s = self.stats;
        for site in self.sites.values() {
            match site.mode {
                SiteMode::Armed { .. } => s.armed_sites += 1,
                SiteMode::Disarmed { .. } => s.disarmed_sites += 1,
                SiteMode::Probing { .. } => {}
            }
        }
        s
    }

    /// Sets the probing-mode arm threshold (predictor-informed).
    pub(crate) fn set_probe_streak(&mut self, streak: u32) {
        self.probe_streak = streak;
    }

    /// Arms chaos fault injection: the adaptive-arming gate is replaced
    /// by a seeded random admit/suppress decision per trigger tick,
    /// exercising arbitrary arm/disarm schedules.
    pub(crate) fn set_chaos(&mut self, seed: u64) {
        self.chaos_seed = Some(seed | 1);
    }

    /// Arms fault injection: every subsequently finalized memo entry has
    /// one guarded quantity corrupted, which the verify guards must catch.
    pub(crate) fn set_corruption(&mut self, seed: u64) {
        self.corrupt_seed = Some(seed | 1);
    }

    /// A backward (loop-closing) steer to the loop head at `site_pc` was
    /// predicted/taken this fetch cycle: request a trigger at the next
    /// main-loop fixed point — unless the site is disarmed, in which
    /// case the suppression budget is burned right here and the main
    /// loop never pays a batch break or a tick for it.
    pub(crate) fn note_backward(&mut self, site_pc: u32) {
        if self.chaos_seed.is_none() {
            if let Some(s) = self.sites.get_mut(&site_pc) {
                if let SiteMode::Disarmed { ref mut remaining } = s.mode {
                    *remaining -= 1;
                    if *remaining == 0 {
                        s.mode = SiteMode::Probing {
                            last_proxy: 0,
                            streak: 0,
                            fails: 0,
                        };
                    }
                    self.stats.suppressed_ticks += 1;
                    // The recording's site just disarmed after a run of
                    // misses — its entry was not going to pay off, and
                    // nothing will finalize it during the suppression
                    // window, so stop paying observer costs for it.
                    self.abort_recording();
                    return;
                }
            }
        }
        self.armed = true;
    }

    /// Irrecoverably poisons the active recording (redirect, BTB miss,
    /// non-L1 access, `halt`, wrong-path return, …).
    pub(crate) fn abort_recording(&mut self) {
        if let Some(rec) = self.recording.as_mut() {
            rec.aborted = true;
        }
    }

    /// Observes a fetch-time `predict()` (called immediately after it).
    pub(crate) fn on_predict(&mut self, pc: u64, meta: &PredMeta, pred: &dyn DirectionPredictor) {
        let Some(rec) = self.recording.as_mut() else {
            return;
        };
        if rec.aborted {
            return;
        }
        self.scratch.cells.clear();
        pred.probe_cells(pc, meta, &mut self.scratch.cells);
        for &(id, val) in &self.scratch.cells {
            if rec.seen.insert(id) {
                rec.cells.push((id, val));
            }
        }
        rec.inters.push(PredEvent::Advance { pc, meta: *meta });
    }

    /// Observes an issue-time training update (called immediately
    /// *before* `predictor.update`, so cell values are pre-update).
    pub(crate) fn on_update(
        &mut self,
        pc: u64,
        meta: &PredMeta,
        taken: bool,
        pred: &dyn DirectionPredictor,
    ) {
        let Some(rec) = self.recording.as_mut() else {
            return;
        };
        if rec.aborted {
            return;
        }
        self.scratch.cells.clear();
        pred.probe_cells(pc, meta, &mut self.scratch.cells);
        for &(id, val) in &self.scratch.cells {
            if rec.seen.insert(id) {
                rec.cells.push((id, val));
            }
        }
        rec.d_updates += 1;
        rec.inters.push(PredEvent::Update {
            pc,
            meta: *meta,
            taken,
        });
    }

    /// Observes an I-side cache line access (L1-hit path; misses abort).
    pub(crate) fn on_ifetch(&mut self, pc: u64) {
        if let Some(rec) = self.recording.as_mut() {
            if !rec.aborted {
                rec.iaccesses.push(pc);
            }
        }
    }

    /// Observes a BTB-hit steer.
    pub(crate) fn on_steer(&mut self, from_pc: u64, target_addr: u64) {
        if let Some(rec) = self.recording.as_mut() {
            if !rec.aborted {
                rec.steers.push((from_pc, target_addr));
            }
        }
    }

    /// Observes an issued instruction. `outcome` is the taken direction
    /// for `Branch`, the mispredicted flag for `Resolve`.
    pub(crate) fn on_issue(&mut self, inst: Inst, outcome: bool) {
        let Some(rec) = self.recording.as_mut() else {
            return;
        };
        if rec.aborted {
            return;
        }
        if rec.steps.len() >= STEP_BUDGET {
            rec.aborted = true;
            return;
        }
        rec.steps.push(RecStep { inst, outcome });
    }

    /// Consults and advances the adaptive-arming state for the site at
    /// `pc`; `true` admits the tick to the full capture/probe path.
    /// Replay-private state only: admission decisions never read or
    /// write anything architectural.
    fn site_gate(&mut self, pc: u32, cycle: u64, seq: u64) -> bool {
        if let Some(seed) = self.chaos_seed.as_mut() {
            // Chaos fault injection: an arbitrary admit/suppress schedule
            // in place of the state machine.
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            return *seed & 1 == 0;
        }
        let need = self.probe_streak;
        let s = self.sites.entry(pc).or_default();
        let d_cycle = cycle.wrapping_sub(s.last_cycle);
        let d_seq = seq.wrapping_sub(s.last_seq);
        s.last_cycle = cycle;
        s.last_seq = seq;
        match s.mode {
            SiteMode::Probing {
                ref mut last_proxy,
                ref mut streak,
                ref mut fails,
            } => {
                // O(1) proxy signature: a converged loop shows constant
                // per-iteration cycle and instruction-sequence deltas.
                let mut h = Fnv::new();
                h.u64(d_cycle);
                h.u64(d_seq);
                let proxy = h.finish();
                if proxy == *last_proxy {
                    *streak += 1;
                    if *streak >= need {
                        s.mode = SiteMode::Armed { miss_ticks: 0 };
                        return true;
                    }
                } else {
                    *last_proxy = proxy;
                    *streak = 0;
                    *fails += 1;
                    if *fails >= PROBE_FAIL_LIMIT {
                        // Not converging: give up probing for this
                        // period and back off like a missing armed site.
                        let period = REARM_BASE << s.backoff.min(MAX_BACKOFF);
                        s.backoff = (s.backoff + 1).min(MAX_BACKOFF);
                        s.mode = SiteMode::Disarmed { remaining: period };
                    }
                }
                false
            }
            SiteMode::Armed { .. } => true,
            SiteMode::Disarmed { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    s.mode = SiteMode::Probing {
                        last_proxy: 0,
                        streak: 0,
                        fails: 0,
                    };
                }
                false
            }
        }
    }

    /// Feeds an admitted tick's outcome back into the site state: hits
    /// reset the miss counter and decay the backoff; `MISS_TICK_LIMIT`
    /// consecutive zero-hit ticks disarm the site for an exponentially
    /// growing period.
    fn site_feedback(&mut self, pc: u32, hit: bool) {
        let Some(s) = self.sites.get_mut(&pc) else {
            return; // chaos mode tracks no sites
        };
        let SiteMode::Armed { ref mut miss_ticks } = s.mode else {
            return;
        };
        if hit {
            *miss_ticks = 0;
            s.backoff = s.backoff.saturating_sub(1);
        } else {
            *miss_ticks += 1;
            if *miss_ticks >= MISS_TICK_LIMIT {
                let period = REARM_BASE << s.backoff.min(MAX_BACKOFF);
                s.backoff = (s.backoff + 1).min(MAX_BACKOFF);
                s.mode = SiteMode::Disarmed { remaining: period };
            }
        }
    }

    /// The trigger: runs at the main loop's fixed point (after
    /// redirect-apply and journal compaction, before fetch) when a
    /// backward steer armed the engine. The site gate decides whether
    /// the tick pays for signature work at all; admitted ticks finalize
    /// any active recording, then replay memoized iterations for as long
    /// as they keep matching, else start a new recording.
    fn tick(&mut self, sim: &mut Simulator<'_>) {
        self.armed = false;
        if sim.pending.is_some() || sim.front.is_halted() || sim.halted {
            // A redirect is in flight (the recording, if any, is already
            // aborted) or the machine is stopping: not a steady-state
            // boundary.
            return;
        }
        let site_pc = sim.front.replay_pc();
        if !self.site_gate(site_pc, sim.cycle, sim.next_seq) {
            self.stats.suppressed_ticks += 1;
            // Finalization reads only front-end/statistic state, never
            // memory, so it is safe without the store drain below; the
            // skipped drain itself is invisible (stores drain on age or
            // at the next admitted trigger, before any signature work).
            if let Some(rec) = self.recording.take() {
                self.finalize(rec, sim);
            }
            return;
        }
        // All buffered stores are correct-path here (any conditional that
        // could squash them has resolved), so draining is invisible to
        // the architectural state and makes memory the single source of
        // truth for the pre-pass.
        sim.store_buffer.drain_all(&mut sim.memory);
        if let Some(rec) = self.recording.take() {
            self.finalize(rec, sim);
        }
        let hits_at_entry = self.stats.hits;
        let mut record_key = None;
        loop {
            let pc = sim.front.replay_pc();
            let mut h = Fnv::new();
            sim.front.replay_hash(sim.cycle, &mut h);
            self.scratch.spec.clear();
            sim.front.predictor.spec_words(&mut self.scratch.spec);
            for &w in &self.scratch.spec {
                h.u64(w);
            }
            for &r in sim.reg_ready.iter() {
                h.u64(r.saturating_sub(sim.cycle));
            }
            let key = (pc, h.finish());
            let spec = &self.scratch.spec;
            let Some(bucket) = self.table.get_mut(&key) else {
                self.stats.misses += 1;
                record_key = Some(key);
                break;
            };
            let pos = bucket.iter().position(|e| {
                e.pre.spec == *spec
                    && sim
                        .reg_ready
                        .iter()
                        .zip(e.pre.reg_ready_rel.iter())
                        .all(|(&a, &rel)| a.saturating_sub(sim.cycle) == rel)
                    && sim.front.replay_matches(&e.pre.front, sim.cycle)
            });
            let Some(i) = pos else {
                self.stats.misses += 1;
                record_key = Some(key);
                break;
            };
            let entry = &mut bucket[i];
            let ok = verify(entry, &mut self.scratch, sim);
            if ok {
                if entry.chains {
                    // Burst fast path: the entry's post state equals its
                    // pre state (relativized), so after each application
                    // this same entry is guaranteed to match again —
                    // skip re-hashing/re-matching and apply-verify until
                    // a guard fails, then restore the front end and the
                    // scaled deltas once.
                    let mut k = 0u64;
                    loop {
                        apply_core(entry, &self.scratch, sim);
                        k += 1;
                        if !verify(entry, &mut self.scratch, sim) {
                            break;
                        }
                    }
                    apply_finish(entry, k, sim);
                    self.stats.hits += k;
                    self.stats.replayed_cycles += k * entry.d_cycle;
                    self.stats.replayed_insts += k * entry.d_stats.issued;
                    // The burst always ends in a failed verify on an
                    // entry the signature still matched: the same
                    // divergence the slow path would have counted.
                    self.stats.divergences += 1;
                    entry.fails = 1;
                    break;
                }
                apply_core(entry, &self.scratch, sim);
                apply_finish(entry, 1, sim);
                entry.fails = 0;
                self.stats.hits += 1;
                self.stats.replayed_cycles += entry.d_cycle;
                self.stats.replayed_insts += entry.d_stats.issued;
                continue; // chain into the next iteration
            }
            self.stats.divergences += 1;
            entry.fails += 1;
            if entry.fails >= MAX_ENTRY_FAILS {
                bucket.swap_remove(i);
                self.entry_count -= 1;
                *self.fail_counts.entry(pc).or_insert(0) += 1;
            }
            break;
        }
        if let Some(key) = record_key {
            // Capture only early in a miss streak: a site that has
            // missed `RECORD_MISS_LIMIT` ticks straight keeps producing
            // entries that do not match, so later ticks probe without
            // paying for a recording. Chaos mode tracks no sites and
            // always records (the fuzz schedules must reach the
            // recording paths).
            let capture = match self.sites.get(&site_pc).map(|s| s.mode) {
                Some(SiteMode::Armed { miss_ticks }) => miss_ticks < RECORD_MISS_LIMIT,
                _ => true,
            };
            if capture {
                self.maybe_start_record(key, sim);
            }
        }
        let hit_tick = self.stats.hits > hits_at_entry;
        self.site_feedback(site_pc, hit_tick);
    }

    fn maybe_start_record(&mut self, key: (u32, u64), sim: &Simulator<'_>) {
        if self
            .fail_counts
            .get(&key.0)
            .is_some_and(|&c| c >= MAX_PC_FAILS)
        {
            return;
        }
        let pre = PreState {
            front: sim.front.replay_capture(sim.cycle),
            // Computed for this exact state by the trigger loop above.
            spec: self.scratch.spec.clone(),
            reg_ready_rel: rel_regs(&sim.reg_ready, sim.cycle),
        };
        self.recording = Some(Recording {
            key,
            pre,
            start_cycle: sim.cycle,
            start_seq: sim.next_seq,
            start_stats: sim.stats,
            start_dbb_inserts: sim.front.dbb.inserts(),
            start_dbb_spurious: sim.front.dbb.spurious_lookups(),
            guard_at_start: sim.front.predictor.replay_guard(),
            steps: Vec::new(),
            inters: Vec::new(),
            cells: Vec::new(),
            seen: HashSet::default(),
            iaccesses: Vec::new(),
            steers: Vec::new(),
            d_updates: 0,
            aborted: false,
        });
    }

    fn finalize(&mut self, rec: Recording, sim: &Simulator<'_>) {
        if rec.aborted {
            self.stats.aborted_recordings += 1;
            return;
        }
        let d_cycle = sim.cycle - rec.start_cycle;
        if d_cycle == 0 || rec.d_updates >= rec.guard_at_start {
            self.stats.aborted_recordings += 1;
            return;
        }
        let post = sim.front.replay_capture(sim.cycle);
        let post_reg_ready_rel = rel_regs(&sim.reg_ready, sim.cycle);
        // Fixed-point detection for the burst fast path: the iteration
        // maps its own signature onto itself (front end, scoreboard, and
        // predictor speculative words — the latter evolve as a fixed
        // function of the recorded interactions, so recurrence at
        // finalize implies recurrence on every subsequent application).
        self.scratch.spec.clear();
        sim.front.predictor.spec_words(&mut self.scratch.spec);
        let chains = rec.pre.front == post
            && rec.pre.reg_ready_rel == post_reg_ready_rel
            && rec.pre.spec == self.scratch.spec;
        let mut entry = MemoEntry {
            pre: rec.pre,
            steps: rec.steps,
            inters: rec.inters,
            cells: rec.cells,
            iaccesses: rec.iaccesses,
            steers: rec.steers,
            post,
            post_reg_ready_rel,
            d_cycle,
            d_seq: sim.next_seq - rec.start_seq,
            d_stats: sim.stats.replay_delta(&rec.start_stats),
            d_updates: rec.d_updates,
            d_dbb_inserts: sim.front.dbb.inserts() - rec.start_dbb_inserts,
            d_dbb_spurious: sim.front.dbb.spurious_lookups() - rec.start_dbb_spurious,
            chains,
            fails: 0,
        };
        if let Some(seed) = self.corrupt_seed.as_mut() {
            if corrupt_entry(&mut entry, seed) {
                self.stats.corrupted_entries += 1;
            }
        }
        self.stats.recordings += 1;
        if self.entry_count >= TABLE_CAP {
            self.table.clear();
            self.entry_count = 0;
        }
        let bucket = self.table.entry(rec.key).or_default();
        if let Some(i) = bucket.iter().position(|e| e.pre == entry.pre) {
            bucket[i] = entry;
        } else {
            bucket.push(entry);
            self.entry_count += 1;
        }
    }
}

impl Simulator<'_> {
    /// Runs the replay trigger with the engine temporarily taken out of
    /// `self`, so the engine and the rest of the machine can be borrowed
    /// simultaneously.
    pub(crate) fn replay_tick(&mut self) {
        let Some(mut eng) = self.replay.take() else {
            return;
        };
        eng.tick(self);
        self.replay = Some(eng);
    }
}

fn rel_regs(reg_ready: &[u64; NUM_ARCH_REGS], cycle: u64) -> [u64; NUM_ARCH_REGS] {
    let mut out = [0u64; NUM_ARCH_REGS];
    for (o, &r) in out.iter_mut().zip(reg_ready.iter()) {
        *o = r.saturating_sub(cycle);
    }
    out
}

fn opval(regs: &[u64; NUM_ARCH_REGS], o: Operand) -> u64 {
    match o {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v as u64,
    }
}

/// Checks every guard for replaying `e` at the simulator's current state,
/// running the functional pre-pass into `s`. Pure with respect to the
/// simulator (only `&Simulator`); on `true` the pre-pass results in `s`
/// are ready for [`apply`].
fn verify(e: &MemoEntry, s: &mut Scratch, sim: &Simulator<'_>) -> bool {
    // -- Timing guards: never replay across a stop or poll boundary. --
    let Some(end) = sim.cycle.checked_add(e.d_cycle) else {
        return false;
    };
    if end > sim.config.max_cycles || end > sim.watchdog_cycles {
        return false;
    }
    // The wall-clock watchdog polls every 4096 cycles; skipping a poll
    // would change the (inherently wall-time-dependent) TimedOut point.
    if sim.watchdog_deadline.is_some() && (sim.cycle >> 12) != (end >> 12) {
        return false;
    }
    // -- Predictor epoch guard (e.g. TAGE aging distance). --
    if e.d_updates >= sim.front.predictor.replay_guard() {
        return false;
    }
    // -- Steer guard: every recorded steer must still be a BTB hit. --
    for &(from, target) in &e.steers {
        if !sim.front.replay_btb_hit(from, target) {
            return false;
        }
    }
    // -- I-side guard: every recorded line access must still hit L1. --
    for &pc in &e.iaccesses {
        if !sim.mem_sys.probe_l1(pc, AccessKind::InstFetch) {
            return false;
        }
    }
    // -- Predictor first-touch cell induction: re-derive each cell's
    //    first-touch value against the live tables; equality means the
    //    recorded interaction sequence evolves identically. --
    s.seen.clear();
    let mut ci = 0usize;
    for ev in &e.inters {
        let (pc, meta) = match ev {
            PredEvent::Advance { pc, meta } | PredEvent::Update { pc, meta, .. } => (*pc, meta),
        };
        s.cells.clear();
        sim.front.predictor.probe_cells(pc, meta, &mut s.cells);
        for &cell in &s.cells {
            if !s.seen.contains(&cell.0) {
                s.seen.push(cell.0);
                if ci >= e.cells.len() || e.cells[ci] != cell {
                    return false;
                }
                ci += 1;
            }
        }
    }
    if ci != e.cells.len() {
        return false;
    }
    // -- Functional pre-pass: re-execute the recorded issue steps against
    //    live registers/memory. Conditionals must take their recorded
    //    directions (anything else is a different trajectory) and every
    //    data access must hit L1 (anything else had different timing). --
    s.regs = sim.regs;
    s.overlay.clear();
    s.store_log.clear();
    s.daccesses.clear();
    for step in &e.steps {
        match step.inst {
            Inst::Alu { op, dst, a, b } => {
                let av = opval(&s.regs, a);
                let bv = opval(&s.regs, b);
                s.regs[dst.index()] = eval_alu(op, av, bv);
            }
            Inst::Fp { op, dst, a, b } => {
                let av = f64::from_bits(s.regs[a.index()]);
                let bv = f64::from_bits(s.regs[b.index()]);
                let r = match op {
                    FpOp::Add => av + bv,
                    FpOp::Sub => av - bv,
                    FpOp::Mul => av * bv,
                    FpOp::Div => av / bv,
                };
                s.regs[dst.index()] = r.to_bits();
            }
            Inst::Cmp { kind, dst, a, b } => {
                let av = s.regs[a.index()];
                let bv = opval(&s.regs, b);
                s.regs[dst.index()] = kind.eval(av, bv) as u64;
            }
            Inst::Load {
                dst,
                base,
                offset,
                speculative,
            } => {
                let addr = s.regs[base.index()].wrapping_add(offset as u64);
                if !sim.mem_sys.probe_l1(addr, AccessKind::Load) {
                    return false;
                }
                let w = addr & !7;
                // Store-buffer forwarding semantics: youngest region store
                // to the word wins, else architectural memory (drained at
                // the region boundary).
                let value = match s.overlay.get(&w).copied().or_else(|| sim.memory.read(addr)) {
                    Some(v) => v,
                    None if speculative => 0,
                    None => return false, // would have faulted: diverge
                };
                s.regs[dst.index()] = value;
                s.daccesses.push((addr, AccessKind::Load));
            }
            Inst::Store { src, base, offset } => {
                let addr = s.regs[base.index()].wrapping_add(offset as u64);
                if !sim.mem_sys.probe_l1(addr, AccessKind::Store) {
                    return false;
                }
                let w = addr & !7;
                let v = s.regs[src.index()];
                s.overlay.insert(w, v);
                s.store_log.push((w, v));
                s.daccesses.push((addr, AccessKind::Store));
            }
            Inst::Branch { cond, src, .. } | Inst::Resolve { cond, src, .. } => {
                if cond.eval(s.regs[src.index()]) != step.outcome {
                    return false;
                }
            }
            Inst::Nop => {}
            // Front-end-only instructions never issue; a recording cannot
            // contain them.
            _ => return false,
        }
    }
    true
}

/// Applies the per-iteration half of a verified memo entry:
/// architectural state from the pre-pass, live cache/predictor side
/// effects, and the cycle advance. Must only be called with the `s`
/// produced by a successful [`verify`] of the same entry, and must be
/// followed by [`apply_finish`] before control returns to the
/// simulator's main loop.
fn apply_core(e: &MemoEntry, s: &Scratch, sim: &mut Simulator<'_>) {
    let at = sim.cycle;
    sim.regs = s.regs;
    for &(w, v) in &s.store_log {
        sim.memory.write(w, v);
    }
    // Re-apply cache traffic for real so hierarchy state and MemStats
    // evolve exactly as full simulation would (all L1 hits, whose
    // side effects are cycle-independent).
    for &(addr, kind) in &s.daccesses {
        let _ = sim.mem_sys.access(at, addr, kind);
    }
    for &pc in &e.iaccesses {
        let _ = sim.mem_sys.access(at, pc, AccessKind::InstFetch);
    }
    // Re-apply predictor interactions in global order.
    for ev in &e.inters {
        match ev {
            PredEvent::Advance { pc, meta } => sim.front.predictor.replay_advance(*pc, meta),
            PredEvent::Update { pc, meta, taken } => sim.front.predictor.update(*pc, meta, *taken),
        }
    }
    sim.cycle = at + e.d_cycle;
}

/// Applies the once-per-burst half: the front-end post-snapshot, the
/// scoreboard, and the memoized per-iteration deltas scaled by the `k`
/// consecutive [`apply_core`] applications of `e` that preceded it.
/// Intermediate front-end/scoreboard states are never observed, so
/// restoring only the final one is behavior-identical to restoring each.
fn apply_finish(e: &MemoEntry, k: u64, sim: &mut Simulator<'_>) {
    let end = sim.cycle;
    sim.front
        .replay_restore(&e.post, end, k * e.d_dbb_inserts, k * e.d_dbb_spurious);
    for (rr, &rel) in sim.reg_ready.iter_mut().zip(e.post_reg_ready_rel.iter()) {
        *rr = end + rel;
    }
    sim.stats.add_replay_delta(&e.d_stats, k);
    sim.next_seq += k * e.d_seq;
}

/// Fault injection: corrupts exactly one *guarded* quantity of a freshly
/// recorded entry — a conditional's recorded outcome (caught by the
/// pre-pass) or a first-touch cell value (caught by cell induction) — so
/// the divergence guards must detect it and fall back. Returns whether a
/// corruptible quantity existed.
fn corrupt_entry(e: &mut MemoEntry, seed: &mut u64) -> bool {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let conds: Vec<usize> = e
        .steps
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st.inst, Inst::Branch { .. } | Inst::Resolve { .. }))
        .map(|(i, _)| i)
        .collect();
    if !conds.is_empty() {
        let i = conds[(*seed % conds.len() as u64) as usize];
        e.steps[i].outcome = !e.steps[i].outcome;
        return true;
    }
    if !e.cells.is_empty() {
        let i = (*seed % e.cells.len() as u64) as usize;
        e.cells[i].1 = e.cells[i].1.wrapping_add(1);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_order_and_value() {
        let mut a = Fnv::new();
        a.u64(1);
        a.u64(2);
        let mut b = Fnv::new();
        b.u64(2);
        b.u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.u64(1);
        c.u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn corruption_flips_a_guarded_quantity() {
        let mut seed = 0x1234_5678_9abc_def0u64 | 1;
        let mut e = MemoEntry {
            pre: PreState {
                front: FrontSnapshot::empty_for_test(),
                spec: Vec::new(),
                reg_ready_rel: [0; NUM_ARCH_REGS],
            },
            steps: vec![RecStep {
                inst: Inst::Nop,
                outcome: false,
            }],
            inters: Vec::new(),
            cells: vec![(7, 3)],
            iaccesses: Vec::new(),
            steers: Vec::new(),
            post: FrontSnapshot::empty_for_test(),
            post_reg_ready_rel: [0; NUM_ARCH_REGS],
            d_cycle: 1,
            d_seq: 1,
            d_stats: SimStats::default(),
            d_updates: 0,
            d_dbb_inserts: 0,
            d_dbb_spurious: 0,
            chains: false,
            fails: 0,
        };
        // No conditional steps: the cell value must be bumped.
        assert!(corrupt_entry(&mut e, &mut seed));
        assert_ne!(e.cells[0].1, 3);
    }

    #[test]
    fn site_arms_only_after_identical_proxy_streak() {
        let mut e = ReplayEngine::new();
        // Varying trigger intervals: the proxy never repeats, the site
        // never admits a tick.
        assert!(!e.site_gate(7, 100, 10));
        assert!(!e.site_gate(7, 250, 31));
        assert!(!e.site_gate(7, 275, 40));
        // Constant intervals: the first sets the proxy, the default
        // streak of 2 arms on the third.
        assert!(!e.site_gate(7, 300, 50));
        assert!(!e.site_gate(7, 325, 60));
        assert!(e.site_gate(7, 350, 70));
        // Armed sites admit regardless of interval.
        assert!(e.site_gate(7, 999, 999));
    }

    #[test]
    fn armed_site_disarms_after_miss_ticks_and_rearms_with_backoff() {
        let mut e = ReplayEngine::new();
        let mut cycle = 0u64;
        let mut seq = 0u64;
        let mut tick = move |e: &mut ReplayEngine| {
            cycle += 10;
            seq += 4;
            e.site_gate(5, cycle, seq)
        };
        // Probe (proxy set, streak 1), then arm.
        assert!(!tick(&mut e));
        assert!(!tick(&mut e));
        assert!(tick(&mut e));
        // MISS_TICK_LIMIT consecutive zero-hit ticks disarm the site…
        e.site_feedback(5, false);
        for _ in 1..MISS_TICK_LIMIT {
            assert!(tick(&mut e), "armed until the miss limit");
            e.site_feedback(5, false);
        }
        // …for REARM_BASE suppressed ticks.
        for i in 0..REARM_BASE {
            assert!(!tick(&mut e), "suppressed tick {i}");
        }
        // Back to probing: three constant-interval ticks re-arm.
        assert!(!tick(&mut e));
        assert!(!tick(&mut e));
        assert!(tick(&mut e));
        // A second disarm doubles the suppression period (backoff).
        e.site_feedback(5, false);
        for _ in 1..MISS_TICK_LIMIT {
            assert!(tick(&mut e));
            e.site_feedback(5, false);
        }
        for i in 0..2 * REARM_BASE {
            assert!(!tick(&mut e), "backed-off suppressed tick {i}");
        }
        assert!(!tick(&mut e));
        assert!(!tick(&mut e));
        assert!(tick(&mut e), "re-arms after the backed-off period");
    }

    #[test]
    fn hit_ticks_reset_the_miss_count() {
        let mut e = ReplayEngine::new();
        let mut cycle = 0u64;
        let mut tick = move |e: &mut ReplayEngine| {
            cycle += 10;
            e.site_gate(9, cycle, cycle)
        };
        assert!(!tick(&mut e));
        assert!(!tick(&mut e));
        assert!(tick(&mut e));
        // Seven misses, one hit, seven more misses: never disarms.
        for _ in 0..MISS_TICK_LIMIT - 1 {
            e.site_feedback(9, false);
            assert!(tick(&mut e));
        }
        e.site_feedback(9, true);
        for _ in 0..MISS_TICK_LIMIT - 1 {
            assert!(tick(&mut e));
            e.site_feedback(9, false);
        }
        assert!(tick(&mut e), "hit reset the consecutive-miss count");
    }

    #[test]
    fn stats_census_counts_armed_and_disarmed_sites() {
        let mut e = ReplayEngine::new();
        // Site 1: armed.
        for i in 1..=3u64 {
            e.site_gate(1, i * 10, i * 10);
        }
        // Site 2: armed then disarmed.
        for i in 1..=3u64 {
            e.site_gate(2, i * 7, i * 7);
        }
        for _ in 0..MISS_TICK_LIMIT {
            e.site_feedback(2, false);
        }
        // Site 3: still probing.
        e.site_gate(3, 5, 5);
        let s = e.stats();
        assert_eq!(s.armed_sites, 1);
        assert_eq!(s.disarmed_sites, 1);
    }
}

//! The issue/execute core: scoreboarded in-order issue with speculative
//! wrong-path execution and checkpoint rollback.

use crate::config::MachineConfig;
use crate::front::{FetchSnapshot, FrontEnd, PredInfo};
use crate::replay::{ReplayEngine, ReplayStats};
use crate::stats::SimStats;
use crate::store_buffer::StoreBuffer;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use vanguard_isa::{
    eval_alu, BlockId, DecodedImage, FpOp, FuClass, Inst, Memory, Operand, Program, NUM_ARCH_REGS,
};
use vanguard_mem::{AccessKind, Level, MemSystem};

/// Why the simulation stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// A `halt` instruction committed.
    Halted,
    /// The configured cycle limit was reached.
    CycleLimit,
    /// A watchdog (cycle budget or wall-clock deadline, see
    /// [`Simulator::set_watchdog`]) cancelled the run cooperatively.
    TimedOut,
}

/// Simulation errors (architectural faults on the committed path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A committed non-speculative load touched an unmapped address.
    LoadFault {
        /// Faulting address.
        addr: u64,
        /// Program counter of the load.
        pc: u64,
    },
    /// A committed `resolve` found no valid DBB entry *and* the program
    /// had no outstanding `predict` (compiler bug, not an exceptional
    /// control-flow artifact).
    OrphanResolve {
        /// Program counter of the resolve.
        pc: u64,
    },
    /// The decoded image violated a structural invariant the front end
    /// relies on (e.g. a conditional without a fall-through successor, or
    /// a front-end-only instruction reaching issue). Always a compiler or
    /// decoder bug, surfaced as a trap so a bad program cannot abort the
    /// host process.
    MalformedImage {
        /// Program counter of the offending instruction.
        pc: u64,
        /// The violated invariant.
        detail: &'static str,
    },
}

impl SimError {
    /// Program counter the fault was detected at.
    pub fn pc(&self) -> u64 {
        match *self {
            SimError::LoadFault { pc, .. }
            | SimError::OrphanResolve { pc }
            | SimError::MalformedImage { pc, .. } => pc,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LoadFault { addr, pc } => {
                write!(f, "committed load fault at {addr:#x} (pc {pc:#x})")
            }
            SimError::OrphanResolve { pc } => write!(f, "orphan resolve at pc {pc:#x}"),
            SimError::MalformedImage { pc, detail } => {
                write!(f, "malformed image at pc {pc:#x}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A [`SimError`] plus the cycle it was detected at, from
/// [`Simulator::run_checked`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimFault {
    /// The architectural fault.
    pub error: SimError,
    /// Cycle the fault was detected at.
    pub cycle: u64,
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at cycle {}", self.error, self.cycle)
    }
}

impl std::error::Error for SimFault {}

/// A pipeline trace event, delivered to [`Simulator::run_traced`]'s sink
/// in cycle order. Intended for debugging schedules and for pipeline
/// visualisation; the no-trace path pays nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction issued.
    Issue {
        /// Cycle of issue.
        cycle: u64,
        /// Code address.
        pc: u64,
        /// Mnemonic of the issued instruction.
        mnemonic: &'static str,
        /// Whether it was issued on a path later squashed.
        wrong_path: bool,
    },
    /// A misprediction redirect was applied (flush + re-steer).
    Flush {
        /// Cycle the flush took effect.
        cycle: u64,
        /// Re-steer target block.
        target: BlockId,
    },
    /// A `resolve` detected a misprediction.
    ResolveMispredict {
        /// Cycle of detection.
        cycle: u64,
        /// Resolve's code address.
        pc: u64,
    },
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Collected statistics.
    pub stats: SimStats,
    /// Final architectural register file.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Final architectural memory image.
    pub memory: Memory,
    /// Why the run ended.
    pub stop: StopCause,
    /// Steady-state replay layer statistics (all zeros when replay was
    /// disabled or unsupported by the predictor).
    pub replay: ReplayStats,
}

/// Per-stage wall-clock attribution for the pipeline hot loop, collected
/// by [`Simulator::run_profiled`].
///
/// This simulator executes instructions at issue, so the issue and
/// execute stages are one bucket (`issue_ns`). Replayed spans advance the
/// cycle counter without running the per-cycle stages, so `cycles` counts
/// only cycles simulated in full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotloopProfile {
    /// Nanoseconds in the fetch stage (I$ probes, prediction, steers).
    pub fetch_ns: u64,
    /// Nanoseconds in the fused issue/execute stage.
    pub issue_ns: u64,
    /// Nanoseconds committing stores (store-buffer drain).
    pub commit_ns: u64,
    /// Nanoseconds in steady-state replay triggers (signature probing,
    /// capture, and memoized application).
    pub replay_ns: u64,
    /// Nanoseconds of batch-entry work: stop checks, watchdog polls,
    /// redirect application, journal compaction.
    pub other_ns: u64,
    /// Cycles simulated in full (excludes replayed spans).
    pub cycles: u64,
}

impl HotloopProfile {
    /// Total attributed nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.fetch_ns + self.issue_ns + self.commit_ns + self.replay_ns + self.other_ns
    }

    /// Accumulates another profile into this one (for multi-job sums).
    pub fn merge(&mut self, other: &HotloopProfile) {
        self.fetch_ns += other.fetch_ns;
        self.issue_ns += other.issue_ns;
        self.commit_ns += other.commit_ns;
        self.replay_ns += other.replay_ns;
        self.other_ns += other.other_ns;
        self.cycles += other.cycles;
    }
}

/// Trace sink type (see [`Simulator::run_traced`]).
type TraceSink<'t> = Box<dyn FnMut(&TraceEvent) + 't>;

pub(crate) struct PendingRedirect {
    redirect_cycle: u64,
    target: BlockId,
    regs: [u64; NUM_ARCH_REGS],
    reg_ready: [u64; NUM_ARCH_REGS],
    store_seq: u64,
    snapshot: FetchSnapshot,
    /// Predictor-history repair applied at flush time (fetches made while
    /// the redirect was in flight polluted speculative history).
    repair: Option<(vanguard_bpred::PredMeta, bool)>,
}

/// The cycle-level in-order superscalar simulator.
///
/// See the crate docs for the pipeline model. Construct with a program, an
/// initial memory image, a [`MachineConfig`], and a direction predictor;
/// drive with [`run`](Self::run). Simulations of the same program can share
/// one pre-decoded image via [`with_image`](Self::with_image).
pub struct Simulator<'t> {
    pub(crate) config: MachineConfig,
    pub(crate) front: FrontEnd,
    pub(crate) mem_sys: MemSystem,
    pub(crate) memory: Memory,
    pub(crate) regs: [u64; NUM_ARCH_REGS],
    pub(crate) reg_ready: [u64; NUM_ARCH_REGS],
    pub(crate) store_buffer: StoreBuffer,
    pub(crate) stats: SimStats,
    pub(crate) cycle: u64,
    pub(crate) next_seq: u64,
    pub(crate) pending: Option<PendingRedirect>,
    pub(crate) halted: bool,
    trace: Option<TraceSink<'t>>,
    /// Watchdog cycle budget (`u64::MAX` = disabled): exceeding it stops
    /// the run with [`StopCause::TimedOut`], unlike the architectural
    /// `config.max_cycles` limit which reports [`StopCause::CycleLimit`].
    pub(crate) watchdog_cycles: u64,
    /// Watchdog wall-clock deadline, checked every 4096 cycles so the
    /// clean-run hot loop never pays a syscall per cycle.
    pub(crate) watchdog_deadline: Option<Instant>,
    /// Steady-state iteration replay (present iff enabled and the
    /// predictor supports it; boxed — it is cold relative to the fields
    /// the per-cycle loop touches).
    pub(crate) replay: Option<Box<ReplayEngine>>,
}

impl<'t> fmt::Debug for Simulator<'t> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'t> Simulator<'t> {
    /// Creates a simulator over `program` with the given initial data
    /// memory, machine configuration, and direction predictor.
    ///
    /// Decodes the program into a private flat image; callers running many
    /// simulations of one program should decode once and use
    /// [`with_image`](Self::with_image).
    pub fn new(
        program: &Program,
        memory: Memory,
        config: MachineConfig,
        predictor: Box<dyn vanguard_bpred::DirectionPredictor>,
    ) -> Self {
        Simulator::with_image(
            Arc::new(DecodedImage::build(program)),
            memory,
            config,
            predictor,
        )
    }

    /// Creates a simulator over a shared pre-decoded program image.
    pub fn with_image(
        image: Arc<DecodedImage>,
        memory: Memory,
        config: MachineConfig,
        predictor: Box<dyn vanguard_bpred::DirectionPredictor>,
    ) -> Self {
        let replay = predictor.replay_supported().then(|| {
            let mut eng = Box::new(ReplayEngine::new());
            eng.set_probe_streak(predictor.replay_probe_streak());
            eng
        });
        Simulator {
            config,
            front: FrontEnd::new(image, config, predictor),
            mem_sys: MemSystem::new(config.mem),
            memory,
            regs: [0; NUM_ARCH_REGS],
            reg_ready: [0; NUM_ARCH_REGS],
            store_buffer: StoreBuffer::new(),
            stats: SimStats::default(),
            cycle: 0,
            next_seq: 0,
            pending: None,
            halted: false,
            trace: None,
            watchdog_cycles: u64::MAX,
            watchdog_deadline: None,
            replay,
        }
    }

    /// Enables or disables steady-state iteration replay (enabled by
    /// default whenever the predictor supports it — replay is
    /// bit-identical on all committed state and statistics, so goldens
    /// are safe either way).
    pub fn set_replay(&mut self, enabled: bool) {
        if enabled {
            if self.replay.is_none() && self.front.predictor.replay_supported() {
                let mut eng = Box::new(ReplayEngine::new());
                eng.set_probe_streak(self.front.predictor.replay_probe_streak());
                self.replay = Some(eng);
            }
        } else {
            self.replay = None;
        }
    }

    /// Arms replay fault injection: every memoized iteration recorded
    /// from now on has one guarded quantity corrupted. The divergence
    /// guards must catch every corruption and fall back to full
    /// simulation, leaving all architectural results bit-identical —
    /// this is the `replay-divergence` fault-injection class.
    pub fn set_replay_corruption(&mut self, seed: u64) {
        if let Some(r) = self.replay.as_deref_mut() {
            r.set_corruption(seed);
        }
    }

    /// Arms replay-arming chaos injection: the adaptive arming gate is
    /// replaced by a seeded random admit/suppress decision per trigger,
    /// exercising arbitrary arm/disarm schedules. Results must stay
    /// bit-identical to replay-off under every schedule — this backs the
    /// arming property tests.
    pub fn set_replay_chaos(&mut self, seed: u64) {
        if let Some(r) = self.replay.as_deref_mut() {
            r.set_chaos(seed);
        }
    }

    /// Sets an initial register value (before [`run`](Self::run)).
    pub fn set_reg(&mut self, r: vanguard_isa::Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Arms the cooperative watchdog: a cycle budget, a wall-clock
    /// deadline, or both. Tripping either stops the run cleanly with
    /// [`StopCause::TimedOut`] (partial statistics intact) instead of
    /// spinning forever on a wedged guest. `None` leaves that dimension
    /// unlimited.
    pub fn set_watchdog(&mut self, max_cycles: Option<u64>, deadline: Option<Instant>) {
        self.watchdog_cycles = max_cycles.unwrap_or(u64::MAX);
        self.watchdog_deadline = deadline;
    }

    /// Runs to completion, delivering [`TraceEvent`]s to `sink`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on a committed-path architectural fault.
    pub fn run_traced(mut self, sink: impl FnMut(&TraceEvent) + 't) -> Result<SimResult, SimError> {
        self.trace = Some(Box::new(sink));
        // Replayed iterations would emit no per-instruction trace events;
        // tracing runs see every cycle simulated in full.
        self.replay = None;
        self.run()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on a committed-path architectural fault.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_checked().map_err(|f| f.error)
    }

    /// Runs to completion, reporting faults with the cycle they were
    /// detected at (the engine's entry point: fault context feeds
    /// `JobResult::Faulted`).
    ///
    /// # Errors
    ///
    /// Returns a [`SimFault`] on a committed-path architectural fault.
    pub fn run_checked(mut self) -> Result<SimResult, SimFault> {
        let mut prof = HotloopProfile::default();
        let stop = self.run_loop::<false>(&mut prof)?;
        Ok(self.into_result(stop))
    }

    /// Runs to completion like [`run_checked`](Self::run_checked), also
    /// collecting per-stage wall-clock attribution for the hot loop. The
    /// per-cycle timestamping costs real time; use only for profiling.
    ///
    /// # Errors
    ///
    /// Returns a [`SimFault`] on a committed-path architectural fault.
    pub fn run_profiled(mut self) -> Result<(SimResult, HotloopProfile), SimFault> {
        let mut prof = HotloopProfile::default();
        let stop = self.run_loop::<true>(&mut prof)?;
        Ok((self.into_result(stop), prof))
    }

    /// The per-cycle loop, restructured as batches: all cold per-cycle
    /// branch-outs (stop conditions, watchdog poll, redirect apply,
    /// journal compaction, replay trigger) run once at batch entry, then
    /// a fused fetch/issue/commit fast path runs until the next cold
    /// event. The batch limit is the earliest of the cycle/watchdog
    /// budgets, the next 4096-cycle watchdog poll boundary, and a pending
    /// redirect's due cycle; a halt, a newly-scheduled redirect, or a
    /// replay arm ends the batch early. Every cold check therefore fires
    /// at exactly the cycles the per-cycle loop fired it at, so the
    /// restructuring is cycle-for-cycle invisible.
    fn run_loop<const PROFILE: bool>(
        &mut self,
        prof: &mut HotloopProfile,
    ) -> Result<StopCause, SimFault> {
        loop {
            let mut mark = if PROFILE { Some(Instant::now()) } else { None };
            if self.halted {
                return Ok(StopCause::Halted);
            }
            if self.cycle >= self.config.max_cycles {
                return Ok(StopCause::CycleLimit);
            }
            if self.cycle >= self.watchdog_cycles {
                return Ok(StopCause::TimedOut);
            }
            if self.cycle & 0xFFF == 0 {
                if let Some(deadline) = self.watchdog_deadline {
                    if Instant::now() >= deadline {
                        return Ok(StopCause::TimedOut);
                    }
                }
            }
            // Apply a due misprediction redirect.
            if let Some(p) = &self.pending {
                if p.redirect_cycle <= self.cycle {
                    let p = self.pending.take().expect("just checked");
                    self.regs = p.regs;
                    self.reg_ready = p.reg_ready;
                    self.store_buffer.squash_from(p.store_seq);
                    self.front.flush(p.target, &p.snapshot, self.cycle);
                    if let Some((meta, taken)) = p.repair {
                        self.front.predictor.repair_history(&meta, taken);
                    }
                    if let Some(t) = self.trace.as_mut() {
                        t(&TraceEvent::Flush {
                            cycle: self.cycle,
                            target: p.target,
                        });
                    }
                }
            }
            // With no redirect in flight and no snapshot buffered, the
            // call-stack undo journal has no live reference: drop it.
            if self.pending.is_none() {
                self.front.compact_journal();
            }
            if PROFILE {
                let now = Instant::now();
                prof.other_ns += (now - mark.expect("profiling")).as_nanos() as u64;
                mark = Some(now);
            }
            // Steady-state replay trigger: a backward steer armed the
            // engine last fetch; this point (post-redirect-apply,
            // post-compaction, pre-fetch) is the loop-head fixed point
            // at which iteration signatures are comparable.
            if self.replay.as_ref().is_some_and(|r| r.armed) {
                self.replay_tick();
                if PROFILE {
                    let now = Instant::now();
                    prof.replay_ns += (now - mark.expect("profiling")).as_nanos() as u64;
                    mark = Some(now);
                }
            }
            let mut limit = self
                .config
                .max_cycles
                .min(self.watchdog_cycles)
                .min((self.cycle | 0xFFF) + 1);
            if let Some(p) = &self.pending {
                limit = limit.min(p.redirect_cycle);
            }
            while self.cycle < limit {
                // Fetch.
                self.front.fetch_cycle(
                    self.cycle,
                    &mut self.mem_sys,
                    &mut self.stats,
                    self.replay.as_deref_mut(),
                );
                if PROFILE {
                    let now = Instant::now();
                    prof.fetch_ns += (now - mark.expect("profiling")).as_nanos() as u64;
                    mark = Some(now);
                }
                // Issue (and execute: this pipeline executes at issue).
                if let Err(error) = self.issue_cycle() {
                    return Err(SimFault {
                        error,
                        cycle: self.cycle,
                    });
                }
                if PROFILE {
                    let now = Instant::now();
                    prof.issue_ns += (now - mark.expect("profiling")).as_nanos() as u64;
                    mark = Some(now);
                }
                // Commit stores that can no longer be squashed: any older
                // conditional has redirected by now (redirect window is
                // redirect_latency + 1 cycles).
                if self.pending.is_none() {
                    let safety = u64::from(self.config.redirect_latency) + 2;
                    if self.cycle >= safety {
                        self.store_buffer
                            .drain_older_than(self.cycle - safety, &mut self.memory);
                    }
                }
                self.cycle += 1;
                if PROFILE {
                    prof.cycles += 1;
                    let now = Instant::now();
                    prof.commit_ns += (now - mark.expect("profiling")).as_nanos() as u64;
                    mark = Some(now);
                }
                if self.halted
                    || self.pending.is_some()
                    || self.replay.as_ref().is_some_and(|r| r.armed)
                {
                    break;
                }
            }
        }
    }

    /// Drains outstanding stores and packages the final architectural
    /// state (shared epilogue of the run entry points).
    fn into_result(mut self, stop: StopCause) -> SimResult {
        self.store_buffer.drain_all(&mut self.memory);
        self.stats.cycles = self.cycle;
        self.stats.mem = self.mem_sys.stats();
        let replay = self.replay.as_ref().map(|r| r.stats()).unwrap_or_default();
        SimResult {
            stats: self.stats,
            regs: self.regs,
            memory: self.memory,
            stop,
            replay,
        }
    }

    fn fallthrough_of(&self, block: BlockId, pc: u64) -> Result<BlockId, SimError> {
        self.front
            .image()
            .fall_of(block)
            .ok_or(SimError::MalformedImage {
                pc,
                detail: "conditional has no fall-through successor",
            })
    }

    fn issue_cycle(&mut self) -> Result<(), SimError> {
        let mut issued = 0usize;
        let mut int_slots = self.config.fu_int;
        let mut ldst_slots = self.config.fu_ldst;
        let mut fp_slots = self.config.fu_fp;

        while issued < self.config.width {
            // The stall checks below re-run every cycle the head waits;
            // they read only the packed issue lane ([`LaneMeta`]), not
            // the full [`FetchedInst`], which is touched once — at the
            // actual issue.
            let Some(m) = self.front.head_meta() else {
                if issued == 0 {
                    self.stats.frontend_stall_cycles += 1;
                }
                break;
            };
            if m.ready > self.cycle {
                if issued == 0 {
                    self.stats.frontend_stall_cycles += 1;
                }
                break;
            }
            // A halt at the head: commit it only on the correct path.
            if m.ctrl == crate::front::CTRL_HALT {
                if self.pending.is_none() {
                    self.stats.issued += 1;
                    self.halted = true;
                }
                break;
            }
            // Operand readiness (scoreboard), from the pre-extracted
            // source-register lane.
            let blocked = m.srcs.iter().any(|&s| {
                s != crate::front::LaneMeta::NO_SRC && self.reg_ready[s as usize] > self.cycle
            });
            if blocked {
                if issued == 0 {
                    self.stats.operand_stall_cycles += 1;
                    // Attribute the stall to a branch resolution when one is
                    // imminent: the blocked head is the branch itself or an
                    // instruction feeding a branch/resolve a few slots away
                    // (the classic `load → cmp → br` serialization).
                    for lm in self.front.meta.iter().take(4) {
                        match lm.ctrl {
                            crate::front::CTRL_BRANCH => {
                                self.stats.branch_stall_cycles += 1;
                                break;
                            }
                            crate::front::CTRL_RESOLVE => {
                                self.stats.resolve_stall_cycles += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                }
                break;
            }
            // Functional-unit port availability.
            let slot = match m.fu {
                FuClass::Int => &mut int_slots,
                FuClass::LdSt => &mut ldst_slots,
                FuClass::Fp => &mut fp_slots,
                FuClass::None => {
                    // Front-end-only instructions never reach issue; Halt is
                    // handled above. Nothing else should appear.
                    return Err(SimError::MalformedImage {
                        pc: self.front.head().map_or(0, |h| h.pc),
                        detail: "front-end-only instruction in fetch buffer",
                    });
                }
            };
            if *slot == 0 {
                if issued == 0 {
                    self.stats.fu_stall_cycles += 1;
                }
                break;
            }
            *slot -= 1;

            let fi = self.front.pop().expect("head exists");
            let wrong_path = self.pending.is_some();
            self.stats.issued += 1;
            self.stats.issued_wrong_path += wrong_path as u64;
            issued += 1;
            if let Some(t) = self.trace.as_mut() {
                t(&TraceEvent::Issue {
                    cycle: self.cycle,
                    pc: fi.pc,
                    mnemonic: fi.inst.mnemonic(),
                    wrong_path,
                });
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            // Conditional outcome recorded for replay (`Branch`: taken,
            // `Resolve`: mispredicted), set by the arms below.
            let mut rec_outcome = false;

            match fi.inst {
                Inst::Alu { op, dst, a, b } => {
                    let av = self.operand(a);
                    let bv = self.operand(b);
                    self.regs[dst.index()] = eval_alu(op, av, bv);
                    self.reg_ready[dst.index()] = self.cycle + u64::from(fi.inst.base_latency());
                }
                Inst::Fp { op, dst, a, b } => {
                    let av = f64::from_bits(self.regs[a.index()]);
                    let bv = f64::from_bits(self.regs[b.index()]);
                    let r = match op {
                        FpOp::Add => av + bv,
                        FpOp::Sub => av - bv,
                        FpOp::Mul => av * bv,
                        FpOp::Div => av / bv,
                    };
                    self.regs[dst.index()] = r.to_bits();
                    self.reg_ready[dst.index()] = self.cycle + u64::from(fi.inst.base_latency());
                }
                Inst::Cmp { kind, dst, a, b } => {
                    let av = self.regs[a.index()];
                    let bv = self.operand(b);
                    self.regs[dst.index()] = kind.eval(av, bv) as u64;
                    self.reg_ready[dst.index()] = self.cycle + 1;
                }
                Inst::Load {
                    dst,
                    base,
                    offset,
                    speculative,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as u64);
                    let value = match self.store_buffer.forward(addr) {
                        Some(v) => Some(v),
                        None => self.memory.read(addr),
                    };
                    let value = match value {
                        Some(v) => v,
                        None if speculative || wrong_path => 0,
                        None => {
                            return Err(SimError::LoadFault { addr, pc: fi.pc });
                        }
                    };
                    self.regs[dst.index()] = value;
                    let acc = self.mem_sys.access(self.cycle, addr, AccessKind::Load);
                    self.reg_ready[dst.index()] = acc.complete;
                    if acc.level != Level::L1 {
                        // Non-L1 data timing is not memoizable.
                        if let Some(r) = self.replay.as_deref_mut() {
                            r.abort_recording();
                        }
                    }
                }
                Inst::Store { src, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as u64);
                    self.store_buffer
                        .push(addr, self.regs[src.index()], seq, self.cycle);
                    // Timing: write-allocate probe; completion never blocks.
                    let acc = self.mem_sys.access(self.cycle, addr, AccessKind::Store);
                    if acc.level != Level::L1 {
                        if let Some(r) = self.replay.as_deref_mut() {
                            r.abort_recording();
                        }
                    }
                }
                Inst::Branch { cond, src, target } => {
                    let taken = cond.eval(self.regs[src.index()]);
                    let Some(PredInfo::Branch {
                        meta,
                        predicted_taken,
                    }) = fi.pred
                    else {
                        return Err(SimError::MalformedImage {
                            pc: fi.pc,
                            detail: "branch fetched without prediction",
                        });
                    };
                    rec_outcome = taken;
                    if !wrong_path {
                        self.stats.branches += 1;
                        if let Some(r) = self.replay.as_deref_mut() {
                            r.on_update(fi.pc, &meta, taken, &*self.front.predictor);
                        }
                        self.front.predictor.update(fi.pc, &meta, taken);
                        if taken != predicted_taken {
                            self.stats.branch_mispredicts += 1;
                            let dest = if taken {
                                target
                            } else {
                                self.fallthrough_of(fi.block, fi.pc)?
                            };
                            let snapshot = fi.snapshot.ok_or(SimError::MalformedImage {
                                pc: fi.pc,
                                detail: "branch carries no fetch snapshot",
                            })?;
                            self.schedule_redirect(dest, seq + 1, snapshot, Some((meta, taken)));
                        }
                    }
                }
                Inst::Resolve { cond, src, target } => {
                    let mispredicted = cond.eval(self.regs[src.index()]);
                    let Some(PredInfo::Resolve { dbb_index }) = fi.pred else {
                        return Err(SimError::MalformedImage {
                            pc: fi.pc,
                            detail: "resolve fetched without DBB index",
                        });
                    };
                    rec_outcome = mispredicted;
                    if !wrong_path {
                        self.stats.resolves += 1;
                        // Train the predict instruction's entry via the DBB.
                        if let Some(entry) = self.front.dbb.get(dbb_index) {
                            let actual = entry.meta.taken ^ mispredicted;
                            if let Some(r) = self.replay.as_deref_mut() {
                                r.on_update(
                                    entry.predict_pc,
                                    &entry.meta,
                                    actual,
                                    &*self.front.predictor,
                                );
                            }
                            self.front
                                .predictor
                                .update(entry.predict_pc, &entry.meta, actual);
                        }
                        if mispredicted {
                            self.stats.resolve_mispredicts += 1;
                            if let Some(t) = self.trace.as_mut() {
                                t(&TraceEvent::ResolveMispredict {
                                    cycle: self.cycle,
                                    pc: fi.pc,
                                });
                            }
                            // History repair uses the *predict* site's meta.
                            let repair = self
                                .front
                                .dbb
                                .get(dbb_index)
                                .map(|e| (e.meta, e.meta.taken ^ mispredicted));
                            let snapshot = fi.snapshot.ok_or(SimError::MalformedImage {
                                pc: fi.pc,
                                detail: "resolve carries no fetch snapshot",
                            })?;
                            self.schedule_redirect(target, seq + 1, snapshot, repair);
                        }
                    }
                }
                Inst::Nop => {}
                Inst::Jump { .. }
                | Inst::Predict { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Halt => {
                    return Err(SimError::MalformedImage {
                        pc: fi.pc,
                        detail: "front-end-only instruction issued",
                    });
                }
            }
            if let Some(r) = self.replay.as_deref_mut() {
                r.on_issue(fi.inst, rec_outcome);
            }
        }
        Ok(())
    }

    fn schedule_redirect(
        &mut self,
        target: BlockId,
        store_seq: u64,
        snapshot: FetchSnapshot,
        repair: Option<(vanguard_bpred::PredMeta, bool)>,
    ) {
        debug_assert!(self.pending.is_none());
        // A redirect invalidates any in-flight replay recording: the
        // iteration's trajectory includes a flush whose wrong-path side
        // effects the memoized delta cannot reproduce.
        if let Some(r) = self.replay.as_deref_mut() {
            r.abort_recording();
        }
        self.stats.redirects += 1;
        self.pending = Some(PendingRedirect {
            redirect_cycle: self.cycle + 1 + u64::from(self.config.redirect_latency),
            target,
            regs: self.regs,
            reg_ready: self.reg_ready,
            store_seq,
            snapshot,
            repair,
        });
    }

    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_bpred::Combined;
    use vanguard_isa::{AluOp, CmpKind, CondKind, Interpreter, ProgramBuilder, Reg, TakenOracle};

    fn run_sim(p: &Program, mem: Memory, init: &[(Reg, u64)]) -> SimResult {
        let mut sim = Simulator::new(
            p,
            mem,
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        for &(r, v) in init {
            sim.set_reg(r, v);
        }
        sim.run().expect("simulation fault")
    }

    fn straightline(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        for i in 0..n {
            b.push(
                e,
                Inst::alu(
                    AluOp::Add,
                    Reg(1),
                    Operand::Reg(Reg(1)),
                    Operand::Imm(i as i64 + 1),
                ),
            );
        }
        b.push(e, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn straightline_dependent_chain_is_serial() {
        let p = straightline(32);
        let r = run_sim(&p, Memory::new(), &[]);
        assert_eq!(r.stop, StopCause::Halted);
        // Each add depends on the previous: ~1 IPC despite 4-wide.
        assert!(r.stats.cycles >= 32, "cycles {}", r.stats.cycles);
        let expected: u64 = (1..=32).sum();
        assert_eq!(r.regs[1], expected);
    }

    fn independent_adds(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        for i in 0..n {
            b.push(
                e,
                Inst::alu(
                    AluOp::Add,
                    Reg((1 + (i % 2)) as u8),
                    Operand::Imm(i as i64),
                    Operand::Imm(1),
                ),
            );
        }
        b.push(e, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    /// A loop repeating `body` 50 times (warms the I$ after iteration 1).
    fn looped(body: Vec<Inst>) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let l = b.block("loop");
        let x = b.block("exit");
        b.push(e, Inst::mov(Reg(10), Operand::Imm(50)));
        b.fallthrough(e, l);
        b.push_all(l, body);
        b.push(
            l,
            Inst::alu(AluOp::Sub, Reg(10), Operand::Reg(Reg(10)), Operand::Imm(1)),
        );
        b.push(
            l,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(11),
                a: Reg(10),
                b: Operand::Imm(0),
            },
        );
        b.push(
            l,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(11),
                target: l,
            },
        );
        b.fallthrough(l, x);
        b.push(x, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn independent_work_uses_int_ports() {
        // In a warm loop, 16 serial adds are 1-per-cycle while 16
        // independent adds dual-issue on the 2 INT ports.
        let serial: Vec<Inst> = (0..16)
            .map(|_| Inst::alu(AluOp::Add, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)))
            .collect();
        let par: Vec<Inst> = (0..16)
            .map(|i| {
                Inst::alu(
                    AluOp::Add,
                    Reg(1 + (i % 2) as u8),
                    Operand::Imm(i),
                    Operand::Imm(1),
                )
            })
            .collect();
        let rs = run_sim(&looped(serial), Memory::new(), &[]);
        let rp = run_sim(&looped(par), Memory::new(), &[]);
        assert!(
            rs.stats.cycles >= rp.stats.cycles + 200,
            "serial {} parallel {}",
            rs.stats.cycles,
            rp.stats.cycles
        );
    }

    pub(super) fn countdown_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(iters)));
        b.fallthrough(e, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn loop_commits_correct_state_and_counts_branches() {
        let p = countdown_loop(100);
        let r = run_sim(&p, Memory::new(), &[]);
        assert_eq!(r.regs[1], 0);
        assert_eq!(r.stats.branches, 100);
        // The final exit is mispredicted (predictor learns "taken").
        assert!(r.stats.branch_mispredicts >= 1);
        assert!(r.stats.branch_mispredicts <= 5);
    }

    #[test]
    fn matches_interpreter_on_a_loop_with_memory() {
        // Store the loop counter each iteration; compare final state.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(50)));
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x8000)));
        b.fallthrough(e, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(body, Inst::store(Reg(1), Reg(3), 0));
        b.push(
            body,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();

        let mut interp = Interpreter::new(&p, Memory::new());
        interp.run(&mut TakenOracle::AlwaysTaken).unwrap();

        let r = run_sim(&p, Memory::new(), &[]);
        assert_eq!(&r.regs[..8], &interp.regs()[..8]);
        for i in 0..50u64 {
            let addr = 0x8000 + i * 8;
            assert_eq!(
                r.memory.read(addr),
                interp.memory().read(addr),
                "@{addr:#x}"
            );
        }
    }

    #[test]
    fn misprediction_costs_cycles() {
        // Data-dependent unpredictable branch: compare cycles against a
        // perfectly-biased branch with the same structure.
        fn hammock(pattern_addr: u64) -> Program {
            let mut b = ProgramBuilder::new();
            let e = b.block("entry");
            let head = b.block("head");
            let taken = b.block("taken");
            let join = b.block("join");
            let exit = b.block("exit");
            b.push(e, Inst::mov(Reg(1), Operand::Imm(200)));
            b.push(e, Inst::mov(Reg(3), Operand::Imm(pattern_addr as i64)));
            b.fallthrough(e, head);
            b.push(head, Inst::load(Reg(4), Reg(3), 0));
            b.push(
                head,
                Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
            );
            b.push(
                head,
                Inst::Branch {
                    cond: CondKind::Nz,
                    src: Reg(4),
                    target: taken,
                },
            );
            b.fallthrough(head, join);
            b.push(
                taken,
                Inst::alu(AluOp::Add, Reg(5), Operand::Reg(Reg(5)), Operand::Imm(1)),
            );
            b.fallthrough(taken, join);
            b.push(
                join,
                Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
            );
            b.push(
                join,
                Inst::Cmp {
                    kind: CmpKind::Ne,
                    dst: Reg(2),
                    a: Reg(1),
                    b: Operand::Imm(0),
                },
            );
            b.push(
                join,
                Inst::Branch {
                    cond: CondKind::Nz,
                    src: Reg(2),
                    target: head,
                },
            );
            b.fallthrough(join, exit);
            b.push(exit, Inst::Halt);
            b.set_entry(e);
            b.finish().unwrap()
        }

        // Truly pseudo-random pattern vs all-zero pattern.
        let mut mem_rand = Memory::new();
        let mut x = 0x243f6a8885a308d3u64;
        let noisy: Vec<u64> = (0..200u64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1
            })
            .collect();
        mem_rand.load_words(0x10000, &noisy);
        let mut mem_zero = Memory::new();
        mem_zero.load_words(0x10000, &vec![0u64; 200]);

        let p = hammock(0x10000);
        let r_noisy = run_sim(&p, mem_rand, &[]);
        let r_zero = run_sim(&p, mem_zero, &[]);
        assert!(
            r_noisy.stats.branch_mispredicts > 20,
            "mispredicts {}",
            r_noisy.stats.branch_mispredicts
        );
        assert!(r_zero.stats.branch_mispredicts < 10);
        assert!(
            r_noisy.stats.cycles > r_zero.stats.cycles + 100,
            "noisy {} zero {}",
            r_noisy.stats.cycles,
            r_zero.stats.cycles
        );
        // Wrong-path instructions were issued and rolled back.
        assert!(r_noisy.stats.issued_wrong_path > 0);
        // And the architectural result is identical to the interpreter's.
        let mut mem_rand2 = Memory::new();
        mem_rand2.load_words(0x10000, &noisy);
        let mut interp = Interpreter::new(&p, mem_rand2);
        interp.run(&mut TakenOracle::AlwaysNotTaken).unwrap();
        assert_eq!(r_noisy.regs[5], interp.reg(Reg(5)));
    }

    #[test]
    fn decomposed_branch_trains_and_redirects() {
        // predict/resolve hammock driven by a memory pattern; verify
        // resolve mispredicts redirect to correction code and final state
        // matches the interpreter under any oracle.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let head = b.block("head");
        let t_res = b.block("t_resolve");
        let nt_res = b.block("nt_resolve");
        let t_join = b.block("t_join");
        let nt_join = b.block("nt_join");
        let corr_t = b.block("correct_t");
        let corr_nt = b.block("correct_nt");
        let latch = b.block("latch");
        let exit = b.block("exit");

        b.push(e, Inst::mov(Reg(1), Operand::Imm(300)));
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.fallthrough(e, head);

        // head: predict over "taken iff mem[r3] != 0".
        b.push(head, Inst::Predict { target: t_res });
        b.fallthrough(head, nt_res);

        // predicted-taken resolution block.
        b.push(t_res, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            t_res,
            Inst::Cmp {
                kind: CmpKind::Eq,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            t_res,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(5),
                target: corr_nt,
            },
        );
        b.fallthrough(t_res, t_join);

        // predicted-not-taken resolution block.
        b.push(nt_res, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            nt_res,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            nt_res,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(5),
                target: corr_t,
            },
        );
        b.fallthrough(nt_res, nt_join);

        b.push(
            t_join,
            Inst::alu(AluOp::Add, Reg(6), Operand::Reg(Reg(6)), Operand::Imm(1)),
        );
        b.push(t_join, Inst::Jump { target: latch });
        b.push(
            nt_join,
            Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(7)), Operand::Imm(1)),
        );
        b.push(nt_join, Inst::Jump { target: latch });
        b.push(
            corr_t,
            Inst::alu(AluOp::Add, Reg(6), Operand::Reg(Reg(6)), Operand::Imm(1)),
        );
        b.push(corr_t, Inst::Jump { target: latch });
        b.push(
            corr_nt,
            Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(7)), Operand::Imm(1)),
        );
        b.push(corr_nt, Inst::Jump { target: latch });

        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: head,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();

        // 80%-taken pattern with some noise.
        let pattern: Vec<u64> = (0..300u64)
            .map(|i| u64::from((i * 2654435761) % 10 < 8))
            .collect();
        let takens: u64 = pattern.iter().sum();

        let mut mem = Memory::new();
        mem.load_words(0x10000, &pattern);
        let r = run_sim(&p, mem, &[]);
        assert_eq!(r.stop, StopCause::Halted);
        assert_eq!(r.stats.resolves, 300);
        assert_eq!(r.regs[6], takens, "taken-path counter");
        assert_eq!(r.regs[7], 300 - takens, "not-taken-path counter");
        // The predictor learned the dominant direction through the DBB, so
        // resolve mispredicts are well below the 50% a static predictor
        // would see for an 80/20 branch predicted not-taken.
        assert!(
            r.stats.resolve_mispredicts < 130,
            "resolve mispredicts {}",
            r.stats.resolve_mispredicts
        );
        assert!(r.stats.resolve_mispredicts > 0);
        assert_eq!(
            r.stats.predicts,
            u64::from(r.stats.predicts > 0) * r.stats.predicts
        );
    }

    #[test]
    fn call_ret_roundtrip() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let f = b.block("callee");
        let r = b.block("after");
        b.push(f, Inst::mov(Reg(3), Operand::Imm(9)));
        b.push(f, Inst::Ret);
        b.push(
            e,
            Inst::Call {
                callee: f,
                ret_to: r,
            },
        );
        b.push(r, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let res = run_sim(&p, Memory::new(), &[]);
        assert_eq!(res.regs[3], 9);
    }

    #[test]
    fn committed_load_fault_is_an_error() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::load(Reg(1), Reg(0), 0x5000));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        assert!(matches!(sim.run(), Err(SimError::LoadFault { .. })));
    }

    #[test]
    fn speculative_load_to_unmapped_commits_zero() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::load_spec(Reg(1), Reg(0), 0x5000));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let r = run_sim(&p, Memory::new(), &[]);
        assert_eq!(r.regs[1], 0);
    }

    #[test]
    fn wider_machines_are_not_slower() {
        let p = independent_adds(128);
        let run_width = |cfg: MachineConfig| {
            Simulator::new(&p, Memory::new(), cfg, Box::new(Combined::ptlsim_default()))
                .run()
                .unwrap()
                .stats
                .cycles
        };
        let c2 = run_width(MachineConfig::two_wide());
        let c4 = run_width(MachineConfig::four_wide());
        let c8 = run_width(MachineConfig::eight_wide());
        // 2 INT ports bound all widths ≥ 2, so gains saturate, but wider
        // machines must never lose cycles.
        assert!(c4 <= c2, "4-wide {c4} vs 2-wide {c2}");
        assert!(c8 <= c4, "8-wide {c8} vs 4-wide {c4}");
    }

    #[test]
    fn load_latency_stalls_dependent_consumer() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(0x9000)));
        b.push(e, Inst::store(Reg(1), Reg(1), 0));
        b.push(e, Inst::load(Reg(2), Reg(1), 0));
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(2)), Operand::Imm(1)),
        );
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let r = run_sim(&p, Memory::new(), &[]);
        assert_eq!(r.regs[3], 0x9001);
        assert!(
            r.stats.operand_stall_cycles >= 3,
            "stalls {}",
            r.stats.operand_stall_cycles
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use vanguard_bpred::Combined;
    use vanguard_isa::{parse_program, Memory};

    #[test]
    fn trace_reports_issues_in_cycle_order() {
        let p = parse_program(
            r"
bb0 <entry>:
    mov r1, #1
    add r2, r1, #2
    halt
",
        )
        .unwrap();
        let sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        let mut events = Vec::new();
        sim.run_traced(|e| events.push(*e)).unwrap();
        let issues: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Issue {
                    cycle, mnemonic, ..
                } => Some((*cycle, *mnemonic)),
                _ => None,
            })
            .collect();
        // mov + add; halt commits at the head without an Issue event.
        assert_eq!(issues.len(), 2);
        assert_eq!(issues[0].1, "mov");
        assert_eq!(issues[1].1, "add");
        // Cycle-ordered.
        for w in issues.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn trace_reports_flushes_on_mispredicts() {
        // A data-driven branch with an unpredictable pattern.
        let p = parse_program(
            r"
bb0 <entry>:
    mov r1, #64
    mov r3, #4096
    ; fallthrough -> bb1
bb1 <head>:
    ld r4, [r3+0]
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    jmp bb4
bb3 <taken>:
    ; fallthrough -> bb4
bb4 <latch>:
    add r3, r3, #8
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    halt
",
        )
        .unwrap();
        let mut mem = Memory::new();
        let mut x = 0xabcdefu64;
        let conds: Vec<u64> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1
            })
            .collect();
        mem.load_words(4096, &conds);
        let sim = Simulator::new(
            &p,
            mem,
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        let mut flushes = 0;
        let mut wrong_path_issues = 0;
        let r = sim
            .run_traced(|e| match e {
                TraceEvent::Flush { .. } => flushes += 1,
                TraceEvent::Issue {
                    wrong_path: true, ..
                } => wrong_path_issues += 1,
                _ => {}
            })
            .unwrap();
        assert_eq!(flushes as u64, r.stats.redirects);
        assert_eq!(wrong_path_issues as u64, r.stats.issued_wrong_path);
        assert!(flushes > 5, "unpredictable branch must flush: {flushes}");
    }
}

/// Steady-state iteration replay: bit-identity, non-vacuity, divergence
/// fallback, fault injection, and watchdog interaction.
#[cfg(test)]
mod replay_tests {
    use super::tests::countdown_loop;
    use super::*;
    use vanguard_bpred::Combined;
    use vanguard_isa::{AluOp, CmpKind, CondKind, Memory, ProgramBuilder, Reg};

    fn run_replay_pair(p: &Program, mem: &Memory) -> (SimResult, SimResult) {
        let mk = || {
            Simulator::new(
                p,
                mem.clone(),
                MachineConfig::four_wide(),
                Box::new(Combined::ptlsim_default()),
            )
        };
        let on = mk().run().expect("replay-on run");
        let mut sim = mk();
        sim.set_replay(false);
        let off = sim.run().expect("replay-off run");
        (on, off)
    }

    fn assert_bit_identical(on: &SimResult, off: &SimResult) {
        assert_eq!(on.stats, off.stats, "SimStats must be replay-invariant");
        assert_eq!(on.regs, off.regs, "registers must be replay-invariant");
        assert_eq!(on.stop, off.stop, "stop cause must be replay-invariant");
        assert_eq!(
            off.replay,
            crate::ReplayStats::default(),
            "replay-off must report zero replay stats"
        );
        assert_eq!(
            on.memory.written_words(),
            off.memory.written_words(),
            "memory must be replay-invariant"
        );
    }

    #[test]
    fn replay_is_bit_identical_and_non_vacuous() {
        // Long enough for the predictor and caches to converge: the memo
        // table must take over the steady state.
        let p = countdown_loop(2000);
        let (on, off) = run_replay_pair(&p, &Memory::new());
        assert_bit_identical(&on, &off);
        assert!(
            on.replay.hits > 100,
            "steady-state loop must replay: {:?}",
            on.replay
        );
        assert!(on.replay.replayed_cycles > 0);
        assert!(on.replay.recordings >= 1);
    }

    #[test]
    fn replay_survives_memory_writing_loops() {
        // Stores with a per-iteration fresh address (pointer walk): the
        // pre-pass recomputes addresses from live registers, so these
        // replay despite no two iterations writing the same word.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(1500)));
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x8000)));
        b.fallthrough(e, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(body, Inst::store(Reg(1), Reg(3), 0));
        b.push(body, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            body,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        // Pre-map the stored range so loads after stores always hit
        // mapped memory and page-crossing store misses stay rare.
        let mut mem = Memory::new();
        mem.load_words(0x8000, &vec![0u64; 1500]);

        let (on, off) = run_replay_pair(&p, &mem);
        assert_bit_identical(&on, &off);
        assert!(
            on.replay.hits > 50,
            "pointer-walk loop must replay: {:?}",
            on.replay
        );
    }

    #[test]
    fn replay_diverges_on_store_to_cold_page() {
        // Two passes over the same loop head: the second pass stores to a
        // page the cache has never seen. The memoized entry's pre-state
        // matches (registers are not part of the signature) but the
        // pre-pass L1 probe misses, so the guard must fall back — and the
        // result must stay bit-identical.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let outer = b.block("outer");
        let body = b.block("body");
        let next = b.block("next");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(6), Operand::Imm(2))); // outer trips
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x10000))); // page A
        b.fallthrough(e, outer);
        b.push(outer, Inst::mov(Reg(1), Operand::Imm(600))); // inner trips
        b.fallthrough(outer, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(body, Inst::store(Reg(1), Reg(3), 0)); // fixed address
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, next);
        // Advance far past L2/L3 reach: a genuinely cold page.
        b.push(
            next,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Imm(0x4000_0000),
            ),
        );
        b.push(
            next,
            Inst::alu(AluOp::Sub, Reg(6), Operand::Reg(Reg(6)), Operand::Imm(1)),
        );
        b.push(
            next,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(7),
                a: Reg(6),
                b: Operand::Imm(0),
            },
        );
        b.push(
            next,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(7),
                target: outer,
            },
        );
        b.fallthrough(next, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();

        let (on, off) = run_replay_pair(&p, &Memory::new());
        assert_bit_identical(&on, &off);
        assert!(
            on.replay.hits > 50,
            "first pass must replay: {:?}",
            on.replay
        );
        assert!(
            on.replay.divergences >= 1,
            "cold-page store must diverge: {:?}",
            on.replay
        );
    }

    #[test]
    fn replay_corruption_is_always_caught() {
        // The replay-divergence fault class: corrupt every memoized entry
        // and require the guards to catch each one, with the run still
        // completing bit-identically to replay-off.
        let p = countdown_loop(2000);
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay_corruption(0x5eed_cafe);
        let on = sim.run().expect("corrupted-replay run");
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(false);
        let off = sim.run().expect("replay-off run");
        assert_bit_identical(&on, &off);
        assert!(
            on.replay.corrupted_entries >= 1,
            "corruption must have been injected: {:?}",
            on.replay
        );
        assert_eq!(
            on.replay.hits, 0,
            "every corrupted entry must be rejected: {:?}",
            on.replay
        );
        // Divergences are capped below corrupted_entries by the
        // eviction/ban backoff (persistently failing entries are dropped
        // and their loop head banned), but every *attempted* replay of a
        // corrupted entry must have been caught.
        assert!(
            on.replay.divergences >= 1,
            "corruption must surface as divergences: {:?}",
            on.replay
        );
    }

    #[test]
    fn replay_never_crosses_a_watchdog_poll_boundary() {
        // With a wall-clock deadline armed, the simulator polls every
        // 4096 cycles; a replayed span must never skip a poll. With a
        // generous deadline the run completes normally and stays
        // bit-identical; every hit's span stayed within a poll window.
        let p = countdown_loop(2000);
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_watchdog(
            None,
            Some(Instant::now() + std::time::Duration::from_secs(3600)),
        );
        let on = sim.run().expect("deadline-armed run");
        assert_eq!(on.stop, StopCause::Halted);
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(false);
        sim.set_watchdog(
            None,
            Some(Instant::now() + std::time::Duration::from_secs(3600)),
        );
        let off = sim.run().expect("deadline-armed replay-off run");
        assert_bit_identical(&on, &off);
        // The loop still replays inside poll windows.
        assert!(on.replay.hits > 50, "windowed replay: {:?}", on.replay);
    }

    #[test]
    fn replay_respects_cycle_limit_and_watchdog_budget() {
        // Cut the run mid-loop with both kinds of cycle budget: partial
        // statistics must be bit-identical to replay-off.
        let p = countdown_loop(5000);
        for (limit, watchdog) in [(4000u64, None), (u64::MAX, Some(3500u64))] {
            let mk = || {
                let mut cfg = MachineConfig::four_wide();
                if limit != u64::MAX {
                    cfg.max_cycles = limit;
                }
                let mut sim =
                    Simulator::new(&p, Memory::new(), cfg, Box::new(Combined::ptlsim_default()));
                sim.set_watchdog(watchdog, None);
                sim
            };
            let on = mk().run().expect("budgeted run");
            let mut sim = mk();
            sim.set_replay(false);
            let off = sim.run().expect("budgeted replay-off run");
            assert_bit_identical(&on, &off);
            assert_ne!(on.stop, StopCause::Halted, "budget must cut the loop");
            assert!(on.replay.hits > 0, "budgeted replay: {:?}", on.replay);
        }
    }

    #[test]
    fn traced_runs_disable_replay() {
        let p = countdown_loop(2000);
        let sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        let mut issues = 0u64;
        let r = sim
            .run_traced(|e| {
                if matches!(e, TraceEvent::Issue { .. }) {
                    issues += 1;
                }
            })
            .unwrap();
        assert_eq!(r.replay, crate::ReplayStats::default());
        // The committed halt bumps `issued` without a trace event.
        assert_eq!(issues, r.stats.issued - 1, "every issue must be traced");
    }

    #[test]
    fn site_that_never_arms_is_bit_identical_to_replay_off() {
        // An unreachable probe streak keeps every site in Probing forever:
        // the engine pays only the per-trigger proxy hash, never captures
        // or probes a signature, and the run must match replay-off on
        // every committed bit.
        let p = countdown_loop(2000);
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.replay
            .as_deref_mut()
            .expect("replay-capable predictor")
            .set_probe_streak(u32::MAX);
        let on = sim.run().expect("never-armed run");
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(false);
        let off = sim.run().expect("replay-off run");
        assert_bit_identical(&on, &off);
        assert_eq!(on.replay.hits, 0, "a probing site never replays");
        assert_eq!(on.replay.recordings, 0, "a probing site never records");
        assert!(
            on.replay.suppressed_ticks > 100,
            "every trigger suppressed: {:?}",
            on.replay
        );
    }

    #[test]
    fn corruption_drives_disarm_and_rearm_cycles() {
        // With every memoized entry corrupted, each armed window ends in
        // divergences, the site backs off disarmed, re-arms, and fails
        // again: the run must stay bit-identical while the backoff keeps
        // the suppressed-tick count high.
        let p = countdown_loop(4000);
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay_corruption(0x5eed_cafe);
        let on = sim.run().expect("corrupted-replay run");
        let mut sim = Simulator::new(
            &p,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(false);
        let off = sim.run().expect("replay-off run");
        assert_bit_identical(&on, &off);
        assert_eq!(on.replay.hits, 0, "corrupted entries never replay");
        assert!(
            on.replay.suppressed_ticks > 100,
            "divergences must disarm the site: {:?}",
            on.replay
        );
        assert!(
            on.replay.recordings >= 2,
            "the site must re-arm and record again: {:?}",
            on.replay
        );
    }
}

/// Property test: arbitrary arm/disarm schedules (chaos injection over
/// the adaptive-arming gate) never change committed state.
#[cfg(test)]
mod replay_chaos_tests {
    use super::tests::countdown_loop;
    use super::*;
    use proptest::prelude::*;
    use vanguard_bpred::Combined;
    use vanguard_isa::{AluOp, CmpKind, CondKind, Memory, ProgramBuilder, Reg};

    /// A store/load loop (memory traffic makes arming mistakes visible).
    fn store_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(iters)));
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x8000)));
        b.fallthrough(e, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(body, Inst::store(Reg(1), Reg(3), 0));
        b.push(body, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            body,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_arming_schedules_never_change_committed_state(
            seed in any::<u64>(),
            use_stores in any::<bool>(),
        ) {
            let p = if use_stores {
                store_loop(700)
            } else {
                countdown_loop(900)
            };
            let mut mem = Memory::new();
            if use_stores {
                mem.load_words(0x8000, &vec![0u64; 700]);
            }
            let mut sim = Simulator::new(
                &p,
                mem.clone(),
                MachineConfig::four_wide(),
                Box::new(Combined::ptlsim_default()),
            );
            sim.set_replay_chaos(seed);
            let on = sim.run().expect("chaos run");
            let mut sim = Simulator::new(
                &p,
                mem,
                MachineConfig::four_wide(),
                Box::new(Combined::ptlsim_default()),
            );
            sim.set_replay(false);
            let off = sim.run().expect("replay-off run");
            prop_assert_eq!(&on.stats, &off.stats);
            prop_assert_eq!(&on.regs, &off.regs);
            prop_assert_eq!(on.stop, off.stop);
            prop_assert_eq!(on.memory.written_words(), off.memory.written_words());
        }
    }
}

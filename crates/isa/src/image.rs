//! Pre-decoded flat program image.
//!
//! A [`crate::Program`] stores instructions as per-block `Vec`s and code
//! addresses as a `Vec<Vec<u64>>` layout table; walking it means two
//! indirections per instruction plus a fall-through chase at every block
//! boundary. The cycle simulator walks a program millions of times per
//! experiment sweep, so [`DecodedImage`] flattens everything once:
//!
//! * one dense `Vec<DecodedInst>` in layout order — each element is
//!   `Copy` and carries the instruction, its code address, its containing
//!   block, and the flat index of its straight-line successor with
//!   empty-block fall-through chains already resolved;
//! * per-block tables for control transfers: the flat entry index
//!   reached when control enters a block, the block's layout start
//!   address (for BTB/RAS targets), and its immediate fall-through.
//!
//! An image is immutable after [`DecodedImage::build`], so the
//! experiment engine caches one `Arc<DecodedImage>` per compiled program
//! and every simulation of that program shares it. Decoding changes the
//! *representation* only: the sequence of fetched PCs, predictor
//! queries, and executed instructions is exactly the one the nested
//! walk produced, which keeps all figure output bit-identical.

use crate::inst::Inst;
use crate::program::{BlockId, Program};

/// Sentinel flat index: "no instruction" (a block chain with no
/// fall-through, or the successor of a block-ending `halt`).
pub const NO_INST: u32 = u32::MAX;

/// One pre-decoded instruction in a [`DecodedImage`].
#[derive(Clone, Copy, Debug)]
pub struct DecodedInst {
    /// The instruction.
    pub inst: Inst,
    /// Its code address.
    pub pc: u64,
    /// The block that contains it.
    pub block: BlockId,
    /// Its index within that block.
    pub index: u32,
    /// Flat index of the straight-line successor: the next instruction
    /// in the block, or — for the block's last instruction — the entry
    /// of the fall-through chain ([`NO_INST`] when there is none).
    pub next: u32,
}

/// A flat, pre-decoded program image (see the module docs).
#[derive(Clone, Debug)]
pub struct DecodedImage {
    insts: Vec<DecodedInst>,
    /// Per block: flat index of the first instruction executed when
    /// control enters the block (empty blocks chase their fall-through
    /// chain at build time); [`NO_INST`] when the chain dead-ends.
    block_entry: Vec<u32>,
    /// Per block: layout start address (BTB/RAS steer targets).
    block_start: Vec<u64>,
    /// Per block: immediate fall-through successor, if any.
    block_fall: Vec<Option<BlockId>>,
    /// Flat index of the program entry.
    entry: u32,
}

impl DecodedImage {
    /// Decodes a validated program into a flat image.
    pub fn build(program: &Program) -> DecodedImage {
        let layout = program.layout();
        let num_blocks = program.num_blocks();
        let mut insts = Vec::with_capacity(program.num_insts());
        let mut first_flat = vec![NO_INST; num_blocks];
        let mut block_start = vec![0u64; num_blocks];
        let mut block_fall = vec![None; num_blocks];

        for &b in program.layout_order() {
            let bb = program.block(b);
            block_start[b.index()] = layout.block_start(b);
            block_fall[b.index()] = bb.fallthrough();
            if bb.insts().is_empty() {
                continue;
            }
            first_flat[b.index()] = insts.len() as u32;
            for (i, &inst) in bb.insts().iter().enumerate() {
                insts.push(DecodedInst {
                    inst,
                    pc: layout.inst_addr(b, i),
                    block: b,
                    index: i as u32,
                    next: insts.len() as u32 + 1, // straight-line; patched below
                });
            }
        }

        // Entry of each block: chase empty-block fall-through chains.
        // The chase is bounded by the block count; a longer chain is a
        // cycle of empty blocks, which no validated program contains.
        let mut block_entry = vec![NO_INST; num_blocks];
        for (b0, entry) in block_entry.iter_mut().enumerate() {
            let mut b = b0;
            for _ in 0..=num_blocks {
                if first_flat[b] != NO_INST {
                    *entry = first_flat[b];
                    break;
                }
                match block_fall[b] {
                    Some(f) => b = f.index(),
                    None => break,
                }
            }
        }

        // Patch each block's last instruction to enter its fall-through
        // chain instead of running off the end of the flat array.
        for &b in program.layout_order() {
            let n = program.block(b).insts().len();
            if n == 0 {
                continue;
            }
            let last = (first_flat[b.index()] + n as u32 - 1) as usize;
            insts[last].next = match block_fall[b.index()] {
                Some(f) => block_entry[f.index()],
                None => NO_INST,
            };
        }

        DecodedImage {
            entry: block_entry[program.entry().index()],
            insts,
            block_entry,
            block_start,
            block_fall,
        }
    }

    /// The decoded instruction at a flat index.
    #[inline]
    pub fn get(&self, idx: u32) -> &DecodedInst {
        &self.insts[idx as usize]
    }

    /// All decoded instructions, in layout order.
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Flat index of the first executed instruction.
    ///
    /// # Panics
    ///
    /// Panics if the entry block's fall-through chain has no instruction
    /// (the same walk in a nested program representation would panic on
    /// its missing fall-through).
    pub fn entry_index(&self) -> u32 {
        assert!(
            self.entry != NO_INST,
            "validated program: fall-through present"
        );
        self.entry
    }

    /// Flat index reached when control transfers to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block's fall-through chain dead-ends in an empty
    /// block (mirrors the nested walk's missing-fall-through panic).
    #[inline]
    pub fn block_entry(&self, block: BlockId) -> u32 {
        let e = self.block_entry[block.index()];
        assert!(e != NO_INST, "validated program: fall-through present");
        e
    }

    /// The block's layout start address.
    #[inline]
    pub fn block_start(&self, block: BlockId) -> u64 {
        self.block_start[block.index()]
    }

    /// The block's immediate fall-through successor, if any.
    #[inline]
    pub fn fall_of(&self, block: BlockId) -> Option<BlockId> {
        self.block_fall[block.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Operand};
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let empty = b.block("empty");
        let body = b.block("body");
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(2)),
        );
        b.fallthrough(e, empty);
        b.fallthrough(empty, body);
        b.push(body, Inst::Nop);
        b.push(body, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn flat_walk_matches_nested_walk() {
        let p = sample();
        let img = DecodedImage::build(&p);
        let layout = p.layout();
        assert_eq!(img.len(), p.num_insts());
        // Walk the straight line: addresses and blocks must match the
        // nested representation's walk (empty block skipped).
        let mut idx = img.entry_index();
        let mut seen = Vec::new();
        loop {
            let di = img.get(idx);
            seen.push((di.pc, di.block, di.index));
            if matches!(di.inst, Inst::Halt) {
                break;
            }
            idx = di.next;
        }
        let blocks = p.layout_order();
        let (e, body) = (blocks[0], blocks[2]);
        assert_eq!(
            seen,
            vec![
                (layout.inst_addr(e, 0), e, 0),
                (layout.inst_addr(body, 0), body, 0),
                (layout.inst_addr(body, 1), body, 1),
            ]
        );
    }

    #[test]
    fn block_entry_resolves_empty_chains() {
        let p = sample();
        let img = DecodedImage::build(&p);
        let blocks = p.layout_order().to_vec();
        let (empty, body) = (blocks[1], blocks[2]);
        // Entering the empty block lands on the body's first instruction.
        assert_eq!(img.block_entry(empty), img.block_entry(body));
        assert_eq!(img.get(img.block_entry(empty)).block, body);
    }

    #[test]
    fn block_start_matches_layout() {
        let p = sample();
        let img = DecodedImage::build(&p);
        let layout = p.layout();
        for &b in p.layout_order() {
            assert_eq!(img.block_start(b), layout.block_start(b));
        }
    }

    #[test]
    fn halt_has_no_successor() {
        let p = sample();
        let img = DecodedImage::build(&p);
        let last = img.get(img.len() as u32 - 1);
        assert!(matches!(last.inst, Inst::Halt));
        assert_eq!(last.next, NO_INST);
    }
}

//! Instruction definitions for the hidden ISA.

use crate::program::BlockId;
use crate::reg::Reg;
use std::fmt;

/// Integer ALU operations (1-cycle unless noted).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// 64-bit multiply (3-cycle).
    Mul,
    /// 64-bit unsigned divide (12-cycle); divide by zero yields all-ones,
    /// matching a non-trapping DBT substrate.
    Div,
    /// Register/immediate move: `dst = b` (operand `a` is ignored).
    Mov,
}

/// Floating-point operations; register values are interpreted as `f64` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// FP addition (4-cycle).
    Add,
    /// FP subtraction (4-cycle).
    Sub,
    /// FP multiplication (4-cycle).
    Mul,
    /// FP division (12-cycle).
    Div,
}

/// Comparison kinds for [`Inst::Cmp`] (all on signed 64-bit values except
/// the explicitly unsigned variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpKind {
    /// Evaluates the comparison on two 64-bit words.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => sa < sb,
            CmpKind::Le => sa <= sb,
            CmpKind::Gt => sa > sb,
            CmpKind::Ge => sa >= sb,
            CmpKind::Ult => a < b,
            CmpKind::Uge => a >= b,
        }
    }

    /// Returns the comparison with operands swapped-sense inverted
    /// (`a < b` becomes `a >= b`), i.e. the logical negation.
    pub fn negate(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
            CmpKind::Lt => CmpKind::Ge,
            CmpKind::Le => CmpKind::Gt,
            CmpKind::Gt => CmpKind::Le,
            CmpKind::Ge => CmpKind::Lt,
            CmpKind::Ult => CmpKind::Uge,
            CmpKind::Uge => CmpKind::Ult,
        }
    }
}

/// Branch condition applied to a condition register by [`Inst::Branch`] and
/// [`Inst::Resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondKind {
    /// Taken when the register is non-zero.
    Nz,
    /// Taken when the register is zero.
    Z,
}

impl CondKind {
    /// Evaluates the condition on a register value.
    pub fn eval(self, v: u64) -> bool {
        match self {
            CondKind::Nz => v != 0,
            CondKind::Z => v == 0,
        }
    }

    /// The opposite condition.
    pub fn negate(self) -> CondKind {
        match self {
            CondKind::Nz => CondKind::Z,
            CondKind::Z => CondKind::Nz,
        }
    }
}

/// A source operand: a register or a sign-extended immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns `true` for immediates that do not fit in a 16-bit field and
    /// therefore require a long encoding (8 bytes instead of 4).
    pub fn needs_long_encoding(self) -> bool {
        match self {
            Operand::Reg(_) => false,
            Operand::Imm(v) => !(-32768..=32767).contains(&v),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Functional-unit class an instruction issues to (Table 1: up to
/// 2×LD/ST, 2×INT, 4×FP per cycle on the widest configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU / branch-resolution units.
    Int,
    /// Load/store units.
    LdSt,
    /// SIMD/FP units.
    Fp,
    /// Handled entirely in the front end (dropped at decode): `Predict`,
    /// direct `Jump`, `Nop`, `Halt`.
    None,
}

/// A single hidden-ISA instruction.
///
/// Control-transfer instructions (`Branch`, `Jump`, `Predict`, `Resolve`,
/// `Call`, `Ret`, `Halt`) may only appear as the final instruction of a
/// basic block; this is enforced by [`crate::ProgramBuilder::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Integer ALU operation: `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating-point operation: `dst = op(a, b)` on `f64` bit patterns.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// Load: `dst = mem[base + offset]`.
    ///
    /// When `speculative` is set this is the non-faulting `ld.s` form the
    /// paper's §2.2 requires for hoisting loads above a branch resolution:
    /// an access outside the mapped image yields zero instead of faulting.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Non-faulting (`ld.s`) form.
        speculative: bool,
    },
    /// Store: `mem[base + offset] = src`.
    Store {
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Comparison producing 0/1 in `dst`.
    Cmp {
        /// Comparison kind.
        kind: CmpKind,
        /// Destination register (receives 0 or 1).
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Operand,
    },
    /// Conventional conditional branch on a condition register;
    /// falls through when not taken.
    Branch {
        /// Taken-condition applied to `src`.
        cond: CondKind,
        /// Condition register.
        src: Reg,
        /// Taken target.
        target: BlockId,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// The paper's **predict** instruction: opcode + target only.
    ///
    /// At fetch, the branch predictor is consulted; if it predicts *taken*,
    /// fetch continues at `target`, otherwise at the fall-through. The
    /// instruction is dropped after decode and never reaches the back end.
    Predict {
        /// Predicted-taken target.
        target: BlockId,
    },
    /// The paper's **resolve** instruction.
    ///
    /// Encodes the original branch's condition, re-expressed so that *taken*
    /// means "the earlier prediction was wrong": it is always predicted
    /// not-taken by the front end, and when taken it redirects to the
    /// correction code at `target` and trains the predictor entry of the
    /// associated `Predict` (via the Decomposed Branch Buffer).
    Resolve {
        /// Misprediction condition applied to `src`.
        cond: CondKind,
        /// Condition register.
        src: Reg,
        /// Correction-code target taken on misprediction.
        target: BlockId,
    },
    /// Direct call; pushes the return block on the return-address stack.
    Call {
        /// Callee entry block.
        callee: BlockId,
        /// Block control returns to after the matching `Ret`.
        ret_to: BlockId,
    },
    /// Return to the most recent unmatched `Call`'s `ret_to` block.
    Ret,
    /// No operation (occupies an issue slot; used as a scheduling filler).
    Nop,
    /// Stops execution.
    Halt,
}

impl Inst {
    /// Convenience constructor for ALU operations.
    pub fn alu(op: AluOp, dst: Reg, a: Operand, b: Operand) -> Inst {
        Inst::Alu { op, dst, a, b }
    }

    /// Convenience constructor for a register move.
    pub fn mov(dst: Reg, src: Operand) -> Inst {
        Inst::Alu {
            op: AluOp::Mov,
            dst,
            a: Operand::Imm(0),
            b: src,
        }
    }

    /// Convenience constructor for loads.
    pub fn load(dst: Reg, base: Reg, offset: i64) -> Inst {
        Inst::Load {
            dst,
            base,
            offset,
            speculative: false,
        }
    }

    /// Convenience constructor for the non-faulting `ld.s` form.
    pub fn load_spec(dst: Reg, base: Reg, offset: i64) -> Inst {
        Inst::Load {
            dst,
            base,
            offset,
            speculative: true,
        }
    }

    /// Convenience constructor for stores.
    pub fn store(src: Reg, base: Reg, offset: i64) -> Inst {
        Inst::Store { src, base, offset }
    }

    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Alu { dst, .. } | Inst::Fp { dst, .. } | Inst::Load { dst, .. } => Some(dst),
            Inst::Cmp { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Visits the registers read by this instruction without allocating
    /// (the cycle simulator calls this every stalled cycle).
    pub fn visit_srcs(&self, mut f: impl FnMut(Reg)) {
        match *self {
            Inst::Alu { a, b, .. } => {
                if let Some(r) = a.reg() {
                    f(r);
                }
                if let Some(r) = b.reg() {
                    f(r);
                }
            }
            Inst::Fp { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Load { base, .. } => f(base),
            Inst::Store { src, base, .. } => {
                f(src);
                f(base);
            }
            Inst::Cmp { a, b, .. } => {
                f(a);
                if let Some(r) = b.reg() {
                    f(r);
                }
            }
            Inst::Branch { src, .. } | Inst::Resolve { src, .. } => f(src),
            _ => {}
        }
    }

    /// The registers read by this instruction.
    pub fn srcs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match *self {
            Inst::Alu { a, b, .. } => {
                if let Some(r) = a.reg() {
                    v.push(r);
                }
                if let Some(r) = b.reg() {
                    v.push(r);
                }
            }
            Inst::Fp { a, b, .. } => {
                v.push(a);
                v.push(b);
            }
            Inst::Load { base, .. } => v.push(base),
            Inst::Store { src, base, .. } => {
                v.push(src);
                v.push(base);
            }
            Inst::Cmp { a, b, .. } => {
                v.push(a);
                if let Some(r) = b.reg() {
                    v.push(r);
                }
            }
            Inst::Branch { src, .. } | Inst::Resolve { src, .. } => v.push(src),
            _ => {}
        }
        v
    }

    /// Returns `true` for instructions that may transfer control and must
    /// therefore terminate a basic block.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::Predict { .. }
                | Inst::Resolve { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Halt
        )
    }

    /// Returns `true` for instructions that access memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// The explicit control-transfer target, if the instruction has one.
    pub fn target(&self) -> Option<BlockId> {
        match *self {
            Inst::Branch { target, .. }
            | Inst::Jump { target }
            | Inst::Predict { target }
            | Inst::Resolve { target, .. } => Some(target),
            Inst::Call { callee, .. } => Some(callee),
            _ => None,
        }
    }

    /// Rewrites the control-transfer target (used by CFG surgery).
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no target.
    pub fn set_target(&mut self, new: BlockId) {
        match self {
            Inst::Branch { target, .. }
            | Inst::Jump { target }
            | Inst::Predict { target }
            | Inst::Resolve { target, .. } => *target = new,
            Inst::Call { callee, .. } => *callee = new,
            other => panic!("set_target on non-control instruction {other:?}"),
        }
    }

    /// The functional-unit class this instruction issues to.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Inst::Alu { .. } | Inst::Cmp { .. } => FuClass::Int,
            Inst::Fp { .. } => FuClass::Fp,
            Inst::Load { .. } | Inst::Store { .. } => FuClass::LdSt,
            // Conditional control resolves on an integer unit.
            Inst::Branch { .. } | Inst::Resolve { .. } => FuClass::Int,
            // Nop occupies an issue slot on the INT side.
            Inst::Nop => FuClass::Int,
            Inst::Jump { .. }
            | Inst::Predict { .. }
            | Inst::Call { .. }
            | Inst::Ret
            | Inst::Halt => FuClass::None,
        }
    }

    /// Execution latency in cycles once issued (loads report the L1-hit
    /// latency; the memory system supplies the real completion time).
    pub fn base_latency(&self) -> u32 {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Div => 12,
                _ => 1,
            },
            Inst::Fp { op, .. } => match op {
                FpOp::Div => 12,
                _ => 4,
            },
            Inst::Load { .. } => 4,
            Inst::Store { .. } => 1,
            Inst::Cmp { .. } => 1,
            Inst::Branch { .. } | Inst::Resolve { .. } => 1,
            _ => 1,
        }
    }

    /// Encoded size in bytes. The hidden ISA uses 4-byte instructions with
    /// an 8-byte long form for immediates that do not fit in 16 bits; this
    /// feeds the static-code-size (PISCS) accounting and the I$ model.
    pub fn encoded_size(&self) -> u64 {
        match self {
            Inst::Alu { a, b, .. } if (a.needs_long_encoding() || b.needs_long_encoding()) => 8,
            Inst::Cmp { b, .. } if b.needs_long_encoding() => 8,
            Inst::Load { offset, .. } | Inst::Store { offset, .. }
                if Operand::Imm(*offset).needs_long_encoding() =>
            {
                8
            }
            _ => 4,
        }
    }

    /// Assembly mnemonic used by `Display`.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Shl => "shl",
                AluOp::Shr => "shr",
                AluOp::Mul => "mul",
                AluOp::Div => "div",
                AluOp::Mov => "mov",
            },
            Inst::Fp { op, .. } => match op {
                FpOp::Add => "fadd",
                FpOp::Sub => "fsub",
                FpOp::Mul => "fmul",
                FpOp::Div => "fdiv",
            },
            Inst::Load {
                speculative: false, ..
            } => "ld",
            Inst::Load {
                speculative: true, ..
            } => "ld.s",
            Inst::Store { .. } => "st",
            Inst::Cmp { kind, .. } => match kind {
                CmpKind::Eq => "cmp.eq",
                CmpKind::Ne => "cmp.ne",
                CmpKind::Lt => "cmp.lt",
                CmpKind::Le => "cmp.le",
                CmpKind::Gt => "cmp.gt",
                CmpKind::Ge => "cmp.ge",
                CmpKind::Ult => "cmp.ult",
                CmpKind::Uge => "cmp.uge",
            },
            Inst::Branch { cond, .. } => match cond {
                CondKind::Nz => "br.nz",
                CondKind::Z => "br.z",
            },
            Inst::Jump { .. } => "jmp",
            Inst::Predict { .. } => "predict",
            Inst::Resolve { cond, .. } => match cond {
                CondKind::Nz => "resolve.nz",
                CondKind::Z => "resolve.z",
            },
            Inst::Call { .. } => "call",
            Inst::Ret => "ret",
            Inst::Nop => "nop",
            Inst::Halt => "halt",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match self {
            Inst::Alu { dst, a, b, op } => {
                if *op == AluOp::Mov {
                    write!(f, "{m} {dst}, {b}")
                } else {
                    write!(f, "{m} {dst}, {a}, {b}")
                }
            }
            Inst::Fp { dst, a, b, .. } => write!(f, "{m} {dst}, {a}, {b}"),
            Inst::Load {
                dst, base, offset, ..
            } => write!(f, "{m} {dst}, [{base}+{offset}]"),
            Inst::Store { src, base, offset } => write!(f, "{m} [{base}+{offset}], {src}"),
            Inst::Cmp { dst, a, b, .. } => write!(f, "{m} {dst}, {a}, {b}"),
            Inst::Branch { src, target, .. } => write!(f, "{m} {src}, {target}"),
            Inst::Jump { target } => write!(f, "{m} {target}"),
            Inst::Predict { target } => write!(f, "{m} {target}"),
            Inst::Resolve { src, target, .. } => write!(f, "{m} {src}, {target}"),
            Inst::Call { callee, ret_to } => write!(f, "{m} {callee} ret={ret_to}"),
            Inst::Ret | Inst::Nop | Inst::Halt => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_covers_all_kinds() {
        assert!(CmpKind::Eq.eval(3, 3));
        assert!(CmpKind::Ne.eval(3, 4));
        assert!(CmpKind::Lt.eval((-1i64) as u64, 0));
        assert!(CmpKind::Le.eval(2, 2));
        assert!(CmpKind::Gt.eval(5, 4));
        assert!(CmpKind::Ge.eval(5, 5));
        assert!(CmpKind::Ult.eval(1, u64::MAX));
        assert!(CmpKind::Uge.eval(u64::MAX, 1));
    }

    #[test]
    fn cmp_negation_is_logical_not() {
        let pairs: [(u64, u64); 4] = [(0, 0), (1, 2), ((-5i64) as u64, 5), (u64::MAX, 0)];
        for kind in [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
            CmpKind::Ult,
            CmpKind::Uge,
        ] {
            for (a, b) in pairs {
                assert_eq!(kind.eval(a, b), !kind.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn cond_negation_flips_taken() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(CondKind::Nz.eval(v), !CondKind::Nz.negate().eval(v));
            assert_eq!(CondKind::Z.eval(v), !CondKind::Z.negate().eval(v));
        }
    }

    #[test]
    fn srcs_and_dst_of_load_store() {
        let ld = Inst::load(Reg(1), Reg(2), 8);
        assert_eq!(ld.dst(), Some(Reg(1)));
        assert_eq!(ld.srcs(), vec![Reg(2)]);
        let st = Inst::store(Reg(3), Reg(4), 0);
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![Reg(3), Reg(4)]);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Halt.is_control());
        assert!(Inst::Predict { target: BlockId(1) }.is_control());
        assert!(Inst::Resolve {
            cond: CondKind::Nz,
            src: Reg(0),
            target: BlockId(1)
        }
        .is_control());
        assert!(!Inst::Nop.is_control());
        assert!(!Inst::load(Reg(0), Reg(1), 0).is_control());
    }

    #[test]
    fn predict_is_front_end_only() {
        assert_eq!(
            Inst::Predict { target: BlockId(0) }.fu_class(),
            FuClass::None
        );
        assert_eq!(
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(0),
                target: BlockId(0)
            }
            .fu_class(),
            FuClass::Int
        );
    }

    #[test]
    fn long_immediates_double_encoding_size() {
        let small = Inst::alu(AluOp::Add, Reg(0), Operand::Reg(Reg(1)), Operand::Imm(12));
        let large = Inst::alu(
            AluOp::Add,
            Reg(0),
            Operand::Reg(Reg(1)),
            Operand::Imm(1 << 20),
        );
        assert_eq!(small.encoded_size(), 4);
        assert_eq!(large.encoded_size(), 8);
    }

    #[test]
    fn set_target_rewrites_all_control_forms() {
        let mut insts = vec![
            Inst::Jump { target: BlockId(0) },
            Inst::Predict { target: BlockId(0) },
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(0),
                target: BlockId(0),
            },
            Inst::Resolve {
                cond: CondKind::Z,
                src: Reg(0),
                target: BlockId(0),
            },
        ];
        for i in &mut insts {
            i.set_target(BlockId(7));
            assert_eq!(i.target(), Some(BlockId(7)));
        }
    }

    #[test]
    fn display_formats_resolve() {
        let r = Inst::Resolve {
            cond: CondKind::Nz,
            src: Reg(3),
            target: BlockId(9),
        };
        assert_eq!(r.to_string(), "resolve.nz r3, bb9");
    }
}

//! Architectural registers.

use std::fmt;

/// Number of architected general-purpose registers in the hidden ISA.
///
/// DBT-based VLIW machines expose a large architectural register file to the
/// translator (the paper's §2.2 lists "additional registers to hold
/// speculative values" as one of the three enabling mechanisms); 64 matches
/// the Transmeta/Denver class of machines.
pub const NUM_ARCH_REGS: usize = 64;

/// An architected register `r0..r63`.
///
/// `r0` is a normal read/write register (the ISA has no hardwired zero; use
/// [`crate::Operand::Imm`] for constants). Register *values* are untyped
/// 64-bit words; floating-point operations interpret them as `f64` bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index as a `usize` for register-file indexing.
    ///
    /// # Panics
    ///
    /// Never panics; indices are validated at program-build time.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this register index is within the architected file.
    #[inline]
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_ARCH_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_assembly_syntax() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(63).to_string(), "r63");
    }

    #[test]
    fn validity_bound_is_num_arch_regs() {
        assert!(Reg(63).is_valid());
        assert!(!Reg(64).is_valid());
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..NUM_ARCH_REGS as u8 {
            assert_eq!(Reg(i).index(), i as usize);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg(1) < Reg(2));
        assert_eq!(Reg(5), Reg::from(5u8));
    }
}

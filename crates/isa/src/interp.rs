//! Functional interpreter: the architectural execution oracle.
//!
//! The interpreter executes a [`Program`] with exact semantics but no
//! timing. It serves three roles in the reproduction:
//!
//! 1. **Profiling** — run with a real branch predictor as the
//!    [`PredictionOracle`] to measure per-site bias and predictability
//!    (the paper profiles TRAIN inputs in PTLSim).
//! 2. **Transformation correctness** — a decomposed program must reach the
//!    same architectural state as the original *under any oracle*, because
//!    `predict`/`resolve` make the predicted path architecturally executed;
//!    tests run both programs under adversarial oracles and compare state.
//! 3. **Reference for the cycle simulator** — the simulator's committed
//!    state must match the interpreter's.

use crate::inst::{AluOp, FpOp, Inst, Operand};
use crate::memory::Memory;
use crate::program::{BlockId, LayoutInfo, Program};
use crate::reg::{Reg, NUM_ARCH_REGS};
use std::fmt;

/// Supplies predictions for `predict` instructions and conventional
/// branches, and receives training updates.
///
/// Sites are identified by the instruction's code address, mirroring how a
/// hardware predictor indexes by PC.
pub trait PredictionOracle {
    /// Predicts the direction for the branch/predict at `site_pc`.
    fn predict(&mut self, site_pc: u64) -> bool;
    /// Trains the predictor with the actual direction.
    fn update(&mut self, site_pc: u64, taken: bool);
}

/// Simple built-in oracles (the adversaries used by correctness tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TakenOracle {
    /// Predict taken everywhere.
    AlwaysTaken,
    /// Predict not-taken everywhere.
    AlwaysNotTaken,
    /// Alternate taken/not-taken per query.
    Alternate {
        /// Next prediction.
        next: bool,
    },
    /// Deterministic pseudo-random predictions (xorshift64*).
    Random {
        /// Generator state; must be non-zero.
        state: u64,
    },
    /// Predict the last observed outcome for the site's low PC bits
    /// (a toy last-direction predictor, useful for smoke tests).
    LastOutcome {
        /// 256-entry last-direction table.
        table: Box<[bool; 256]>,
    },
}

impl TakenOracle {
    /// A deterministic pseudo-random oracle from a non-zero seed.
    pub fn random(seed: u64) -> TakenOracle {
        TakenOracle::Random { state: seed.max(1) }
    }

    /// A fresh last-direction oracle.
    pub fn last_outcome() -> TakenOracle {
        TakenOracle::LastOutcome {
            table: Box::new([false; 256]),
        }
    }
}

impl PredictionOracle for TakenOracle {
    fn predict(&mut self, site_pc: u64) -> bool {
        match self {
            TakenOracle::AlwaysTaken => true,
            TakenOracle::AlwaysNotTaken => false,
            TakenOracle::Alternate { next } => {
                let p = *next;
                *next = !p;
                p
            }
            TakenOracle::Random { state } => {
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) != 0
            }
            TakenOracle::LastOutcome { table } => table[(site_pc >> 2) as usize & 0xff],
        }
    }

    fn update(&mut self, site_pc: u64, taken: bool) {
        if let TakenOracle::LastOutcome { table } = self {
            table[(site_pc >> 2) as usize & 0xff] = taken;
        }
    }
}

/// Why an interpreter run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction was executed.
    Halted,
    /// The step budget was exhausted.
    MaxSteps,
}

/// Architectural execution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A non-speculative load touched an unmapped address — exactly the
    /// fault that the non-faulting `ld.s` form exists to suppress.
    LoadFault {
        /// Faulting address.
        addr: u64,
        /// Block containing the load.
        block: BlockId,
    },
    /// `ret` with an empty call stack.
    ReturnUnderflow(BlockId),
    /// A `resolve` executed with no outstanding `predict` (compiler bug).
    OrphanResolve(BlockId),
    /// Control fell off the end of a block (or took the not-taken edge of
    /// a conditional) with no fall-through successor — a malformed program
    /// that escaped validation (compiler bug).
    MissingFallthrough(BlockId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::LoadFault { addr, block } => {
                write!(f, "load fault at {addr:#x} in {block}")
            }
            ExecError::ReturnUnderflow(b) => write!(f, "return with empty call stack in {b}"),
            ExecError::OrphanResolve(b) => write!(f, "resolve without outstanding predict in {b}"),
            ExecError::MissingFallthrough(b) => {
                write!(f, "no fall-through successor for {b}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A dynamic control-flow event, delivered to the run visitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecEvent {
    /// A conventional conditional branch executed.
    Branch {
        /// Code address of the branch.
        pc: u64,
        /// Containing block.
        block: BlockId,
        /// Actual direction.
        taken: bool,
        /// Direction the oracle predicted.
        predicted: bool,
    },
    /// A `predict` instruction steered fetch.
    Predict {
        /// Code address of the predict.
        pc: u64,
        /// Containing block.
        block: BlockId,
        /// Predicted direction.
        predicted_taken: bool,
    },
    /// A `resolve` instruction checked an earlier prediction.
    Resolve {
        /// Code address of the resolve.
        pc: u64,
        /// Containing block.
        block: BlockId,
        /// Code address of the associated `predict`.
        predict_pc: u64,
        /// Whether the earlier prediction was wrong (resolve taken).
        mispredicted: bool,
        /// The actual direction of the original (pre-decomposition) branch,
        /// expressed relative to the `predict`'s target.
        actual_taken: bool,
    },
    /// A load executed.
    Load {
        /// Effective address.
        addr: u64,
        /// Non-faulting form.
        speculative: bool,
    },
    /// A store executed.
    Store {
        /// Effective address.
        addr: u64,
    },
}

/// Aggregated per-run counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchRecord {
    /// Dynamic conditional branches executed.
    pub branches: u64,
    /// Of those, taken.
    pub taken: u64,
    /// Of those, correctly predicted by the oracle.
    pub correct: u64,
    /// Dynamic `predict` instructions.
    pub predicts: u64,
    /// Dynamic `resolve` instructions.
    pub resolves: u64,
    /// Of those, mispredictions detected (resolve taken).
    pub resolve_mispredicts: u64,
}

/// Interpreter configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterpConfig {
    /// Maximum dynamic instructions before stopping with
    /// [`StopReason::MaxSteps`].
    pub max_steps: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 200_000_000,
        }
    }
}

/// Outcome of [`Interpreter::run_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Dynamic instructions executed (including `predict`s).
    pub steps: u64,
    /// Control-flow counters.
    pub record: BranchRecord,
}

/// The functional interpreter.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    layout: LayoutInfo,
    regs: [u64; NUM_ARCH_REGS],
    memory: Memory,
    call_stack: Vec<BlockId>,
    /// FIFO of outstanding (predict_pc, predicted_taken); the software
    /// analogue of the hardware DBB, unbounded because the compiler never
    /// interleaves predict/resolve pairs.
    outstanding: Vec<(u64, bool)>,
    config: InterpConfig,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program` with the given initial memory.
    pub fn new(program: &'p Program, memory: Memory) -> Self {
        Interpreter {
            program,
            layout: program.layout(),
            regs: [0; NUM_ARCH_REGS],
            memory,
            call_stack: Vec::new(),
            outstanding: Vec::new(),
            config: InterpConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: InterpConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets an initial register value.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Reads a register (for post-run state checks).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// The full register file.
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// The memory image.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Runs to completion with a prediction oracle, delivering every
    /// [`ExecEvent`] to `visitor`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on an architectural fault.
    pub fn run_with<O, F>(
        &mut self,
        oracle: &mut O,
        mut visitor: F,
    ) -> Result<RunOutcome, ExecError>
    where
        O: PredictionOracle + ?Sized,
        F: FnMut(&ExecEvent),
    {
        let mut block = self.program.entry();
        let mut idx = 0usize;
        let mut steps = 0u64;
        let mut record = BranchRecord::default();

        loop {
            if steps >= self.config.max_steps {
                return Ok(RunOutcome {
                    stop: StopReason::MaxSteps,
                    steps,
                    record,
                });
            }
            let bb = self.program.block(block);
            if idx >= bb.insts().len() {
                // Implicit fall-through.
                let ft = bb
                    .fallthrough()
                    .ok_or(ExecError::MissingFallthrough(block))?;
                block = ft;
                idx = 0;
                continue;
            }
            let inst = &bb.insts()[idx];
            let pc = self.layout.inst_addr(block, idx);
            steps += 1;

            match *inst {
                Inst::Alu { op, dst, a, b } => {
                    let av = self.operand(a);
                    let bv = self.operand(b);
                    self.regs[dst.index()] = eval_alu(op, av, bv);
                }
                Inst::Fp { op, dst, a, b } => {
                    let av = f64::from_bits(self.regs[a.index()]);
                    let bv = f64::from_bits(self.regs[b.index()]);
                    let r = match op {
                        FpOp::Add => av + bv,
                        FpOp::Sub => av - bv,
                        FpOp::Mul => av * bv,
                        FpOp::Div => av / bv,
                    };
                    self.regs[dst.index()] = r.to_bits();
                }
                Inst::Load {
                    dst,
                    base,
                    offset,
                    speculative,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as u64);
                    visitor(&ExecEvent::Load { addr, speculative });
                    match self.memory.read(addr) {
                        Some(v) => self.regs[dst.index()] = v,
                        None if speculative => self.regs[dst.index()] = 0,
                        None => return Err(ExecError::LoadFault { addr, block }),
                    }
                }
                Inst::Store { src, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as u64);
                    visitor(&ExecEvent::Store { addr });
                    self.memory.write(addr, self.regs[src.index()]);
                }
                Inst::Cmp { kind, dst, a, b } => {
                    let av = self.regs[a.index()];
                    let bv = self.operand(b);
                    self.regs[dst.index()] = kind.eval(av, bv) as u64;
                }
                Inst::Branch { cond, src, target } => {
                    let taken = cond.eval(self.regs[src.index()]);
                    let predicted = oracle.predict(pc);
                    oracle.update(pc, taken);
                    record.branches += 1;
                    record.taken += taken as u64;
                    record.correct += (predicted == taken) as u64;
                    visitor(&ExecEvent::Branch {
                        pc,
                        block,
                        taken,
                        predicted,
                    });
                    if taken {
                        block = target;
                        idx = 0;
                        continue;
                    }
                    block = bb
                        .fallthrough()
                        .ok_or(ExecError::MissingFallthrough(block))?;
                    idx = 0;
                    continue;
                }
                Inst::Jump { target } => {
                    block = target;
                    idx = 0;
                    continue;
                }
                Inst::Predict { target } => {
                    let predicted_taken = oracle.predict(pc);
                    self.outstanding.push((pc, predicted_taken));
                    record.predicts += 1;
                    visitor(&ExecEvent::Predict {
                        pc,
                        block,
                        predicted_taken,
                    });
                    if predicted_taken {
                        block = target;
                    } else {
                        block = bb
                            .fallthrough()
                            .ok_or(ExecError::MissingFallthrough(block))?;
                    }
                    idx = 0;
                    continue;
                }
                Inst::Resolve { cond, src, target } => {
                    let mispredicted = cond.eval(self.regs[src.index()]);
                    let (predict_pc, predicted) = self
                        .outstanding
                        .pop()
                        .ok_or(ExecError::OrphanResolve(block))?;
                    let actual_taken = predicted ^ mispredicted;
                    oracle.update(predict_pc, actual_taken);
                    record.resolves += 1;
                    record.resolve_mispredicts += mispredicted as u64;
                    visitor(&ExecEvent::Resolve {
                        pc,
                        block,
                        predict_pc,
                        mispredicted,
                        actual_taken,
                    });
                    if mispredicted {
                        block = target;
                        idx = 0;
                        continue;
                    }
                    block = bb
                        .fallthrough()
                        .ok_or(ExecError::MissingFallthrough(block))?;
                    idx = 0;
                    continue;
                }
                Inst::Call { callee, ret_to } => {
                    self.call_stack.push(ret_to);
                    block = callee;
                    idx = 0;
                    continue;
                }
                Inst::Ret => {
                    let ret = self
                        .call_stack
                        .pop()
                        .ok_or(ExecError::ReturnUnderflow(block))?;
                    block = ret;
                    idx = 0;
                    continue;
                }
                Inst::Nop => {}
                Inst::Halt => {
                    return Ok(RunOutcome {
                        stop: StopReason::Halted,
                        steps,
                        record,
                    });
                }
            }
            idx += 1;
        }
    }

    /// Runs with an oracle and no event visitor.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on an architectural fault.
    pub fn run<O>(&mut self, oracle: &mut O) -> Result<RunOutcome, ExecError>
    where
        O: PredictionOracle + ?Sized,
    {
        self.run_with(oracle, |_| {})
    }

    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v as u64,
        }
    }
}

/// Evaluates an integer ALU operation.
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Mov => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CmpKind, CondKind};
    use crate::program::ProgramBuilder;

    /// `r1 = 10; loop { r1 -= 1; if r1 != 0 goto loop }; halt`
    fn countdown_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.push(entry, Inst::mov(Reg(1), Operand::Imm(10)));
        b.fallthrough(entry, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        b.fallthrough(body, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().unwrap()
    }

    #[test]
    fn countdown_executes_ten_iterations() {
        let p = countdown_loop();
        let mut i = Interpreter::new(&p, Memory::new());
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.stop, StopReason::Halted);
        assert_eq!(i.reg(Reg(1)), 0);
        assert_eq!(out.record.branches, 10);
        assert_eq!(out.record.taken, 9);
    }

    #[test]
    fn oracle_accuracy_is_recorded() {
        let p = countdown_loop();
        let mut i = Interpreter::new(&p, Memory::new());
        // Always-taken is right 9/10 times on this loop.
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.record.correct, 9);
    }

    #[test]
    fn max_steps_stops_runaway_loops() {
        let mut b = ProgramBuilder::new();
        let e = b.block("spin");
        b.push(e, Inst::Jump { target: e });
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i =
            Interpreter::new(&p, Memory::new()).with_config(InterpConfig { max_steps: 100 });
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.stop, StopReason::MaxSteps);
        assert_eq!(out.steps, 100);
    }

    #[test]
    fn normal_load_to_unmapped_faults_but_speculative_returns_zero() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::load_spec(Reg(1), Reg(0), 0x5000));
        b.push(e, Inst::load(Reg(2), Reg(0), 0x5000));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p, Memory::new());
        let err = i.run(&mut TakenOracle::AlwaysTaken).unwrap_err();
        assert!(matches!(err, ExecError::LoadFault { addr: 0x5000, .. }));
        // The speculative load completed with zero before the fault.
        assert_eq!(i.reg(Reg(1)), 0);
    }

    /// Decomposed hammock:
    /// entry: predict -> taken_path ; fallthrough -> nt_path
    /// nt_path (predicted not-taken): cmp r2 = (r1 != 0); resolve.nz r2 -> correct_t; fallthrough join_nt
    /// taken_path: cmp r2 = (r1 == 0); resolve.nz r2 -> correct_nt; fallthrough join_t
    /// Each join/correct writes a distinct marker then halts.
    fn decomposed_hammock() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let t = b.block("taken_resolve");
        let nt = b.block("nt_resolve");
        let join_t = b.block("join_t");
        let join_nt = b.block("join_nt");
        let correct_t = b.block("correct_t");
        let correct_nt = b.block("correct_nt");
        let halt = b.block("halt");

        // Original branch: taken iff r1 != 0.
        b.push(entry, Inst::Predict { target: t });
        b.fallthrough(entry, nt);

        // Predicted taken: misprediction iff r1 == 0.
        b.push(
            t,
            Inst::Cmp {
                kind: CmpKind::Eq,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            t,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(2),
                target: correct_nt,
            },
        );
        b.fallthrough(t, join_t);

        // Predicted not-taken: misprediction iff r1 != 0.
        b.push(
            nt,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            nt,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(2),
                target: correct_t,
            },
        );
        b.fallthrough(nt, join_nt);

        b.push(join_t, Inst::mov(Reg(10), Operand::Imm(100)));
        b.push(join_t, Inst::Jump { target: halt });
        b.push(join_nt, Inst::mov(Reg(10), Operand::Imm(200)));
        b.push(join_nt, Inst::Jump { target: halt });
        b.push(correct_t, Inst::mov(Reg(10), Operand::Imm(100)));
        b.push(correct_t, Inst::Jump { target: halt });
        b.push(correct_nt, Inst::mov(Reg(10), Operand::Imm(200)));
        b.push(correct_nt, Inst::Jump { target: halt });
        b.push(halt, Inst::Halt);
        b.set_entry(entry);
        b.finish().unwrap()
    }

    #[test]
    fn decomposed_branch_reaches_same_state_under_any_oracle() {
        let p = decomposed_hammock();
        for r1 in [0u64, 1, 42] {
            let expected = if r1 != 0 { 100 } else { 200 };
            for mut oracle in [
                TakenOracle::AlwaysTaken,
                TakenOracle::AlwaysNotTaken,
                TakenOracle::random(7),
                TakenOracle::Alternate { next: true },
            ] {
                let mut i = Interpreter::new(&p, Memory::new());
                i.set_reg(Reg(1), r1);
                let out = i.run(&mut oracle).unwrap();
                assert_eq!(out.stop, StopReason::Halted);
                assert_eq!(i.reg(Reg(10)), expected, "r1={r1} oracle={oracle:?}");
                assert_eq!(out.record.predicts, 1);
                assert_eq!(out.record.resolves, 1);
            }
        }
    }

    #[test]
    fn resolve_trains_the_predict_site() {
        // With a last-outcome oracle, the second execution of the same
        // hammock must predict the direction observed the first time.
        let p = decomposed_hammock();
        let mut oracle = TakenOracle::last_outcome();
        // First run: r1 != 0 → actual taken; oracle starts not-taken, so the
        // resolve fires and trains "taken".
        let mut i = Interpreter::new(&p, Memory::new());
        i.set_reg(Reg(1), 5);
        let out = i.run(&mut oracle).unwrap();
        assert_eq!(out.record.resolve_mispredicts, 1);
        // Second run, same data: now predicted correctly.
        let mut i = Interpreter::new(&p, Memory::new());
        i.set_reg(Reg(1), 5);
        let out = i.run(&mut oracle).unwrap();
        assert_eq!(out.record.resolve_mispredicts, 0);
    }

    #[test]
    fn call_and_ret_transfer_control() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let f = b.block("callee");
        let r = b.block("after");
        b.push(f, Inst::mov(Reg(3), Operand::Imm(9)));
        b.push(f, Inst::Ret);
        b.push(
            e,
            Inst::Call {
                callee: f,
                ret_to: r,
            },
        );
        b.push(r, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p, Memory::new());
        i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(i.reg(Reg(3)), 9);
    }

    #[test]
    fn ret_underflow_is_an_error() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::Ret);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p, Memory::new());
        assert!(matches!(
            i.run(&mut TakenOracle::AlwaysTaken).unwrap_err(),
            ExecError::ReturnUnderflow(_)
        ));
    }

    #[test]
    fn orphan_resolve_is_an_error() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let c = b.block("correct");
        b.push(
            e,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(0),
                target: c,
            },
        );
        b.fallthrough(e, c);
        b.push(c, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p, Memory::new());
        assert!(matches!(
            i.run(&mut TakenOracle::AlwaysTaken).unwrap_err(),
            ExecError::OrphanResolve(_)
        ));
    }

    #[test]
    fn memory_traffic_events_are_delivered() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(0x8000)));
        b.push(e, Inst::store(Reg(1), Reg(1), 0));
        b.push(e, Inst::load(Reg(2), Reg(1), 0));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p, Memory::new());
        let mut loads = 0;
        let mut stores = 0;
        i.run_with(&mut TakenOracle::AlwaysTaken, |ev| match ev {
            ExecEvent::Load { .. } => loads += 1,
            ExecEvent::Store { .. } => stores += 1,
            _ => {}
        })
        .unwrap();
        assert_eq!((loads, stores), (1, 1));
        assert_eq!(i.reg(Reg(2)), 0x8000);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, 2, 3), 5);
        assert_eq!(eval_alu(AluOp::Sub, 2, 3), u64::MAX);
        assert_eq!(eval_alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Shl, 1, 65), 2); // shift mod 64
        assert_eq!(eval_alu(AluOp::Mov, 9, 4), 4);
    }
}

//! Sparse 64-bit data-memory image.

use std::collections::HashMap;

/// A sparse, word-granular data memory.
///
/// Addresses are byte addresses; accesses are 8-byte words, aligned down to
/// the nearest word boundary (the hidden ISA does not require sub-word
/// accesses for the paper's workloads). The image tracks which regions were
/// explicitly mapped so that non-speculative loads to unmapped addresses can
/// be distinguished from non-faulting speculative (`ld.s`) loads.
///
/// Mapping is a `Vec` of ranges scanned linearly: pre-map your working set
/// with [`map_region`](Memory::map_region)/[`load_words`](Memory::load_words).
/// Each store to an *unmapped* word implicitly maps one 8-byte range, so a
/// workload scattering stores across unmapped space degrades every
/// subsequent access to O(stores) — map first.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    words: HashMap<u64, u64>,
    /// Half-open mapped ranges `[start, end)`.
    mapped: Vec<(u64, u64)>,
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the half-open byte range `[start, start + len)`.
    ///
    /// Mapped-but-unwritten words read as zero.
    pub fn map_region(&mut self, start: u64, len: u64) {
        if len > 0 {
            self.mapped.push((start, start + len));
        }
    }

    /// Returns `true` if the byte address falls in a mapped region.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.mapped.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Reads the word containing `addr`. Returns `None` when `addr` is
    /// unmapped — callers decide whether that is a fault (normal load) or a
    /// zero (speculative load).
    pub fn read(&self, addr: u64) -> Option<u64> {
        if !self.is_mapped(addr) {
            return None;
        }
        Some(*self.words.get(&(addr & !7)).unwrap_or(&0))
    }

    /// Writes the word containing `addr`. Stores to unmapped addresses map
    /// the containing word implicitly (the workloads pre-map their images,
    /// so this path only services scratch data).
    pub fn write(&mut self, addr: u64, value: u64) {
        let w = addr & !7;
        if !self.is_mapped(addr) {
            self.mapped.push((w, w + 8));
        }
        self.words.insert(w, value);
    }

    /// Bulk-initialises a region with 64-bit words starting at `start`
    /// (mapping it as a side effect).
    pub fn load_words(&mut self, start: u64, words: &[u64]) {
        self.map_region(start, (words.len() as u64) * 8);
        for (i, &w) in words.iter().enumerate() {
            self.words.insert((start & !7) + (i as u64) * 8, w);
        }
    }

    /// Number of explicitly stored (non-zero-default) words.
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_none() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), None);
    }

    #[test]
    fn mapped_unwritten_reads_zero() {
        let mut m = Memory::new();
        m.map_region(0x1000, 64);
        assert_eq!(m.read(0x1000), Some(0));
        assert_eq!(m.read(0x103f), Some(0));
        assert_eq!(m.read(0x1040), None);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = Memory::new();
        m.write(0x2000, 0xdead_beef);
        assert_eq!(m.read(0x2000), Some(0xdead_beef));
    }

    #[test]
    fn reads_are_word_aligned() {
        let mut m = Memory::new();
        m.write(0x2000, 7);
        // Any byte inside the word sees the same value.
        assert_eq!(m.read(0x2003), Some(7));
        assert_eq!(m.read(0x2007), Some(7));
    }

    #[test]
    fn load_words_maps_and_fills() {
        let mut m = Memory::new();
        m.load_words(0x3000, &[1, 2, 3]);
        assert_eq!(m.read(0x3000), Some(1));
        assert_eq!(m.read(0x3008), Some(2));
        assert_eq!(m.read(0x3010), Some(3));
        assert_eq!(m.read(0x3018), None);
        assert_eq!(m.resident_words(), 3);
    }

    #[test]
    fn store_implicitly_maps_word() {
        let mut m = Memory::new();
        m.write(0x9000, 5);
        assert!(m.is_mapped(0x9000));
        assert!(!m.is_mapped(0x9008));
    }
}

//! Sparse 64-bit data-memory image, stored as 4 KiB flat pages.
//!
//! The profiling interpreter and the cycle simulator hit this structure on
//! every load and store, so the representation is optimised for the common
//! case: a handful of contiguous regions accessed with high locality. Pages
//! are dense `[u64; 512]` arrays found through a small sorted page table
//! with a last-page translation cache, replacing the word-granular
//! `HashMap` the seed used (one hash + probe per access).
//!
//! [`ReferenceMemory`] retains the original hash-map implementation as an
//! executable specification: the proptest differential suite drives both
//! with the same operation sequences, and `perfbench` measures the paged
//! store's speedup against it.

use std::sync::atomic::{AtomicUsize, Ordering};

const PAGE_SHIFT: u64 = 12;
/// Bytes per page (4 KiB).
const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// 64-bit words per page.
const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;

/// One 4 KiB page: a flat word array plus the two bitmaps needed to
/// preserve the seed's exact semantics.
///
/// * `mapped` — one bit per **byte**; [`Memory::read`] returns `None` for
///   addresses whose byte is unmapped, mirroring the old half-open range
///   list (which was byte-granular, e.g. `map_region(0x1000, 64)` maps
///   0x103f but not 0x1040).
/// * `written` — one bit per **word**; counts words explicitly stored
///   (even zero-valued ones) so [`Memory::resident_words`] matches the old
///   `HashMap::len`.
#[derive(Clone, Debug)]
struct Page {
    words: [u64; PAGE_WORDS],
    mapped: [u64; PAGE_WORDS / 8],
    written: [u64; PAGE_WORDS / 64],
}

impl Page {
    fn new() -> Box<Page> {
        Box::new(Page {
            words: [0; PAGE_WORDS],
            mapped: [0; PAGE_WORDS / 8],
            written: [0; PAGE_WORDS / 64],
        })
    }

    #[inline]
    fn byte_mapped(&self, byte: usize) -> bool {
        self.mapped[byte >> 6] & (1u64 << (byte & 63)) != 0
    }
}

/// Sets bits `[lo, hi)` in a packed bitmap.
fn set_bits(bitmap: &mut [u64], lo: usize, hi: usize) {
    let (mut word, last) = (lo >> 6, (hi - 1) >> 6);
    let lo_mask = !0u64 << (lo & 63);
    let hi_mask = !0u64 >> (63 - ((hi - 1) & 63));
    if word == last {
        bitmap[word] |= lo_mask & hi_mask;
        return;
    }
    bitmap[word] |= lo_mask;
    word += 1;
    while word < last {
        bitmap[word] = !0;
        word += 1;
    }
    bitmap[last] |= hi_mask;
}

/// A sparse, word-granular data memory backed by 4 KiB flat pages.
///
/// Addresses are byte addresses; accesses are 8-byte words, aligned down to
/// the nearest word boundary (the hidden ISA does not require sub-word
/// accesses for the paper's workloads). The image tracks which bytes were
/// explicitly mapped so that non-speculative loads to unmapped addresses can
/// be distinguished from non-faulting speculative (`ld.s`) loads.
///
/// Pages live in a `Vec` sorted by page number; translation first checks a
/// relaxed-atomic *last-page hint* (data accesses have strong page
/// locality) and falls back to binary search. The hint is a pure cache —
/// it never affects results — which keeps the structure `Sync`: the
/// experiment engine shares inputs by reference across worker threads.
///
/// Each store to an *unmapped* word implicitly maps one 8-byte range, so
/// semantics match the seed's range-list implementation exactly; see
/// [`ReferenceMemory`] for the retained executable specification.
#[derive(Debug, Default)]
pub struct Memory {
    /// `(page_number, page)` sorted by page number.
    pages: Vec<(u64, Box<Page>)>,
    /// Index into `pages` of the last page touched (validated before use).
    hint: AtomicUsize,
    /// Running count of explicitly written words.
    resident: usize,
}

impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory {
            pages: self.pages.clone(),
            hint: AtomicUsize::new(self.hint.load(Ordering::Relaxed)),
            resident: self.resident,
        }
    }
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds page `pn`, checking the last-page hint before binary search.
    /// Read-only and safe under shared access.
    #[inline]
    fn page(&self, pn: u64) -> Option<&Page> {
        let hint = self.hint.load(Ordering::Relaxed);
        if let Some(entry) = self.pages.get(hint) {
            if entry.0 == pn {
                return Some(&entry.1);
            }
        }
        match self.pages.binary_search_by_key(&pn, |entry| entry.0) {
            Ok(i) => {
                self.hint.store(i, Ordering::Relaxed);
                Some(&self.pages[i].1)
            }
            Err(_) => None,
        }
    }

    /// Finds or inserts page `pn`, returning its table index.
    fn ensure_page(&mut self, pn: u64) -> usize {
        let i = match self.pages.binary_search_by_key(&pn, |entry| entry.0) {
            Ok(i) => i,
            Err(i) => {
                self.pages.insert(i, (pn, Page::new()));
                i
            }
        };
        self.hint.store(i, Ordering::Relaxed);
        i
    }

    /// Maps the half-open byte range `[start, start + len)`.
    ///
    /// Mapped-but-unwritten words read as zero.
    pub fn map_region(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let mut addr = start;
        while addr < end {
            let pn = addr >> PAGE_SHIFT;
            let page_end = (pn + 1) << PAGE_SHIFT;
            let lo = (addr & (PAGE_BYTES - 1)) as usize;
            let hi = if end < page_end {
                (end & (PAGE_BYTES - 1)) as usize
            } else {
                PAGE_BYTES as usize
            };
            let i = self.ensure_page(pn);
            set_bits(&mut self.pages[i].1.mapped, lo, hi);
            addr = page_end;
        }
    }

    /// Returns `true` if the byte address falls in a mapped region.
    #[inline]
    pub fn is_mapped(&self, addr: u64) -> bool {
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => page.byte_mapped((addr & (PAGE_BYTES - 1)) as usize),
            None => false,
        }
    }

    /// Reads the word containing `addr`. Returns `None` when `addr` is
    /// unmapped — callers decide whether that is a fault (normal load) or a
    /// zero (speculative load).
    #[inline]
    pub fn read(&self, addr: u64) -> Option<u64> {
        let page = self.page(addr >> PAGE_SHIFT)?;
        let byte = (addr & (PAGE_BYTES - 1)) as usize;
        if !page.byte_mapped(byte) {
            return None;
        }
        Some(page.words[byte >> 3])
    }

    /// Writes the word containing `addr`. Stores to unmapped addresses map
    /// the containing word implicitly (the workloads pre-map their images,
    /// so this path only services scratch data).
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let pn = addr >> PAGE_SHIFT;
        let byte = (addr & (PAGE_BYTES - 1)) as usize;
        let word = byte >> 3;
        // Exclusive access: the hint is a plain value here, no atomics.
        let hint = *self.hint.get_mut();
        let i = match self.pages.get(hint) {
            Some(entry) if entry.0 == pn => hint,
            _ => match self.pages.binary_search_by_key(&pn, |entry| entry.0) {
                Ok(i) => {
                    *self.hint.get_mut() = i;
                    i
                }
                Err(_) => self.ensure_page(pn),
            },
        };
        let page = &mut self.pages[i].1;
        if !page.byte_mapped(byte) {
            // Implicitly map exactly the containing 8-byte word.
            page.mapped[word >> 3] |= 0xffu64 << ((word << 3) & 63);
        }
        if page.written[word >> 6] & (1u64 << (word & 63)) == 0 {
            page.written[word >> 6] |= 1u64 << (word & 63);
            self.resident += 1;
        }
        page.words[word] = value;
    }

    /// Bulk-initialises a region with 64-bit words starting at `start`
    /// (mapping it as a side effect).
    pub fn load_words(&mut self, start: u64, words: &[u64]) {
        self.map_region(start, (words.len() as u64) * 8);
        for (i, &w) in words.iter().enumerate() {
            self.write_word_raw((start & !7) + (i as u64) * 8, w);
        }
    }

    /// Stores a word without touching the mapped bitmap (used by
    /// [`load_words`](Memory::load_words), which maps byte-exactly first).
    fn write_word_raw(&mut self, word_addr: u64, value: u64) {
        let i = self.ensure_page(word_addr >> PAGE_SHIFT);
        let word = ((word_addr & (PAGE_BYTES - 1)) >> 3) as usize;
        let page = &mut self.pages[i].1;
        if page.written[word >> 6] & (1u64 << (word & 63)) == 0 {
            page.written[word >> 6] |= 1u64 << (word & 63);
            self.resident += 1;
        }
        page.words[word] = value;
    }

    /// Number of explicitly stored (non-zero-default) words.
    pub fn resident_words(&self) -> usize {
        self.resident
    }

    /// All explicitly written words as sorted `(word_address, value)`
    /// pairs. Used by the differential and interp-vs-pipeline parity tests
    /// to compare committed memory state structurally.
    pub fn written_words(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.resident);
        for (pn, page) in &self.pages {
            let base = pn << PAGE_SHIFT;
            for (chunk, &bits) in page.written.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    let word = (chunk << 6) | bit;
                    out.push((base + ((word as u64) << 3), page.words[word]));
                    bits &= bits - 1;
                }
            }
        }
        out
    }
}

/// The seed's word-granular `HashMap` memory, retained verbatim as the
/// reference model for the paged [`Memory`].
///
/// The proptest differential suite replays random operation sequences
/// against both implementations and asserts observational equivalence;
/// `perfbench` uses it as the baseline side of the memory microbenchmark.
/// Mapping is a `Vec` of half-open ranges scanned linearly, so it is slow
/// under scattered stores — exactly the behaviour the paged store removes.
#[derive(Clone, Debug, Default)]
pub struct ReferenceMemory {
    words: std::collections::HashMap<u64, u64>,
    /// Half-open mapped ranges `[start, end)`.
    mapped: Vec<(u64, u64)>,
}

impl ReferenceMemory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the half-open byte range `[start, start + len)`.
    pub fn map_region(&mut self, start: u64, len: u64) {
        if len > 0 {
            self.mapped.push((start, start + len));
        }
    }

    /// Returns `true` if the byte address falls in a mapped region.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.mapped.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Reads the word containing `addr`; `None` when `addr` is unmapped.
    pub fn read(&self, addr: u64) -> Option<u64> {
        if !self.is_mapped(addr) {
            return None;
        }
        Some(*self.words.get(&(addr & !7)).unwrap_or(&0))
    }

    /// Writes the word containing `addr`, implicitly mapping it if needed.
    pub fn write(&mut self, addr: u64, value: u64) {
        let w = addr & !7;
        if !self.is_mapped(addr) {
            self.mapped.push((w, w + 8));
        }
        self.words.insert(w, value);
    }

    /// Bulk-initialises a region with 64-bit words starting at `start`.
    pub fn load_words(&mut self, start: u64, words: &[u64]) {
        self.map_region(start, (words.len() as u64) * 8);
        for (i, &w) in words.iter().enumerate() {
            self.words.insert((start & !7) + (i as u64) * 8, w);
        }
    }

    /// Number of explicitly stored words.
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }

    /// All explicitly written words as sorted `(word_address, value)` pairs.
    pub fn written_words(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_none() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), None);
    }

    #[test]
    fn mapped_unwritten_reads_zero() {
        let mut m = Memory::new();
        m.map_region(0x1000, 64);
        assert_eq!(m.read(0x1000), Some(0));
        assert_eq!(m.read(0x103f), Some(0));
        assert_eq!(m.read(0x1040), None);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = Memory::new();
        m.write(0x2000, 0xdead_beef);
        assert_eq!(m.read(0x2000), Some(0xdead_beef));
    }

    #[test]
    fn reads_are_word_aligned() {
        let mut m = Memory::new();
        m.write(0x2000, 7);
        // Any byte inside the word sees the same value.
        assert_eq!(m.read(0x2003), Some(7));
        assert_eq!(m.read(0x2007), Some(7));
    }

    #[test]
    fn load_words_maps_and_fills() {
        let mut m = Memory::new();
        m.load_words(0x3000, &[1, 2, 3]);
        assert_eq!(m.read(0x3000), Some(1));
        assert_eq!(m.read(0x3008), Some(2));
        assert_eq!(m.read(0x3010), Some(3));
        assert_eq!(m.read(0x3018), None);
        assert_eq!(m.resident_words(), 3);
    }

    #[test]
    fn store_implicitly_maps_word() {
        let mut m = Memory::new();
        m.write(0x9000, 5);
        assert!(m.is_mapped(0x9000));
        assert!(!m.is_mapped(0x9008));
    }

    #[test]
    fn map_region_spans_page_boundaries() {
        let mut m = Memory::new();
        // 3 pages' worth straddling a page boundary, byte-granular ends.
        m.map_region(0x1ffd, 0x2006);
        assert!(!m.is_mapped(0x1ffc));
        assert!(m.is_mapped(0x1ffd));
        assert!(m.is_mapped(0x2000));
        assert!(m.is_mapped(0x3fff));
        assert!(m.is_mapped(0x4002));
        assert!(!m.is_mapped(0x4003));
        m.write(0x2ff8, 42);
        assert_eq!(m.read(0x2ffb), Some(42));
    }

    #[test]
    fn rewrite_does_not_double_count_residency() {
        let mut m = Memory::new();
        m.write(0x2000, 1);
        m.write(0x2000, 2);
        m.write(0x2004, 3); // same word
        assert_eq!(m.resident_words(), 1);
        assert_eq!(m.read(0x2000), Some(3));
    }

    #[test]
    fn written_words_reports_sorted_pairs() {
        let mut m = Memory::new();
        m.write(0x9008, 2);
        m.write(0x1000, 1);
        m.map_region(0x4000, 64); // mapped-only words are not "written"
        assert_eq!(m.written_words(), vec![(0x1000, 1), (0x9008, 2)]);
    }

    #[test]
    fn matches_reference_on_unaligned_load_words() {
        let mut a = Memory::new();
        let mut b = ReferenceMemory::new();
        a.load_words(0x3003, &[7, 8]);
        b.load_words(0x3003, &[7, 8]);
        for addr in 0x2ff8..0x3020 {
            assert_eq!(a.read(addr), b.read(addr), "addr {addr:#x}");
            assert_eq!(a.is_mapped(addr), b.is_mapped(addr), "addr {addr:#x}");
        }
        assert_eq!(a.resident_words(), b.resident_words());
        assert_eq!(a.written_words(), b.written_words());
    }
}

//! # vanguard-isa
//!
//! The *hidden ISA* of the Branch Vanguard reproduction.
//!
//! The paper (McFarlin & Zilles, ISCA 2015) targets dynamic binary
//! translation systems (Transmeta Crusoe, NVIDIA Project Denver) whose
//! microarchitecture-specific ISA can be extended freely. This crate defines
//! such an ISA: a load/store RISC instruction set extended with the paper's
//! two new control-flow instructions:
//!
//! * [`Inst::Predict`] — carries only a target; at fetch it consults the
//!   branch predictor and steers the front end (the control-flow divergence
//!   point), then is dropped after decode.
//! * [`Inst::Resolve`] — looks like a conditional branch, is always
//!   predicted not-taken, and transfers control to its target only when the
//!   earlier `Predict` was wrong.
//!
//! The crate also provides the container types ([`Program`], [`BasicBlock`]),
//! a byte-accurate code layout for instruction-cache modelling, a sparse
//! [`Memory`] image, and a functional [`Interpreter`] used as the execution
//! oracle for profiling, transformation-correctness testing, and driving the
//! cycle-level simulator.
//!
//! ```
//! use vanguard_isa::{Program, Inst, AluOp, Operand, Reg, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let entry = b.block("entry");
//! b.push(entry, Inst::alu(AluOp::Add, Reg(1), Operand::Reg(Reg(0)), Operand::Imm(41)));
//! b.push(entry, Inst::Halt);
//! b.set_entry(entry);
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.block(entry).insts().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod image;
mod inst;
mod interp;
mod memory;
mod program;
mod reg;

pub use asm::{format_block, parse_program, ParseError};
pub use image::{DecodedImage, DecodedInst, NO_INST};
pub use inst::{AluOp, CmpKind, CondKind, FpOp, FuClass, Inst, Operand};
pub use interp::{
    eval_alu, BranchRecord, ExecError, ExecEvent, InterpConfig, Interpreter, PredictionOracle,
    RunOutcome, StopReason, TakenOracle,
};
pub use memory::{Memory, ReferenceMemory};
pub use program::{
    BasicBlock, BlockId, LayoutInfo, Program, ProgramBuilder, StaticSummary, ValidationError,
    CODE_BASE,
};
pub use reg::{Reg, NUM_ARCH_REGS};

//! Programs, basic blocks, and byte-accurate code layout.

use crate::inst::Inst;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Identifier of a basic block within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the program's block table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A straight-line sequence of instructions with a single entry and at most
/// one control-transfer instruction, which must be last.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    name: String,
    insts: Vec<Inst>,
    /// Explicit fall-through successor taken when the final instruction is
    /// not an unconditional transfer. `None` for blocks ending in `Jump`,
    /// `Ret`, or `Halt`.
    fallthrough: Option<BlockId>,
}

impl BasicBlock {
    /// Creates an empty block with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        BasicBlock {
            name: name.into(),
            insts: Vec::new(),
            fallthrough: None,
        }
    }

    /// Diagnostic name (not semantically meaningful).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions of the block.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instructions (callers must preserve the
    /// control-last invariant; re-validate with [`Program::validate`]).
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// The fall-through successor, if any.
    pub fn fallthrough(&self) -> Option<BlockId> {
        self.fallthrough
    }

    /// Sets the fall-through successor.
    pub fn set_fallthrough(&mut self, succ: Option<BlockId>) {
        self.fallthrough = succ;
    }

    /// The final (control) instruction, if the block is non-empty.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last()
    }

    /// Total encoded bytes of the block.
    pub fn byte_size(&self) -> u64 {
        self.insts.iter().map(Inst::encoded_size).sum()
    }

    /// Successor blocks in (taken-target, fall-through) order.
    pub fn successors(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(2);
        if let Some(term) = self.terminator() {
            match term {
                Inst::Jump { target } => {
                    out.push(*target);
                    return out;
                }
                Inst::Halt | Inst::Ret => return out,
                Inst::Call { callee, ret_to } => {
                    // Both edges are real control flow: into the callee, and
                    // back to the return block when the callee's `ret` fires
                    // (the standard CFG treatment of calls — reachability,
                    // liveness, and compaction all need the return edge).
                    out.push(*callee);
                    out.push(*ret_to);
                    return out;
                }
                t if t.is_control() => {
                    if let Some(target) = t.target() {
                        out.push(target);
                    }
                }
                _ => {}
            }
        }
        if let Some(ft) = self.fallthrough {
            out.push(ft);
        }
        out
    }
}

/// Errors detected by [`Program::validate`] / [`ProgramBuilder::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A control-transfer instruction appears before the end of a block.
    ControlNotLast {
        /// Offending block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// A block falls off the end without a fall-through successor or an
    /// unconditional terminator.
    MissingFallthrough(BlockId),
    /// An instruction references a block that does not exist.
    DanglingTarget {
        /// Offending block.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// A register index is outside the architected file.
    InvalidRegister(BlockId),
    /// The entry block was never set.
    NoEntry,
    /// A conditional terminator needs a fall-through successor.
    ConditionalWithoutFallthrough(BlockId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ControlNotLast { block, index } => {
                write!(
                    f,
                    "control instruction not last in {block} at index {index}"
                )
            }
            ValidationError::MissingFallthrough(b) => {
                write!(f, "block {b} has no terminator and no fall-through")
            }
            ValidationError::DanglingTarget { block, target } => {
                write!(f, "block {block} references non-existent {target}")
            }
            ValidationError::InvalidRegister(b) => {
                write!(f, "block {b} uses a register outside the architected file")
            }
            ValidationError::NoEntry => write!(f, "program entry block not set"),
            ValidationError::ConditionalWithoutFallthrough(b) => {
                write!(
                    f,
                    "conditional terminator in {b} lacks a fall-through successor"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Byte layout of a program: block start addresses in layout order.
///
/// The layout is the linear placement the code generator emits; it determines
/// instruction-cache behaviour and static code size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayoutInfo {
    /// Start address of each block, indexed by `BlockId::index()`.
    starts: Vec<u64>,
    /// Address of each instruction: `addrs[block][i]`.
    addrs: Vec<Vec<u64>>,
    /// One past the last code byte.
    end: u64,
}

impl LayoutInfo {
    /// Start address of a block.
    pub fn block_start(&self, b: BlockId) -> u64 {
        self.starts[b.index()]
    }

    /// Address of instruction `i` of block `b`.
    pub fn inst_addr(&self, b: BlockId, i: usize) -> u64 {
        self.addrs[b.index()][i]
    }

    /// Total static code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.end - CODE_BASE
    }
}

/// Base address at which code is laid out.
pub const CODE_BASE: u64 = 0x1000;

/// A complete hidden-ISA program: a table of basic blocks plus an entry
/// point and a linear layout order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    /// Linear code layout order (every block exactly once).
    layout_order: Vec<BlockId>,
}

impl Program {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(BlockId, &BasicBlock)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Accesses a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutably accesses a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Appends a new block (placed at the end of the layout order).
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        self.layout_order.push(id);
        id
    }

    /// The linear layout order.
    pub fn layout_order(&self) -> &[BlockId] {
        &self.layout_order
    }

    /// Replaces the layout order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all block ids.
    pub fn set_layout_order(&mut self, order: Vec<BlockId>) {
        let seen: HashSet<BlockId> = order.iter().copied().collect();
        assert_eq!(
            seen.len(),
            self.blocks.len(),
            "layout order must cover every block once"
        );
        assert_eq!(order.len(), self.blocks.len());
        self.layout_order = order;
    }

    /// Computes the byte layout (block/instruction addresses).
    pub fn layout(&self) -> LayoutInfo {
        let mut starts = vec![0u64; self.blocks.len()];
        let mut addrs = vec![Vec::new(); self.blocks.len()];
        let mut pc = CODE_BASE;
        for &bid in &self.layout_order {
            starts[bid.index()] = pc;
            let block = &self.blocks[bid.index()];
            let mut a = Vec::with_capacity(block.insts().len());
            for inst in block.insts() {
                a.push(pc);
                pc += inst.encoded_size();
            }
            addrs[bid.index()] = a;
        }
        LayoutInfo {
            starts,
            addrs,
            end: pc,
        }
    }

    /// Total static code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.blocks.iter().map(BasicBlock::byte_size).sum()
    }

    /// Total static instruction count.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts().len()).sum()
    }

    /// Checks the structural invariants; see [`ValidationError`].
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (i, block) in self.blocks.iter().enumerate() {
            let bid = BlockId(i as u32);
            let n = block.insts().len();
            for (j, inst) in block.insts().iter().enumerate() {
                if inst.is_control() && j + 1 != n {
                    return Err(ValidationError::ControlNotLast {
                        block: bid,
                        index: j,
                    });
                }
                if let Some(t) = inst.target() {
                    if t.index() >= self.blocks.len() {
                        return Err(ValidationError::DanglingTarget {
                            block: bid,
                            target: t,
                        });
                    }
                }
                if let Inst::Call { ret_to, .. } = inst {
                    if ret_to.index() >= self.blocks.len() {
                        return Err(ValidationError::DanglingTarget {
                            block: bid,
                            target: *ret_to,
                        });
                    }
                }
                let reg_ok = inst.dst().is_none_or(|r| r.is_valid())
                    && inst.srcs().iter().all(|r| r.is_valid());
                if !reg_ok {
                    return Err(ValidationError::InvalidRegister(bid));
                }
            }
            if let Some(ft) = block.fallthrough() {
                if ft.index() >= self.blocks.len() {
                    return Err(ValidationError::DanglingTarget {
                        block: bid,
                        target: ft,
                    });
                }
            }
            let needs_ft = match block.terminator() {
                None => true,
                Some(Inst::Jump { .. })
                | Some(Inst::Halt)
                | Some(Inst::Ret)
                | Some(Inst::Call { .. }) => false,
                Some(t) if t.is_control() => {
                    // Conditional forms: Branch / Predict / Resolve.
                    if block.fallthrough().is_none() {
                        return Err(ValidationError::ConditionalWithoutFallthrough(bid));
                    }
                    false
                }
                Some(_) => true,
            };
            if needs_ft && block.fallthrough().is_none() {
                return Err(ValidationError::MissingFallthrough(bid));
            }
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(ValidationError::NoEntry);
        }
        Ok(())
    }

    /// Renders the program as pseudo-assembly, one block per paragraph.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for &bid in &self.layout_order {
            let b = self.block(bid);
            let _ = writeln!(s, "{bid} <{}>:", b.name());
            for inst in b.insts() {
                let _ = writeln!(s, "    {inst}");
            }
            if let Some(ft) = b.fallthrough() {
                let _ = writeln!(s, "    ; fallthrough -> {ft}");
            }
        }
        s
    }
}

/// Incremental builder for [`Program`]s.
///
/// ```
/// use vanguard_isa::{ProgramBuilder, Inst};
/// let mut b = ProgramBuilder::new();
/// let entry = b.block("entry");
/// b.push(entry, Inst::Halt);
/// b.set_entry(entry);
/// let p = b.finish().unwrap();
/// assert_eq!(p.entry(), entry);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
    entry: Option<BlockId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new, empty block and returns its id.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(name));
        id
    }

    /// Appends an instruction to a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` was not created by this builder.
    pub fn push(&mut self, b: BlockId, inst: Inst) {
        self.blocks[b.index()].insts_mut().push(inst);
    }

    /// Appends several instructions to a block.
    pub fn push_all(&mut self, b: BlockId, insts: impl IntoIterator<Item = Inst>) {
        self.blocks[b.index()].insts_mut().extend(insts);
    }

    /// Sets a block's fall-through successor.
    pub fn fallthrough(&mut self, b: BlockId, succ: BlockId) {
        self.blocks[b.index()].set_fallthrough(Some(succ));
    }

    /// Sets the program entry block.
    pub fn set_entry(&mut self, b: BlockId) {
        self.entry = Some(b);
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found.
    pub fn finish(self) -> Result<Program, ValidationError> {
        let entry = self.entry.ok_or(ValidationError::NoEntry)?;
        let layout_order = (0..self.blocks.len() as u32).map(BlockId).collect();
        let p = Program {
            blocks: self.blocks,
            entry,
            layout_order,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Static per-branch-site summary used for code-size reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticSummary {
    /// Counts of each mnemonic.
    pub mnemonics: BTreeMap<&'static str, usize>,
    /// Static bytes.
    pub bytes: u64,
    /// Static instruction count.
    pub insts: usize,
}

impl Program {
    /// Computes a static instruction-mix summary.
    pub fn static_summary(&self) -> StaticSummary {
        let mut s = StaticSummary::default();
        for (_, b) in self.iter() {
            for inst in b.insts() {
                *s.mnemonics.entry(inst.mnemonic()).or_insert(0) += 1;
                s.bytes += inst.encoded_size();
                s.insts += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, CondKind, Operand};
    use crate::reg::Reg;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let x = b.block("exit");
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(0), Operand::Imm(1)),
        );
        b.fallthrough(e, x);
        b.push(x, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = two_block_program();
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_insts(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn control_must_be_last() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::Halt);
        b.push(e, Inst::Nop);
        b.set_entry(e);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidationError::ControlNotLast {
                block: BlockId(0),
                index: 0
            }
        );
    }

    #[test]
    fn missing_fallthrough_detected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::Nop);
        b.set_entry(e);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidationError::MissingFallthrough(BlockId(0))
        );
    }

    #[test]
    fn conditional_requires_fallthrough() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let t = b.block("t");
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(0),
                target: t,
            },
        );
        b.push(t, Inst::Halt);
        b.set_entry(e);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidationError::ConditionalWithoutFallthrough(BlockId(0))
        );
    }

    #[test]
    fn dangling_target_detected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::Jump { target: BlockId(9) });
        b.set_entry(e);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidationError::DanglingTarget { .. }
        ));
    }

    #[test]
    fn invalid_register_detected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(200), Operand::Imm(0), Operand::Imm(0)),
        );
        b.push(e, Inst::Halt);
        b.set_entry(e);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidationError::InvalidRegister(BlockId(0))
        );
    }

    #[test]
    fn layout_addresses_are_contiguous() {
        let p = two_block_program();
        let l = p.layout();
        assert_eq!(l.block_start(BlockId(0)), CODE_BASE);
        assert_eq!(l.inst_addr(BlockId(0), 0), CODE_BASE);
        // First inst is a short ALU op (4 bytes), so bb1 starts right after.
        assert_eq!(l.block_start(BlockId(1)), CODE_BASE + 4);
        assert_eq!(l.code_bytes(), p.code_bytes());
    }

    #[test]
    fn successors_of_conditional_branch() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let t = b.block("taken");
        let f = b.block("fall");
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(0),
                target: t,
            },
        );
        b.fallthrough(e, f);
        b.push(t, Inst::Halt);
        b.push(f, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        assert_eq!(p.block(e).successors(), vec![t, f]);
        assert!(p.block(t).successors().is_empty());
    }

    #[test]
    fn set_layout_order_changes_addresses() {
        let mut p = two_block_program();
        p.set_layout_order(vec![BlockId(1), BlockId(0)]);
        let l = p.layout();
        assert_eq!(l.block_start(BlockId(1)), CODE_BASE);
        assert!(l.block_start(BlockId(0)) > CODE_BASE);
    }

    #[test]
    #[should_panic(expected = "layout order must cover every block")]
    fn bad_layout_order_panics() {
        let mut p = two_block_program();
        p.set_layout_order(vec![BlockId(0), BlockId(0)]);
    }

    #[test]
    fn disassembly_contains_names_and_mnemonics() {
        let p = two_block_program();
        let d = p.disassemble();
        assert!(d.contains("<entry>"));
        assert!(d.contains("add r1"));
        assert!(d.contains("halt"));
    }

    #[test]
    fn static_summary_counts() {
        let p = two_block_program();
        let s = p.static_summary();
        assert_eq!(s.insts, 2);
        assert_eq!(s.mnemonics["add"], 1);
        assert_eq!(s.mnemonics["halt"], 1);
    }
}

//! A text assembler for the hidden ISA.
//!
//! Parses the same syntax [`Program::disassemble`] emits, so programs can
//! be written, diffed, and round-tripped as text:
//!
//! ```text
//! .entry bb0
//! bb0 <entry>:
//!     mov r1, #10
//!     ld r4, [r3+0]
//!     cmp.ne r5, r4, #0
//!     br.nz r5, bb2
//!     ; fallthrough -> bb1
//! bb1 <exit>:
//!     halt
//! bb2 <taken>:
//!     halt
//! ```
//!
//! Block ids (`bbN`) are honoured verbatim; blocks may appear in any
//! order, and the textual order becomes the code layout order. The
//! `.entry` directive is optional (defaults to the first block).

use crate::inst::{AluOp, CmpKind, CondKind, FpOp, Inst, Operand};
use crate::program::{BasicBlock, BlockId, Program, ProgramBuilder};
use crate::reg::Reg;
use std::fmt;

/// Assembly parsing errors, with 1-based line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let Some(num) = tok.strip_prefix('r') else {
        return Err(err(line, format!("expected register, got `{tok}`")));
    };
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    let r = Reg(n);
    if !r.is_valid() {
        return Err(err(line, format!("register out of range `{tok}`")));
    }
    Ok(r)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let Some(num) = tok.strip_prefix('#') else {
        return Err(err(line, format!("expected immediate, got `{tok}`")));
    };
    num.parse()
        .map_err(|_| err(line, format!("bad immediate `{tok}`")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    if t.starts_with('#') {
        Ok(Operand::Imm(parse_imm(t, line)?))
    } else {
        Ok(Operand::Reg(parse_reg(t, line)?))
    }
}

fn parse_block_ref(tok: &str, line: usize) -> Result<BlockId, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let Some(num) = t.strip_prefix("bb") else {
        return Err(err(line, format!("expected block ref, got `{t}`")));
    };
    let n: u32 = num
        .parse()
        .map_err(|_| err(line, format!("bad block ref `{t}`")))?;
    Ok(BlockId(n))
}

/// Parses `[rB+OFF]` into `(base, offset)`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand, got `{t}`")))?;
    // Split at the sign of the offset: `r3+8` or `r3+-8`.
    let plus = inner
        .find('+')
        .ok_or_else(|| err(line, format!("expected base+offset in `{t}`")))?;
    let base = parse_reg(&inner[..plus], line)?;
    let off: i64 = inner[plus + 1..]
        .parse()
        .map_err(|_| err(line, format!("bad offset in `{t}`")))?;
    Ok((base, off))
}

fn split_operands(rest: &str) -> Vec<&str> {
    // Memory operands contain no commas, so a plain comma split works.
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_inst(mnemonic: &str, rest: &str, line: usize) -> Result<Inst, ParseError> {
    let ops = split_operands(rest);
    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
            ))
        }
    };
    let alu = |op: AluOp, ops: &[&str]| -> Result<Inst, ParseError> {
        Ok(Inst::Alu {
            op,
            dst: parse_reg(ops[0], line)?,
            a: parse_operand(ops[1], line)?,
            b: parse_operand(ops[2], line)?,
        })
    };
    let fp = |op: FpOp, ops: &[&str]| -> Result<Inst, ParseError> {
        Ok(Inst::Fp {
            op,
            dst: parse_reg(ops[0], line)?,
            a: parse_reg(ops[1], line)?,
            b: parse_reg(ops[2], line)?,
        })
    };
    let cmp = |kind: CmpKind, ops: &[&str]| -> Result<Inst, ParseError> {
        Ok(Inst::Cmp {
            kind,
            dst: parse_reg(ops[0], line)?,
            a: parse_reg(ops[1], line)?,
            b: parse_operand(ops[2], line)?,
        })
    };
    match mnemonic {
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "mul" | "div" => {
            need(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "shl" => AluOp::Shl,
                "shr" => AluOp::Shr,
                "mul" => AluOp::Mul,
                _ => AluOp::Div,
            };
            alu(op, &ops)
        }
        "mov" => {
            need(2)?;
            Ok(Inst::mov(
                parse_reg(ops[0], line)?,
                parse_operand(ops[1], line)?,
            ))
        }
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            need(3)?;
            let op = match mnemonic {
                "fadd" => FpOp::Add,
                "fsub" => FpOp::Sub,
                "fmul" => FpOp::Mul,
                _ => FpOp::Div,
            };
            fp(op, &ops)
        }
        "ld" | "ld.s" => {
            need(2)?;
            let dst = parse_reg(ops[0], line)?;
            let (base, offset) = parse_mem(ops[1], line)?;
            Ok(Inst::Load {
                dst,
                base,
                offset,
                speculative: mnemonic == "ld.s",
            })
        }
        "st" => {
            need(2)?;
            let (base, offset) = parse_mem(ops[0], line)?;
            let src = parse_reg(ops[1], line)?;
            Ok(Inst::Store { src, base, offset })
        }
        m if m.starts_with("cmp.") => {
            need(3)?;
            let kind = match &m[4..] {
                "eq" => CmpKind::Eq,
                "ne" => CmpKind::Ne,
                "lt" => CmpKind::Lt,
                "le" => CmpKind::Le,
                "gt" => CmpKind::Gt,
                "ge" => CmpKind::Ge,
                "ult" => CmpKind::Ult,
                "uge" => CmpKind::Uge,
                other => return Err(err(line, format!("unknown compare `{other}`"))),
            };
            cmp(kind, &ops)
        }
        "br.nz" | "br.z" | "resolve.nz" | "resolve.z" => {
            need(2)?;
            let cond = if mnemonic.ends_with(".nz") {
                CondKind::Nz
            } else {
                CondKind::Z
            };
            let src = parse_reg(ops[0], line)?;
            let target = parse_block_ref(ops[1], line)?;
            if mnemonic.starts_with("br") {
                Ok(Inst::Branch { cond, src, target })
            } else {
                Ok(Inst::Resolve { cond, src, target })
            }
        }
        "jmp" => {
            need(1)?;
            Ok(Inst::Jump {
                target: parse_block_ref(ops[0], line)?,
            })
        }
        "predict" => {
            need(1)?;
            Ok(Inst::Predict {
                target: parse_block_ref(ops[0], line)?,
            })
        }
        "call" => {
            // `call bbN ret=bbM`
            need(1)?;
            let mut parts = ops[0].split_whitespace();
            let callee = parse_block_ref(
                parts
                    .next()
                    .ok_or_else(|| err(line, "call needs a callee"))?,
                line,
            )?;
            let ret = parts
                .next()
                .and_then(|p| p.strip_prefix("ret="))
                .ok_or_else(|| err(line, "call needs `ret=bbN`"))?;
            Ok(Inst::Call {
                callee,
                ret_to: parse_block_ref(ret, line)?,
            })
        }
        "ret" => {
            need(0)?;
            Ok(Inst::Ret)
        }
        "nop" => {
            need(0)?;
            Ok(Inst::Nop)
        }
        "halt" => {
            need(0)?;
            Ok(Inst::Halt)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for syntax errors, and a
/// `ParseError` wrapping the validation message when the parsed program
/// violates structural invariants.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    struct PendingBlock {
        name: String,
        insts: Vec<Inst>,
        fallthrough: Option<BlockId>,
        declared_line: usize,
    }
    let mut blocks: Vec<Option<PendingBlock>> = Vec::new();
    let mut order: Vec<BlockId> = Vec::new();
    let mut entry: Option<BlockId> = None;
    let mut current: Option<usize> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            entry = Some(parse_block_ref(rest.trim(), lineno)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix("; fallthrough ->") {
            let cur = current.ok_or_else(|| err(lineno, "fallthrough outside a block"))?;
            let target = parse_block_ref(rest.trim(), lineno)?;
            blocks[cur].as_mut().expect("current exists").fallthrough = Some(target);
            continue;
        }
        if line.starts_with(';') {
            continue; // comment
        }
        if let Some(header) = line.strip_suffix(':') {
            // `bbN <name>` or `bbN`
            let mut parts = header.split_whitespace();
            let id = parse_block_ref(
                parts
                    .next()
                    .ok_or_else(|| err(lineno, "empty block header"))?,
                lineno,
            )?;
            let name = parts
                .next()
                .map(|n| n.trim_start_matches('<').trim_end_matches('>').to_string())
                .unwrap_or_else(|| format!("bb{}", id.0));
            if blocks.len() <= id.index() {
                blocks.resize_with(id.index() + 1, || None);
            }
            if blocks[id.index()].is_some() {
                return Err(err(lineno, format!("duplicate block {id}")));
            }
            blocks[id.index()] = Some(PendingBlock {
                name,
                insts: Vec::new(),
                fallthrough: None,
                declared_line: lineno,
            });
            order.push(id);
            current = Some(id.index());
            continue;
        }
        // An instruction line.
        let cur = current.ok_or_else(|| err(lineno, "instruction outside a block"))?;
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(sp) => (&line[..sp], &line[sp..]),
            None => (line, ""),
        };
        let inst = parse_inst(mnemonic, rest, lineno)?;
        blocks[cur]
            .as_mut()
            .expect("current exists")
            .insts
            .push(inst);
    }

    // Materialise: every declared id becomes a block; holes are errors.
    let mut builder = ProgramBuilder::new();
    let mut pendings = Vec::with_capacity(blocks.len());
    for (i, b) in blocks.iter().enumerate() {
        let Some(pb) = b else {
            return Err(err(
                0,
                format!("bb{i} referenced by numbering but never defined"),
            ));
        };
        let id = builder.block(pb.name.clone());
        debug_assert_eq!(id.index(), i);
        pendings.push((id, pb));
    }
    for (id, pb) in &pendings {
        for inst in &pb.insts {
            builder.push(*id, *inst);
        }
        if let Some(ft) = pb.fallthrough {
            if ft.index() >= pendings.len() {
                return Err(err(
                    pb.declared_line,
                    format!("fallthrough to undefined {ft}"),
                ));
            }
            builder.fallthrough(*id, ft);
        }
    }
    let entry = entry.unwrap_or(BlockId(0));
    builder.set_entry(entry);
    let mut program = builder
        .finish()
        .map_err(|e| err(0, format!("invalid program: {e}")))?;
    program.set_layout_order(order);
    Ok(program)
}

/// Renders a single block as assembly (the same format
/// [`Program::disassemble`] uses).
pub fn format_block(id: BlockId, block: &BasicBlock) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{id} <{}>:", block.name());
    for inst in block.insts() {
        let _ = writeln!(s, "    {inst}");
    }
    if let Some(ft) = block.fallthrough() {
        let _ = writeln!(s, "    ; fallthrough -> {ft}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, TakenOracle};
    use crate::memory::Memory;

    const KERNEL: &str = r"
.entry bb0
bb0 <entry>:
    mov r1, #5
    mov r3, #4096
    ; fallthrough -> bb1
bb1 <head>:
    ld r4, [r3+0]
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    add r6, r6, #1
    jmp bb4
bb3 <taken>:
    add r7, r7, #1
    ; fallthrough -> bb4
bb4 <latch>:
    add r3, r3, #8
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    st [r3+0], r6
    halt
";

    #[test]
    fn parses_and_executes_a_kernel() {
        let p = parse_program(KERNEL).expect("parses");
        assert_eq!(p.num_blocks(), 6);
        let mut mem = Memory::new();
        mem.load_words(4096, &[1, 0, 1, 1, 0]);
        let mut i = Interpreter::new(&p, mem);
        i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(i.reg(Reg(7)), 3); // taken count
        assert_eq!(i.reg(Reg(6)), 2); // fall count
    }

    #[test]
    fn disassemble_parse_is_a_textual_fixpoint() {
        let p = parse_program(KERNEL).expect("parses");
        let text1 = p.disassemble();
        let p2 = parse_program(&text1).expect("reparses");
        assert_eq!(text1, p2.disassemble());
        assert_eq!(p, p2);
    }

    #[test]
    fn parses_decomposed_branch_mnemonics() {
        let text = r"
bb0 <a>:
    predict bb2
    ; fallthrough -> bb1
bb1 <nt>:
    cmp.eq r2, r1, #0
    resolve.z r2, bb3
    ; fallthrough -> bb3
bb2 <t>:
    halt
bb3 <x>:
    halt
";
        let p = parse_program(text).expect("parses");
        let s = p.static_summary();
        assert_eq!(s.mnemonics["predict"], 1);
        assert_eq!(s.mnemonics["resolve.z"], 1);
    }

    #[test]
    fn parses_loads_stores_and_speculative_form() {
        let text = r"
bb0 <e>:
    ld.s r1, [r2+-16]
    st [r2+8], r1
    halt
";
        let p = parse_program(text).expect("parses");
        assert!(matches!(
            p.block(BlockId(0)).insts()[0],
            Inst::Load {
                speculative: true,
                offset: -16,
                ..
            }
        ));
    }

    #[test]
    fn parses_call_ret() {
        let text = r"
bb0 <e>:
    call bb1 ret=bb2
bb1 <f>:
    mov r1, #9
    ret
bb2 <x>:
    halt
";
        let p = parse_program(text).expect("parses");
        let mut i = Interpreter::new(&p, Memory::new());
        i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(i.reg(Reg(1)), 9);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_program("bb0 <x>:\n    frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn instruction_outside_block_is_an_error() {
        let e = parse_program("    nop\n").unwrap_err();
        assert!(e.message.contains("outside a block"));
    }

    #[test]
    fn duplicate_block_is_an_error() {
        let e = parse_program("bb0 <a>:\n    halt\nbb0 <b>:\n    halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_block_hole_is_an_error() {
        let e = parse_program("bb1 <a>:\n    halt\n").unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn invalid_structure_is_reported() {
        // Block with no terminator and no fall-through.
        let e = parse_program("bb0 <a>:\n    nop\n").unwrap_err();
        assert!(e.message.contains("invalid program"), "{e}");
    }
}

//! Seeded random-program generation for differential fuzzing of the
//! Decomposed Branch Transformation.
//!
//! [`FuzzSpec::from_seed`] derives a small structured kernel — loop,
//! 1–3 predictable-but-unbiased branch sites, two successor sides per
//! site built from a *shared slot plan* (same instruction-kind and
//! destination sequence on both sides, so a clean transform exists),
//! per-side operand/offset variation, optional stores and writes to
//! loop-persistent registers for clobber pressure — entirely from one
//! `u64`. Same seed ⇒ byte-identical program and memory image.
//!
//! The spec's knobs are public so a shrinker can reduce a failing case
//! (fewer sites, shorter sides, fewer iterations) while [`FuzzSpec::build`]
//! stays deterministic in `seed` for everything the knobs don't fix.

use crate::model::OutcomeModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vanguard_isa::{
    AluOp, BlockId, CmpKind, CondKind, Inst, Memory, Operand, Program, ProgramBuilder, Reg,
};

/// Condition entries per site (stream wrap period).
const COND_ENTRIES: usize = 512;
const COND_SITE_BYTES: i64 = (COND_ENTRIES as i64) * 8;
const COND_BASE: i64 = 0x10_0000;
const DATA_BASE: i64 = 0x40_0000;
const OUT_BASE: i64 = 0x90_0000;
/// Data working set (power of two; offsets stay inside footprint+slack).
const DATA_FOOTPRINT: i64 = 8192;
const DATA_SLACK: i64 = 2048;

// Register map: r1 counter, r2 latch flag, r3 cond ptr, r4 cond value,
// r5 branch flag, r6/r7 condition-chain temps, r10 data ptr, r11 out
// ptr, r18 cond index, r19 exit pointer, r20.. persistent accumulators,
// r40.. per-slot temporaries.
const R_COUNT: Reg = Reg(1);
const R_LFLAG: Reg = Reg(2);
const R_CONDP: Reg = Reg(3);
const R_CVAL: Reg = Reg(4);
const R_SFLAG: Reg = Reg(5);
const R_DATAP: Reg = Reg(10);
const R_OUTP: Reg = Reg(11);
const R_CIDX: Reg = Reg(18);
const R_EXITP: Reg = Reg(19);
const R_PERSIST0: u8 = 20;
const R_SLOT0: u8 = 40;

/// Structural parameters of one random kernel, all derivable from
/// [`FuzzSpec::from_seed`] and individually reducible by a shrinker.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzSpec {
    /// Master seed: fixes every choice the other knobs leave open.
    pub seed: u64,
    /// Branch sites per loop iteration (1–3).
    pub sites: usize,
    /// Slots in each successor side's shared plan (1–6).
    pub side_insts: usize,
    /// Store slots forced into each side's plan (≤ 2, ≤ `side_insts`).
    pub stores_per_side: usize,
    /// Loop-persistent accumulator registers sides may write (1–5) —
    /// live-in clobber pressure on the transform.
    pub persistent: usize,
    /// Loop iterations (also the profile length).
    pub iterations: u64,
    /// Deepen the condition slice with extra ALU links.
    pub cond_chain: bool,
    /// Transform knob to exercise: shadow temporaries.
    pub shadow_temps: bool,
    /// Transform knob to exercise: non-faulting load hoisting.
    pub hoist_loads: bool,
    /// Transform knob to exercise: hoist budget.
    pub max_hoist: usize,
}

/// A generated case: the kernel plus its memory image and entry registers.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The generating spec.
    pub spec: FuzzSpec,
    /// The kernel program.
    pub program: Program,
    /// Initial data memory (condition streams, data array, output region).
    pub memory: Memory,
    /// Initial registers (`r1` = iteration count).
    pub init_regs: Vec<(Reg, u64)>,
    /// Byte range of the output region every observable store lands in
    /// (half-open) — the memory a differential harness should compare.
    pub out_range: (u64, u64),
}

/// One slot of the shared per-side plan. Both sides emit the same kind
/// and destination sequence; operands and offsets vary per side.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Slot {
    /// Load from the data array into the slot temporary.
    Load,
    /// ALU op into the slot temporary.
    Alu,
    /// ALU accumulation into a persistent register (index).
    Persist(u8),
    /// Store an available value to the output region.
    Store,
}

impl FuzzSpec {
    /// Derives a full spec from a seed: every knob is drawn from the
    /// seed's RNG stream, so the case population varies in shape.
    pub fn from_seed(seed: u64) -> Self {
        // Knobs come from a separate RNG stream than build(): shrinking a
        // knob must not reshuffle the program the remaining knobs imply.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        FuzzSpec {
            seed,
            sites: rng.gen_range(1..4),
            side_insts: rng.gen_range(1..7),
            stores_per_side: rng.gen_range(0..3),
            persistent: rng.gen_range(1..6),
            iterations: rng.gen_range(40..151),
            cond_chain: rng.gen_bool(0.4),
            shadow_temps: rng.gen_bool(0.35),
            hoist_loads: rng.gen_bool(0.8),
            max_hoist: rng.gen_range(4..17),
        }
    }

    /// Builds the program and input. Deterministic: the same spec always
    /// produces a byte-identical program and memory image.
    pub fn build(&self) -> FuzzCase {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let stores = self.stores_per_side.min(self.side_insts).min(2);
        let sites = self.sites.clamp(1, 3);
        let side_insts = self.side_insts.clamp(1, 6);
        let persistent = self.persistent.clamp(1, 5);

        let program = self.build_program(&mut rng, sites, side_insts, stores, persistent);
        debug_assert!(program.validate().is_ok());
        let memory = self.build_memory(&mut rng, sites);
        FuzzCase {
            spec: self.clone(),
            program,
            memory,
            init_regs: vec![(R_COUNT, self.iterations)],
            out_range: (OUT_BASE as u64, OUT_BASE as u64 + 0x2000),
        }
    }

    fn build_program(
        &self,
        rng: &mut StdRng,
        sites: usize,
        side_insts: usize,
        stores: usize,
        persistent: usize,
    ) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        // Blocks in layout order so branch targets are forward.
        let mut parts = Vec::with_capacity(sites);
        let mut heads = Vec::with_capacity(sites);
        for s in 0..sites {
            let head = b.block(format!("head{s}"));
            let fall = b.block(format!("fall{s}"));
            let taken = b.block(format!("taken{s}"));
            let join = b.block(format!("join{s}"));
            heads.push(head);
            parts.push((head, fall, taken, join));
        }
        let latch = b.block("latch");
        let exit = b.block("exit");

        // entry: pointers and persistent accumulators.
        b.push(entry, Inst::mov(R_CONDP, Operand::Imm(COND_BASE)));
        b.push(entry, Inst::mov(R_DATAP, Operand::Imm(DATA_BASE)));
        b.push(entry, Inst::mov(R_OUTP, Operand::Imm(OUT_BASE)));
        b.push(entry, Inst::mov(R_CIDX, Operand::Imm(0)));
        for p in 0..persistent {
            b.push(
                entry,
                Inst::mov(
                    Reg(R_PERSIST0 + p as u8),
                    Operand::Imm(rng.gen_range(0..256)),
                ),
            );
        }
        b.fallthrough(entry, heads[0]);

        for (s, &(head, fall, taken, join)) in parts.iter().enumerate() {
            self.emit_head(rng, &mut b, head, s, taken, fall);
            // Shared slot plan: same kinds + dsts both sides, so the two
            // sides have equal def-sets and a clean decomposition exists.
            let plan = make_plan(rng, side_insts, stores, persistent);
            for (side, block) in [(0i64, fall), (1i64, taken)] {
                self.emit_side(rng, &mut b, block, &plan, s, side, persistent, join);
            }
            let next = if s + 1 < sites { heads[s + 1] } else { latch };
            b.fallthrough(join, next);
        }

        // latch: advance wrapped condition/data pointers, loop.
        let data_stride = rng.gen_range(1i64..65) * 8;
        b.push(
            latch,
            Inst::alu(AluOp::Add, R_CIDX, Operand::Reg(R_CIDX), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::And,
                R_CIDX,
                Operand::Reg(R_CIDX),
                Operand::Imm(COND_SITE_BYTES - 1),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_CONDP,
                Operand::Reg(R_CIDX),
                Operand::Imm(COND_BASE),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_DATAP,
                Operand::Reg(R_DATAP),
                Operand::Imm(data_stride),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::And,
                R_DATAP,
                Operand::Reg(R_DATAP),
                Operand::Imm(DATA_FOOTPRINT - 1),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_DATAP,
                Operand::Reg(R_DATAP),
                Operand::Imm(DATA_BASE),
            ),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, R_COUNT, Operand::Reg(R_COUNT), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: R_LFLAG,
                a: R_COUNT,
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: R_LFLAG,
                target: heads[0],
            },
        );
        b.fallthrough(latch, exit);

        // exit: materialise every persistent accumulator.
        b.push(exit, Inst::mov(R_EXITP, Operand::Imm(OUT_BASE + 0x1800)));
        for p in 0..persistent {
            b.push(
                exit,
                Inst::store(Reg(R_PERSIST0 + p as u8), R_EXITP, (p as i64) * 8),
            );
        }
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().expect("generated program is structurally valid")
    }

    /// head: condition load (+ optional 0/1-preserving chain), compare,
    /// forward branch. The chain ops keep the loaded 0/1 value's truth
    /// intact (possibly inverted), so the site's direction stream follows
    /// its model up to inversion.
    fn emit_head(
        &self,
        rng: &mut StdRng,
        b: &mut ProgramBuilder,
        head: BlockId,
        site: usize,
        taken: BlockId,
        fall: BlockId,
    ) {
        let site_off = (site as i64) * COND_SITE_BYTES;
        b.push(head, Inst::load(R_CVAL, R_CONDP, site_off));
        let mut val = R_CVAL;
        if self.cond_chain {
            for (i, tmp) in [Reg(6), Reg(7)]
                .iter()
                .enumerate()
                .take(rng.gen_range(1..3))
            {
                let (op, imm) = match rng.gen_range(0..4) {
                    0 => (AluOp::Xor, 1),
                    1 => (AluOp::And, 1),
                    2 => (AluOp::Or, 0),
                    _ => (AluOp::Add, 0),
                };
                let _ = i;
                b.push(
                    head,
                    Inst::alu(op, *tmp, Operand::Reg(val), Operand::Imm(imm)),
                );
                val = *tmp;
            }
        }
        let kind = if rng.gen_bool(0.5) {
            CmpKind::Ne
        } else {
            CmpKind::Eq
        };
        b.push(
            head,
            Inst::Cmp {
                kind,
                dst: R_SFLAG,
                a: val,
                b: Operand::Imm(0),
            },
        );
        let cond = if rng.gen_bool(0.5) {
            CondKind::Nz
        } else {
            CondKind::Z
        };
        b.push(
            head,
            Inst::Branch {
                cond,
                src: R_SFLAG,
                target: taken,
            },
        );
        b.fallthrough(head, fall);
    }

    /// One successor side from the shared plan: same dst sequence as the
    /// other side, per-side operands and offsets.
    #[allow(clippy::too_many_arguments)]
    fn emit_side(
        &self,
        rng: &mut StdRng,
        b: &mut ProgramBuilder,
        block: BlockId,
        plan: &[Slot],
        site: usize,
        side: i64,
        persistent: usize,
        join: BlockId,
    ) {
        // Values a slot may read: the condition value, persistent
        // accumulators, and earlier slot temporaries.
        let mut avail: Vec<Reg> = vec![R_CVAL];
        avail.extend((0..persistent).map(|p| Reg(R_PERSIST0 + p as u8)));
        let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];
        for (i, slot) in plan.iter().enumerate() {
            let dst = Reg(R_SLOT0 + i as u8);
            match slot {
                Slot::Load => {
                    let off = rng.gen_range(0..DATA_SLACK / 8) * 8;
                    b.push(block, Inst::load(dst, R_DATAP, off));
                    avail.push(dst);
                }
                Slot::Alu => {
                    let op = ops[rng.gen_range(0..ops.len())];
                    let a = avail[rng.gen_range(0..avail.len())];
                    let src_b = if rng.gen_bool(0.5) {
                        Operand::Reg(avail[rng.gen_range(0..avail.len())])
                    } else {
                        Operand::Imm(rng.gen_range(0..64))
                    };
                    b.push(block, Inst::alu(op, dst, Operand::Reg(a), src_b));
                    avail.push(dst);
                }
                Slot::Persist(p) => {
                    let preg = Reg(R_PERSIST0 + p);
                    let op = ops[rng.gen_range(0..ops.len())];
                    let src = avail[rng.gen_range(0..avail.len())];
                    b.push(
                        block,
                        Inst::alu(op, preg, Operand::Reg(preg), Operand::Reg(src)),
                    );
                }
                Slot::Store => {
                    let src = avail[rng.gen_range(0..avail.len())];
                    // Disjoint per site/slot/side: divergence in either
                    // side's stores is visible in final written words.
                    let off = (site as i64) * 256 + (i as i64) * 16 + side * 8;
                    b.push(block, Inst::store(src, R_OUTP, off));
                }
            }
        }
        b.push(block, Inst::Jump { target: join });
    }

    fn build_memory(&self, rng: &mut StdRng, sites: usize) -> Memory {
        let mut memory = Memory::new();
        for s in 0..sites {
            let model = pick_model(rng);
            let stream = model.generate(COND_ENTRIES, rng);
            let words: Vec<u64> = stream.into_iter().map(u64::from).collect();
            memory.load_words(
                COND_BASE as u64 + (s as u64) * COND_SITE_BYTES as u64,
                &words,
            );
        }
        let data_words = ((DATA_FOOTPRINT + DATA_SLACK) / 8) as u64;
        let data: Vec<u64> = (0..data_words).map(|_| rng.gen::<u64>()).collect();
        memory.load_words(DATA_BASE as u64, &data);
        memory.map_region(OUT_BASE as u64, 0x2000);
        memory
    }
}

/// Weighted site-model choice: mostly the paper's motivating
/// predictable-but-unbiased population, so the selector usually fires.
fn pick_model(rng: &mut StdRng) -> OutcomeModel {
    match rng.gen_range(0..10) {
        0..=6 => {
            let bias = frange(rng, 0.50, 0.70);
            let pred = frange(rng, 0.90, 0.99).max(bias);
            OutcomeModel::markov(bias, pred)
        }
        7 | 8 => {
            let len = rng.gen_range(4usize..13);
            let pattern: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
            if pattern.iter().all(|&x| x) || pattern.iter().all(|&x| !x) {
                OutcomeModel::loop_trip(len.max(2))
            } else {
                OutcomeModel::Periodic { pattern }
            }
        }
        _ => OutcomeModel::Random {
            taken_prob: frange(rng, 0.2, 0.8),
        },
    }
}

/// Uniform `f64` in `[lo, hi)` (the vendored rand has no float ranges).
fn frange(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.gen_range(0u64..1 << 53) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * unit
}

/// Builds the shared slot plan: `stores` Store slots at random positions,
/// the rest a random mix of loads, ALU, and persistent accumulation.
fn make_plan(rng: &mut StdRng, side_insts: usize, stores: usize, persistent: usize) -> Vec<Slot> {
    let mut plan: Vec<Slot> = (0..side_insts)
        .map(|_| match rng.gen_range(0..10) {
            0..=4 => Slot::Load,
            5..=7 => Slot::Alu,
            _ => Slot::Persist(rng.gen_range(0..persistent) as u8),
        })
        .collect();
    for _ in 0..stores.min(side_insts) {
        let at = rng.gen_range(0..plan.len());
        plan[at] = Slot::Store;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{Interpreter, StopReason, TakenOracle};

    #[test]
    fn same_seed_is_byte_identical() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = FuzzSpec::from_seed(seed).build();
            let b = FuzzSpec::from_seed(seed).build();
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.program, b.program);
            assert_eq!(a.program.disassemble(), b.program.disassemble());
            assert_eq!(a.init_regs, b.init_regs);
            let window = |m: &Memory| {
                (0..256)
                    .map(|k| m.read(COND_BASE as u64 + k * 8))
                    .chain((0..256).map(|k| m.read(DATA_BASE as u64 + k * 8)))
                    .collect::<Vec<_>>()
            };
            assert_eq!(window(&a.memory), window(&b.memory));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FuzzSpec::from_seed(7).build();
        let b = FuzzSpec::from_seed(8).build();
        assert!(a.spec != b.spec || a.program != b.program);
    }

    #[test]
    fn generated_cases_run_to_halt() {
        for seed in 0..25u64 {
            let case = FuzzSpec::from_seed(seed).build();
            assert!(case.program.validate().is_ok(), "seed {seed}");
            let mut i = Interpreter::new(&case.program, case.memory.clone());
            for &(r, v) in &case.init_regs {
                i.set_reg(r, v);
            }
            let out = i
                .run(&mut TakenOracle::AlwaysTaken)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_eq!(out.stop, StopReason::Halted, "seed {seed}");
            assert!(out.record.branches > 0, "seed {seed} has no branches");
        }
    }

    #[test]
    fn shrunk_knobs_still_build() {
        let mut spec = FuzzSpec::from_seed(3);
        spec.sites = 1;
        spec.side_insts = 1;
        spec.stores_per_side = 0;
        spec.persistent = 1;
        spec.iterations = 4;
        let case = spec.build();
        assert!(case.program.validate().is_ok());
    }
}

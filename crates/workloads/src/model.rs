//! Branch-outcome models with independently controllable bias and
//! predictability.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of branch-direction streams.
///
/// The paper's motivating population is branches whose *predictability
/// significantly exceeds their bias* (Figures 2/3). [`OutcomeModel::markov`]
/// produces exactly that: directions are locally sticky (run/phase
/// behaviour a real predictor learns) while the long-run taken-rate is
/// unbiased. Calibration: a two-state Markov chain with stationary
/// taken-rate `T` and flip rate `f` gives a last-direction-style predictor
/// accuracy ≈ `1 − α·f` (α ≈ 1.25 for 2-bit-counter re-saturation), so we
/// set `f = (1 − predictability)/α`.
#[derive(Clone, Debug, PartialEq)]
pub enum OutcomeModel {
    /// Two-state Markov chain: `bias` = stationary frequency of the
    /// majority direction, `predictability` = target predictor accuracy.
    Markov {
        /// Majority-direction frequency in `[0.5, 1)`.
        bias: f64,
        /// Target predictor accuracy in `(0.5, 1]`.
        predictability: f64,
    },
    /// A fixed repeating pattern (fully predictable given enough history).
    Periodic {
        /// The repeating direction pattern (non-empty).
        pattern: Vec<bool>,
    },
    /// Independent biased coin flips (predictability ≈ bias: the
    /// unpredictable population, predication territory).
    Random {
        /// Taken probability.
        taken_prob: f64,
    },
    /// A period-`2·half_len + 2` pattern of the form `X·0·X·1` where `X`
    /// is a fixed pseudo-random block: every history window shorter than
    /// `half_len` appears twice with *different* successors, so
    /// short-history predictors (bimodal, small gshare) are confused while
    /// long-history predictors (TAGE-class) disambiguate perfectly — the
    /// population that drives the §5.3 sensitivity study.
    AliasedPeriodic {
        /// Length of the repeated block `X` (pattern period is
        /// `2·half_len + 2`).
        half_len: usize,
        /// Seed fixing the block contents (a site's intrinsic behaviour).
        pattern_seed: u64,
    },
}

/// Calibration constant: 2-bit counters lose ≈ 1.25 predictions per
/// direction flip.
const FLIP_PENALTY: f64 = 1.25;

impl OutcomeModel {
    /// A fixed-trip loop branch: taken `trip − 1` times, then not-taken
    /// once. Short-history predictors mispredict the exit (≈ `1/trip`
    /// miss rate); TAGE-class predictors with history ≥ `trip` and loop
    /// predictors capture it exactly — another §5.3 separator.
    pub fn loop_trip(trip: usize) -> Self {
        assert!(trip >= 2, "trip must be at least 2");
        let mut pattern = vec![true; trip - 1];
        pattern.push(false);
        OutcomeModel::Periodic { pattern }
    }

    /// A Markov model with the given majority-direction bias and target
    /// predictability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 <= bias < 1.0` and `bias <= predictability <= 1.0`
    /// (predictability below bias is unachievable for any predictor that
    /// can at least learn the majority direction).
    pub fn markov(bias: f64, predictability: f64) -> Self {
        assert!((0.5..1.0).contains(&bias), "bias out of range: {bias}");
        assert!(
            (bias..=1.0).contains(&predictability),
            "predictability {predictability} must be in [bias={bias}, 1]"
        );
        OutcomeModel::Markov {
            bias,
            predictability,
        }
    }

    /// Generates `n` outcomes with the RNG.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Vec<bool> {
        match self {
            OutcomeModel::Markov {
                bias,
                predictability,
            } => {
                // Majority direction is "taken"; stationary taken-rate T.
                let t = *bias;
                let f = ((1.0 - predictability) / FLIP_PENALTY).min(2.0 * t * (1.0 - t));
                // Transition probabilities for stationary T and flip rate f:
                //   P(N→T) = f / (2(1−T)),  P(T→N) = f / (2T).
                let p_nt = if t < 1.0 { f / (2.0 * (1.0 - t)) } else { 1.0 };
                let p_tn = if t > 0.0 { f / (2.0 * t) } else { 1.0 };
                let mut state = rng.gen_bool(t);
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(state);
                    let flip = if state {
                        rng.gen_bool(p_tn.clamp(0.0, 1.0))
                    } else {
                        rng.gen_bool(p_nt.clamp(0.0, 1.0))
                    };
                    if flip {
                        state = !state;
                    }
                }
                out
            }
            OutcomeModel::Periodic { pattern } => {
                assert!(!pattern.is_empty(), "empty pattern");
                (0..n).map(|i| pattern[i % pattern.len()]).collect()
            }
            OutcomeModel::Random { taken_prob } => {
                (0..n).map(|_| rng.gen_bool(*taken_prob)).collect()
            }
            OutcomeModel::AliasedPeriodic {
                half_len,
                pattern_seed,
            } => {
                let pattern = aliased_pattern(*half_len, *pattern_seed);
                (0..n).map(|i| pattern[i % pattern.len()]).collect()
            }
        }
    }

    /// The model's nominal majority-direction bias.
    pub fn nominal_bias(&self) -> f64 {
        match self {
            OutcomeModel::Markov { bias, .. } => *bias,
            OutcomeModel::Periodic { pattern } => {
                let t = pattern.iter().filter(|&&x| x).count() as f64 / pattern.len() as f64;
                t.max(1.0 - t)
            }
            OutcomeModel::Random { taken_prob } => taken_prob.max(1.0 - taken_prob),
            OutcomeModel::AliasedPeriodic {
                half_len,
                pattern_seed,
            } => {
                let p = aliased_pattern(*half_len, *pattern_seed);
                let t = p.iter().filter(|&&x| x).count() as f64 / p.len() as f64;
                t.max(1.0 - t)
            }
        }
    }

    /// The model's nominal predictability.
    pub fn nominal_predictability(&self) -> f64 {
        match self {
            OutcomeModel::Markov { predictability, .. } => *predictability,
            OutcomeModel::Periodic { .. } => 1.0,
            OutcomeModel::Random { taken_prob } => taken_prob.max(1.0 - taken_prob),
            // Fully predictable *given enough history*; weak predictors
            // see far less (that asymmetry is the point of the model).
            OutcomeModel::AliasedPeriodic { .. } => 1.0,
        }
    }
}

/// Builds the `X·0·X·1` aliased pattern.
fn aliased_pattern(half_len: usize, seed: u64) -> Vec<bool> {
    assert!(half_len >= 4, "block too short to alias");
    let mut x = seed.max(1);
    let mut block = Vec::with_capacity(half_len);
    for _ in 0..half_len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        block.push(x & 1 == 1);
    }
    let mut p = block.clone();
    p.push(false);
    p.extend(block);
    p.push(true);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vanguard_bpred::{measure_accuracy, Combined};

    fn measure(model: &OutcomeModel, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = model.generate(n, &mut rng);
        let taken = stream.iter().filter(|&&t| t).count() as f64 / n as f64;
        let bias = taken.max(1.0 - taken);
        let mut p = Combined::ptlsim_default();
        let report = measure_accuracy(
            &mut p,
            stream.into_iter().map(|t| (0x4000u64, t)),
            (n / 10) as u64,
        );
        (bias, report.accuracy())
    }

    #[test]
    fn markov_calibration_unbiased_predictable() {
        // The paper's sweet spot: 60/40 bias, 90% predictability.
        let model = OutcomeModel::markov(0.60, 0.90);
        let (bias, acc) = measure(&model, 60_000, 42);
        assert!((bias - 0.60).abs() < 0.03, "measured bias {bias}");
        assert!((acc - 0.90).abs() < 0.04, "measured accuracy {acc}");
    }

    #[test]
    fn markov_calibration_highly_predictable() {
        let model = OutcomeModel::markov(0.55, 0.97);
        let (bias, acc) = measure(&model, 60_000, 7);
        assert!((bias - 0.55).abs() < 0.03, "measured bias {bias}");
        assert!(acc > 0.93, "measured accuracy {acc}");
        assert!(acc - bias > 0.3, "predictability must far exceed bias");
    }

    #[test]
    fn markov_biased_case() {
        let model = OutcomeModel::markov(0.90, 0.95);
        let (bias, acc) = measure(&model, 60_000, 9);
        assert!((bias - 0.90).abs() < 0.03, "measured bias {bias}");
        assert!(acc >= 0.90, "measured accuracy {acc}");
    }

    #[test]
    fn random_model_is_unpredictable() {
        let model = OutcomeModel::Random { taken_prob: 0.5 };
        let (bias, acc) = measure(&model, 40_000, 3);
        assert!(bias < 0.53);
        assert!(acc < 0.56, "a fair coin cannot be predicted: {acc}");
    }

    #[test]
    fn periodic_model_is_fully_predictable() {
        let model = OutcomeModel::Periodic {
            pattern: vec![true, true, false, true, false],
        };
        let (bias, acc) = measure(&model, 40_000, 3);
        assert!((bias - 0.6).abs() < 0.01);
        assert!(acc > 0.98, "periodic accuracy {acc}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let model = OutcomeModel::markov(0.6, 0.9);
        let a = model.generate(1000, &mut StdRng::seed_from_u64(5));
        let b = model.generate(1000, &mut StdRng::seed_from_u64(5));
        let c = model.generate(1000, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "predictability")]
    fn predictability_below_bias_rejected() {
        let _ = OutcomeModel::markov(0.8, 0.6);
    }

    #[test]
    fn nominal_values() {
        assert_eq!(OutcomeModel::markov(0.6, 0.9).nominal_bias(), 0.6);
        assert_eq!(OutcomeModel::Random { taken_prob: 0.3 }.nominal_bias(), 0.7);
        assert_eq!(
            OutcomeModel::Periodic {
                pattern: vec![true, false]
            }
            .nominal_predictability(),
            1.0
        );
    }
}

#[cfg(test)]
mod aliased_tests {
    use super::*;
    use rand::SeedableRng;
    use vanguard_bpred::{measure_accuracy, Bimodal, Combined, DirectionPredictor, IslTage};

    fn accuracy_of<P: DirectionPredictor>(mut p: P, stream: &[bool]) -> f64 {
        let report = measure_accuracy(
            &mut p,
            stream.iter().map(|&t| (0x7000u64, t)),
            (stream.len() / 5) as u64,
        );
        report.accuracy()
    }

    #[test]
    fn aliased_pattern_separates_the_predictor_ladder() {
        let model = OutcomeModel::AliasedPeriodic {
            half_len: 24,
            pattern_seed: 99,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let stream = model.generate(50_000, &mut rng);
        let bimodal = accuracy_of(Bimodal::new(8 * 1024), &stream);
        let combined = accuracy_of(Combined::ptlsim_default(), &stream);
        let isl = accuracy_of(IslTage::storage_64kb(), &stream);
        assert!(
            combined > bimodal + 0.05,
            "combined {combined} vs bimodal {bimodal}"
        );
        assert!(isl >= combined - 0.005, "isl {isl} vs combined {combined}");
        assert!(isl > 0.99, "long history should disambiguate: {isl}");
    }

    #[test]
    fn aliased_pattern_has_the_advertised_period() {
        let p = aliased_pattern(8, 3);
        assert_eq!(p.len(), 18);
        assert_eq!(&p[..8], &p[9..17]);
        assert!(!p[8]);
        assert!(p[17]);
    }

    #[test]
    fn aliased_nominal_values() {
        let m = OutcomeModel::AliasedPeriodic {
            half_len: 16,
            pattern_seed: 5,
        };
        assert_eq!(m.nominal_predictability(), 1.0);
        assert!(m.nominal_bias() >= 0.5 && m.nominal_bias() < 1.0);
    }
}

//! Per-benchmark parameter tables for SPEC 2000/2006.
//!
//! Each entry is a synthetic stand-in whose branch population, MLP,
//! hoistability, and cache behaviour are tuned to the paper's own
//! per-benchmark analysis (§5.1, §5.2, Table 2). The absolute numbers of
//! the substitute are not meaningful; the *relations* are — which
//! benchmarks have many qualifying branches, which are D$-bound, which
//! stall at branch resolution — because those are what the paper says
//! determine each benchmark's speedup.
//!
//! Tuning notes (how Table 2 columns map to knobs):
//!
//! * **PBC** — the ratio of qualifying to non-qualifying sites;
//! * **MPPKI** — qualifying sites' predictability plus the number of
//!   `random` (unpredictable) sites;
//! * **ALPBB / MLP** — `loads_per_block`;
//! * **ASPCB** — `cond_depends_on_data` (the branch condition hangs off a
//!   load) combined with the data footprint (how long that load takes);
//! * **PHI** — `hoistable_alu` vs `tail_alu`;
//! * **D$** — `data_footprint` (8–32 KB ⇒ L1-resident, 256 KB ⇒ L2,
//!   ≥ 4 MB ⇒ memory-bound).

use crate::kernel::{BenchmarkSpec, SiteSpec, Suite};
use crate::model::OutcomeModel;

/// Site-population shorthand: `quals` are (bias, predictability) pairs
/// that pass the §5 heuristic; `biased` are high-bias sites (superblock
/// territory, margin < 5%); `random` are unpredictable 50/50 sites.
#[derive(Clone, Copy, Debug)]
struct Pop<'a> {
    quals: &'a [(f64, f64)],
    biased: usize,
    random: usize,
}

impl Pop<'_> {
    fn sites(&self, seed: u64) -> Vec<SiteSpec> {
        let mut v: Vec<SiteSpec> = self
            .quals
            .iter()
            .map(|&(b, p)| SiteSpec {
                model: OutcomeModel::markov(b, p),
            })
            .collect();
        for i in 0..self.biased {
            // High bias with margin < 5%: classic superblock branches.
            let b = 0.93 + 0.01 * ((seed as usize + i) % 4) as f64;
            v.push(SiteSpec {
                model: OutcomeModel::markov(b, (b + 0.02).min(0.995)),
            });
        }
        for _ in 0..self.random {
            v.push(SiteSpec {
                model: OutcomeModel::Random { taken_prob: 0.5 },
            });
        }
        v
    }
}

#[allow(clippy::too_many_arguments)]
fn bm(
    name: &str,
    suite: Suite,
    pop: Pop<'_>,
    loads_per_block: usize,
    hoistable_alu: usize,
    tail_alu: usize,
    fp_ops: usize,
    footprint_kb: u64,
    cond_depends_on_data: bool,
    seed: u64,
) -> BenchmarkSpec {
    let (iterations, train_iterations) = match suite {
        Suite::Int2006 | Suite::Int2000 => (2500, 1500),
        Suite::Fp2006 | Suite::Fp2000 => (2000, 1200),
    };
    BenchmarkSpec {
        name: name.into(),
        suite,
        sites: pop.sites(seed),
        loads_per_block,
        chase_loads: 0,
        hoistable_alu,
        tail_alu,
        fp_ops,
        data_footprint: footprint_kb * 1024,
        cond_depends_on_data,
        succ_depends_on_cond: false,
        iterations,
        train_iterations,
        ref_inputs: 3,
        bias_jitter: 0.06,
        use_calls: false,
        seed,
    }
}

/// The SPEC CPU2006 integer suite (Figure 8/9, upper half of Table 2).
pub fn spec2006_int() -> Vec<BenchmarkSpec> {
    apply_chase(raw_spec2006_int())
}

fn raw_spec2006_int() -> Vec<BenchmarkSpec> {
    use Suite::Int2006 as S;
    let q = |v: &'static [(f64, f64)]| v;
    vec![
        // High performers: many qualifying branches, data-dependent
        // conditions worth overlapping, good MLP, small D$ footprints.
        bm(
            "h264ref",
            S,
            Pop {
                quals: q(&[(0.62, 0.96), (0.58, 0.95), (0.66, 0.97), (0.70, 0.96)]),
                biased: 2,
                random: 1,
            },
            3,
            2,
            1,
            0,
            16,
            true,
            101,
        ),
        bm(
            "perlbench",
            S,
            Pop {
                quals: q(&[(0.60, 0.97), (0.56, 0.96), (0.64, 0.95), (0.68, 0.97)]),
                biased: 3,
                random: 1,
            },
            2,
            2,
            1,
            0,
            8,
            true,
            102,
        ),
        bm(
            "astar",
            S,
            Pop {
                quals: q(&[(0.58, 0.89), (0.55, 0.87), (0.64, 0.91)]),
                biased: 2,
                random: 1,
            },
            3,
            3,
            1,
            0,
            32,
            true,
            103,
        ),
        // Mid: MLP-rich but D$-challenged or mispredict-prone.
        bm(
            "omnetpp",
            S,
            Pop {
                quals: q(&[(0.60, 0.95), (0.57, 0.94)]),
                biased: 4,
                random: 2,
            },
            3,
            2,
            1,
            0,
            512,
            true,
            104,
        ),
        bm(
            "xalancbmk",
            S,
            Pop {
                quals: q(&[(0.61, 0.94), (0.58, 0.92)]),
                biased: 4,
                random: 2,
            },
            3,
            1,
            1,
            0,
            256,
            true,
            105,
        ),
        bm(
            "sjeng",
            S,
            Pop {
                quals: q(&[(0.60, 0.88), (0.63, 0.89)]),
                biased: 3,
                random: 3,
            },
            2,
            2,
            1,
            0,
            16,
            true,
            106,
        ),
        bm(
            "gobmk",
            S,
            Pop {
                quals: q(&[(0.60, 0.90)]),
                biased: 3,
                random: 3,
            },
            2,
            2,
            1,
            0,
            32,
            true,
            107,
        ),
        bm(
            "gcc",
            S,
            Pop {
                quals: q(&[(0.60, 0.93), (0.62, 0.91)]),
                biased: 4,
                random: 2,
            },
            1,
            0,
            2,
            0,
            64,
            true,
            108,
        ),
        bm(
            "mcf",
            S,
            Pop {
                quals: q(&[(0.58, 0.80), (0.61, 0.82)]),
                biased: 4,
                random: 3,
            },
            1,
            1,
            1,
            0,
            8192,
            true,
            109,
        ),
        // Low end: few candidates or little hoistable work.
        bm(
            "bzip2",
            S,
            Pop {
                quals: q(&[(0.60, 0.90)]),
                biased: 4,
                random: 2,
            },
            2,
            1,
            1,
            0,
            64,
            true,
            110,
        ),
        bm(
            "hmmer",
            S,
            Pop {
                quals: q(&[(0.60, 0.98)]),
                biased: 7,
                random: 0,
            },
            3,
            1,
            2,
            0,
            8,
            false,
            111,
        ),
        bm(
            "libquantum",
            S,
            Pop {
                quals: q(&[(0.58, 0.96)]),
                biased: 8,
                random: 0,
            },
            1,
            0,
            2,
            0,
            4096,
            false,
            112,
        ),
    ]
}

/// The SPEC CPU2006 floating-point suite (Figure 12, lower Table 2).
pub fn spec2006_fp() -> Vec<BenchmarkSpec> {
    apply_chase(raw_spec2006_fp())
}

fn raw_spec2006_fp() -> Vec<BenchmarkSpec> {
    use Suite::Fp2006 as S;
    let q = |v: &'static [(f64, f64)]| v;
    vec![
        bm(
            "wrf",
            S,
            Pop {
                quals: q(&[(0.60, 0.97), (0.58, 0.98), (0.64, 0.97)]),
                biased: 4,
                random: 0,
            },
            3,
            3,
            1,
            2,
            64,
            true,
            201,
        ),
        bm(
            "povray",
            S,
            Pop {
                quals: q(&[(0.62, 0.97), (0.59, 0.96), (0.65, 0.97)]),
                biased: 5,
                random: 0,
            },
            2,
            3,
            1,
            2,
            32,
            true,
            202,
        ),
        bm(
            "tonto",
            S,
            Pop {
                quals: q(&[(0.60, 0.96), (0.63, 0.97)]),
                biased: 4,
                random: 0,
            },
            2,
            2,
            1,
            2,
            32,
            true,
            203,
        ),
        bm(
            "gamess",
            S,
            Pop {
                quals: q(&[(0.61, 0.96), (0.58, 0.95)]),
                biased: 3,
                random: 0,
            },
            2,
            2,
            1,
            2,
            16,
            true,
            204,
        ),
        bm(
            "calculix",
            S,
            Pop {
                quals: q(&[(0.60, 0.95), (0.62, 0.96)]),
                biased: 5,
                random: 0,
            },
            2,
            2,
            1,
            2,
            64,
            true,
            205,
        ),
        bm(
            "milc",
            S,
            Pop {
                quals: q(&[(0.59, 0.97), (0.62, 0.96)]),
                biased: 5,
                random: 0,
            },
            3,
            2,
            1,
            3,
            256,
            false,
            206,
        ),
        bm(
            "soplex",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 5,
                random: 1,
            },
            2,
            2,
            1,
            2,
            256,
            false,
            207,
        ),
        bm(
            "namd",
            S,
            Pop {
                quals: q(&[(0.61, 0.96)]),
                biased: 5,
                random: 0,
            },
            2,
            2,
            2,
            3,
            32,
            true,
            208,
        ),
        bm(
            "lbm",
            S,
            Pop {
                quals: q(&[(0.60, 0.96)]),
                biased: 5,
                random: 0,
            },
            3,
            1,
            2,
            3,
            1024,
            true,
            209,
        ),
        bm(
            "gromacs",
            S,
            Pop {
                quals: q(&[(0.62, 0.95)]),
                biased: 6,
                random: 0,
            },
            2,
            1,
            2,
            3,
            64,
            false,
            210,
        ),
        bm(
            "sphinx3",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 7,
                random: 0,
            },
            2,
            1,
            2,
            2,
            256,
            false,
            211,
        ),
        bm(
            "bwaves",
            S,
            Pop {
                quals: q(&[(0.61, 0.96)]),
                biased: 8,
                random: 0,
            },
            2,
            1,
            2,
            3,
            512,
            false,
            212,
        ),
        bm(
            "GemsFDTD",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 9,
                random: 0,
            },
            2,
            1,
            2,
            3,
            512,
            false,
            213,
        ),
        bm(
            "zeusmp",
            S,
            Pop {
                quals: q(&[(0.62, 0.95)]),
                biased: 9,
                random: 0,
            },
            2,
            0,
            2,
            3,
            256,
            false,
            214,
        ),
        bm(
            "dealII",
            S,
            Pop {
                quals: q(&[(0.60, 0.94)]),
                biased: 10,
                random: 0,
            },
            1,
            0,
            2,
            2,
            64,
            false,
            215,
        ),
        bm(
            "cactusADM",
            S,
            Pop {
                quals: q(&[(0.61, 0.94)]),
                biased: 11,
                random: 0,
            },
            1,
            0,
            2,
            3,
            128,
            false,
            216,
        ),
        bm(
            "leslie3d",
            S,
            Pop {
                quals: q(&[(0.60, 0.94)]),
                biased: 11,
                random: 0,
            },
            1,
            0,
            2,
            3,
            256,
            false,
            217,
        ),
    ]
}

/// The SPEC CPU2000 integer suite (Figures 10/11): more predictable and
/// better-behaved cache-wise than its successor.
pub fn spec2000_int() -> Vec<BenchmarkSpec> {
    apply_chase(raw_spec2000_int())
}

fn raw_spec2000_int() -> Vec<BenchmarkSpec> {
    use Suite::Int2000 as S;
    let q = |v: &'static [(f64, f64)]| v;
    vec![
        bm(
            "vortex",
            S,
            Pop {
                quals: q(&[(0.60, 0.97), (0.57, 0.97), (0.66, 0.96), (0.62, 0.97)]),
                biased: 2,
                random: 0,
            },
            3,
            2,
            1,
            0,
            16,
            true,
            301,
        ),
        bm(
            "crafty",
            S,
            Pop {
                quals: q(&[(0.60, 0.95), (0.63, 0.96), (0.58, 0.95)]),
                biased: 3,
                random: 1,
            },
            2,
            2,
            1,
            0,
            16,
            true,
            302,
        ),
        bm(
            "eon",
            S,
            Pop {
                quals: q(&[(0.61, 0.96), (0.59, 0.95), (0.64, 0.96)]),
                biased: 3,
                random: 0,
            },
            2,
            2,
            1,
            0,
            8,
            true,
            303,
        ),
        bm(
            "gap",
            S,
            Pop {
                quals: q(&[(0.60, 0.96), (0.62, 0.95), (0.57, 0.96)]),
                biased: 3,
                random: 1,
            },
            2,
            2,
            1,
            0,
            32,
            true,
            304,
        ),
        bm(
            "parser",
            S,
            Pop {
                quals: q(&[(0.60, 0.95), (0.58, 0.94), (0.63, 0.95)]),
                biased: 3,
                random: 1,
            },
            2,
            2,
            1,
            0,
            32,
            true,
            305,
        ),
        bm(
            "perlbmk",
            S,
            Pop {
                quals: q(&[(0.60, 0.96), (0.64, 0.96)]),
                biased: 3,
                random: 1,
            },
            2,
            2,
            1,
            0,
            16,
            true,
            306,
        ),
        bm(
            "gcc2000",
            S,
            Pop {
                quals: q(&[(0.60, 0.96), (0.62, 0.95)]),
                biased: 4,
                random: 1,
            },
            2,
            1,
            1,
            0,
            64,
            true,
            307,
        ),
        bm(
            "mcf2000",
            S,
            Pop {
                quals: q(&[(0.58, 0.92), (0.61, 0.93)]),
                biased: 4,
                random: 1,
            },
            1,
            1,
            1,
            0,
            4096,
            true,
            308,
        ),
        bm(
            "bzip2_2000",
            S,
            Pop {
                quals: q(&[(0.60, 0.93)]),
                biased: 5,
                random: 1,
            },
            2,
            1,
            1,
            0,
            64,
            true,
            309,
        ),
        bm(
            "gzip",
            S,
            Pop {
                quals: q(&[(0.60, 0.94), (0.62, 0.93), (0.58, 0.94)]),
                biased: 3,
                random: 1,
            },
            2,
            1,
            1,
            0,
            256,
            true,
            310,
        ),
        bm(
            "twolf",
            S,
            Pop {
                quals: q(&[(0.60, 0.92)]),
                biased: 6,
                random: 1,
            },
            2,
            1,
            1,
            0,
            128,
            false,
            311,
        ),
        bm(
            "vpr",
            S,
            Pop {
                quals: q(&[(0.60, 0.92)]),
                biased: 7,
                random: 1,
            },
            2,
            1,
            1,
            0,
            128,
            false,
            312,
        ),
    ]
}

/// The SPEC CPU2000 floating-point suite (Figure 13): very high
/// predictability, few eligible forward branches.
pub fn spec2000_fp() -> Vec<BenchmarkSpec> {
    apply_chase(raw_spec2000_fp())
}

fn raw_spec2000_fp() -> Vec<BenchmarkSpec> {
    use Suite::Fp2000 as S;
    let q = |v: &'static [(f64, f64)]| v;
    vec![
        bm(
            "art",
            S,
            Pop {
                quals: q(&[(0.60, 0.98), (0.62, 0.97)]),
                biased: 8,
                random: 0,
            },
            3,
            2,
            1,
            2,
            256,
            true,
            401,
        ),
        bm(
            "ammp",
            S,
            Pop {
                quals: q(&[(0.60, 0.97), (0.58, 0.97)]),
                biased: 8,
                random: 0,
            },
            2,
            2,
            1,
            2,
            128,
            true,
            402,
        ),
        bm(
            "mesa",
            S,
            Pop {
                quals: q(&[(0.61, 0.97), (0.63, 0.98)]),
                biased: 8,
                random: 0,
            },
            2,
            2,
            1,
            2,
            32,
            true,
            403,
        ),
        bm(
            "wupwise",
            S,
            Pop {
                quals: q(&[(0.60, 0.97)]),
                biased: 6,
                random: 0,
            },
            2,
            2,
            1,
            3,
            64,
            true,
            404,
        ),
        bm(
            "facerec",
            S,
            Pop {
                quals: q(&[(0.61, 0.96)]),
                biased: 6,
                random: 0,
            },
            2,
            1,
            1,
            3,
            128,
            false,
            405,
        ),
        bm(
            "equake",
            S,
            Pop {
                quals: q(&[(0.60, 0.96)]),
                biased: 9,
                random: 0,
            },
            2,
            1,
            2,
            2,
            256,
            false,
            406,
        ),
        bm(
            "apsi",
            S,
            Pop {
                quals: q(&[(0.60, 0.96)]),
                biased: 9,
                random: 0,
            },
            2,
            1,
            2,
            3,
            128,
            false,
            407,
        ),
        bm(
            "applu",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 10,
                random: 0,
            },
            2,
            0,
            2,
            3,
            512,
            false,
            408,
        ),
        bm(
            "mgrid",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 10,
                random: 0,
            },
            2,
            0,
            2,
            3,
            512,
            false,
            409,
        ),
        bm(
            "swim",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 11,
                random: 0,
            },
            2,
            0,
            2,
            3,
            1024,
            false,
            410,
        ),
        bm(
            "lucas",
            S,
            Pop {
                quals: q(&[(0.60, 0.95)]),
                biased: 11,
                random: 0,
            },
            1,
            0,
            2,
            3,
            256,
            false,
            411,
        ),
        bm(
            "fma3d",
            S,
            Pop {
                quals: q(&[(0.60, 0.94)]),
                biased: 11,
                random: 0,
            },
            1,
            0,
            2,
            3,
            128,
            false,
            412,
        ),
        bm(
            "sixtrack",
            S,
            Pop {
                quals: q(&[(0.60, 0.94)]),
                biased: 11,
                random: 0,
            },
            1,
            0,
            2,
            3,
            64,
            false,
            413,
        ),
    ]
}

/// Dependent-load (pointer-chase) depth per benchmark: combined with a
/// data-dependent condition this is what produces the paper's largest
/// wins — a long successor chain hidden entirely under the long branch
/// resolution (the omnetpp example of Figure 6 is exactly this shape).
fn apply_chase(mut specs: Vec<BenchmarkSpec>) -> Vec<BenchmarkSpec> {
    for spec in &mut specs {
        // The four predictor-sensitivity benchmarks (§5.3) get sites whose
        // predictability depends on predictor sophistication: an aliased
        // long-history pattern and a fixed-trip loop branch.
        if ["astar", "sjeng", "gobmk", "mcf"].contains(&spec.name.as_str()) {
            // Unpredictable 50/50 sites would poison *global* history for
            // every site (no history predictor can learn through i.i.d.
            // noise), so these four use patterned hard sites instead:
            // a period-8 pattern only long-history predictors resolve
            // under ~9-way interleaving, and a trip-32 loop branch that
            // only the ISL-TAGE loop predictor captures. Periods divide
            // the 512-entry condition-stream wrap (no seam glitches).
            spec.sites
                .retain(|s| !matches!(s.model, OutcomeModel::Random { .. }));
            spec.sites.push(SiteSpec {
                model: OutcomeModel::Periodic {
                    pattern: vec![true, true, false, true, false, false, true, false],
                },
            });
            spec.sites.push(SiteSpec {
                model: OutcomeModel::loop_trip(32),
            });
        }
        // mcf-style pointer chasing: successor loads hang off the branch
        // condition's own load, so hoisting cannot overlap them (§5.1's
        // explanation of mcf's and libquantum's limited speedups).
        if ["mcf", "mcf2000", "libquantum"].contains(&spec.name.as_str()) {
            spec.cond_depends_on_data = true;
            spec.succ_depends_on_cond = true;
        }
        // Call-heavy programs route join work through a helper function,
        // exercising call/return and the RAS.
        spec.use_calls = matches!(
            spec.name.as_str(),
            "gamess" | "tonto" | "povray" | "eon" | "perlbmk"
        );
        spec.chase_loads = match spec.name.as_str() {
            "h264ref" | "astar" | "omnetpp" | "wrf" | "vortex" | "art" => 2,
            "perlbench" | "xalancbmk" | "sjeng" | "povray" | "tonto" | "crafty" | "eon" | "gap"
            | "parser" | "perlbmk" | "gzip" | "ammp" | "mesa" | "wupwise" | "gamess"
            | "calculix" | "gobmk" => 1,
            _ => 0,
        };
    }
    specs
}

/// Every benchmark in every suite.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    let mut v = spec2006_int();
    v.extend(spec2006_fp());
    v.extend(spec2000_int());
    v.extend(spec2000_fp());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(spec2006_int().len(), 12);
        assert_eq!(spec2006_fp().len(), 17);
        assert_eq!(spec2000_int().len(), 12);
        assert_eq!(spec2000_fp().len(), 13);
        assert_eq!(all_benchmarks().len(), 54);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_benchmarks().into_iter().map(|b| b.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_benchmark_builds() {
        for spec in all_benchmarks() {
            // Shrink for test speed; structure is what matters here.
            let spec = BenchmarkSpec {
                iterations: 50,
                train_iterations: 30,
                ref_inputs: 1,
                data_footprint: spec.data_footprint.min(64 * 1024),
                ..spec
            };
            let w = spec.build();
            assert!(w.program.validate().is_ok(), "{}", w.name);
            assert_eq!(w.refs.len(), 1);
        }
    }

    #[test]
    fn qualifying_margin_is_respected_by_construction() {
        for spec in all_benchmarks() {
            for site in &spec.sites {
                let b = site.model.nominal_bias();
                let p = site.model.nominal_predictability();
                assert!(p >= b - 1e-9, "{}: pred {p} < bias {b}", spec.name);
            }
        }
    }

    #[test]
    fn int_suites_have_more_random_sites_than_fp() {
        let count_random = |specs: Vec<BenchmarkSpec>| {
            specs
                .iter()
                .flat_map(|s| &s.sites)
                .filter(|s| matches!(s.model, OutcomeModel::Random { .. }))
                .count()
        };
        assert!(count_random(spec2006_int()) > count_random(spec2006_fp()));
    }
}

//! # vanguard-workloads
//!
//! Calibrated synthetic stand-ins for the SPEC 2000/2006 benchmarks.
//!
//! The paper evaluates on SPEC binaries with TRAIN/REF inputs; those are
//! not redistributable, so this crate synthesises workloads that reproduce
//! the *branch-behaviour characteristics* the paper's own analysis (§5.1,
//! §5.2, Table 2) identifies as the determinants of speedup:
//!
//! * per-site **bias** and **predictability** (including the crucial
//!   predictable-but-unbiased population — [`OutcomeModel`] generates
//!   direction streams whose measured predictor accuracy and taken-rate
//!   are calibrated to targets);
//! * **PBC** — the fraction of forward branches that qualify;
//! * **MLP/ALPBB** — loads per successor block;
//! * **PHI** — the hoistable fraction of successor blocks;
//! * **D$ behaviour** — working-set footprint per benchmark;
//! * multiple REF inputs with per-input bias variation.
//!
//! [`suite::spec2006_int`] and friends give one [`BenchmarkSpec`] per
//! benchmark named in the paper; [`BenchmarkSpec::build`] produces an
//! `ExperimentInput`-shaped bundle (program + TRAIN + REF inputs).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fuzz;
mod kernel;
mod model;
pub mod suite;

pub use fuzz::{FuzzCase, FuzzSpec};
pub use kernel::{BenchmarkSpec, BuiltWorkload, SiteSpec, Suite, WorkloadInput};
pub use model::OutcomeModel;

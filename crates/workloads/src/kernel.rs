//! The synthetic-benchmark kernel builder.

use crate::model::OutcomeModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vanguard_isa::{
    AluOp, BlockId, CmpKind, CondKind, FpOp, Inst, Memory, Operand, Program, ProgramBuilder, Reg,
};

/// Which suite a benchmark belongs to (Figures 8–13 are split by suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 integer.
    Int2006,
    /// SPEC CPU2006 floating point.
    Fp2006,
    /// SPEC CPU2000 integer.
    Int2000,
    /// SPEC CPU2000 floating point.
    Fp2000,
}

/// One forward-branch site of a kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteSpec {
    /// Direction-stream model for this site.
    pub model: OutcomeModel,
}

/// Memory image + initial registers for one run (TRAIN or one REF input).
#[derive(Clone, Debug)]
pub struct WorkloadInput {
    /// Initial data memory.
    pub memory: Memory,
    /// Initial register values (`r1` carries the iteration count).
    pub init_regs: Vec<(Reg, u64)>,
}

/// A generated benchmark: the program plus its TRAIN and REF inputs.
#[derive(Clone, Debug)]
pub struct BuiltWorkload {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// The kernel program.
    pub program: Program,
    /// TRAIN input (profiling).
    pub train: WorkloadInput,
    /// REF inputs (evaluation).
    pub refs: Vec<WorkloadInput>,
    /// The spec's master seed (replay handle for failure reports).
    pub seed: u64,
}

/// Structural and behavioural parameters of one synthetic benchmark.
///
/// The fields map onto the paper's Table 2 determinants: `sites` control
/// PBC and MPPKI, `loads_per_block` controls ALPBB/MLP,
/// `hoistable_alu`/`tail_alu` control PHI, `data_footprint` controls D$
/// behaviour, and `cond_depends_on_data` raises branch-resolution stalls
/// (ASPCB).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. "omnetpp").
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Forward-branch sites per loop iteration.
    pub sites: Vec<SiteSpec>,
    /// Loads per successor block (ALPBB proxy, ≤ 6).
    pub loads_per_block: usize,
    /// Levels of *dependent* (pointer-chase) loads appended after the
    /// independent loads (0–2). These lengthen the load-to-use chain the
    /// branch serialises in the baseline — the omnetpp story of Figure 6.
    pub chase_loads: usize,
    /// ALU ops above the store in each successor block (hoistable, ≤ 4).
    pub hoistable_alu: usize,
    /// ALU ops below the store (non-hoistable, ≤ 4).
    pub tail_alu: usize,
    /// FP ops in each join block (≤ 4; FP benchmarks' large blocks).
    pub fp_ops: usize,
    /// Data working-set bytes (power of two; D$ knob).
    pub data_footprint: u64,
    /// Make the branch condition data-dependent on a (possibly missing)
    /// load, lengthening branch resolution.
    pub cond_depends_on_data: bool,
    /// Make the successor blocks' loads depend on the condition chain's
    /// loaded value (mcf-style pointer chasing): hoisting then cannot
    /// overlap them with the resolution, bounding the technique's benefit
    /// exactly as §5.1 describes for mcf/gcc.
    pub succ_depends_on_cond: bool,
    /// REF iterations.
    pub iterations: u64,
    /// TRAIN iterations.
    pub train_iterations: u64,
    /// Number of REF inputs (bias varies per input, Figures 8 vs 9).
    pub ref_inputs: usize,
    /// Per-REF-input bias perturbation (absolute, e.g. 0.05).
    pub bias_jitter: f64,
    /// Route each join block's shared work through a called helper
    /// function (exercises call/return and the 64-entry RAS).
    pub use_calls: bool,
    /// Master seed.
    pub seed: u64,
}

/// Condition entries per site (wrap period of each site's direction
/// stream; 4 KB per site in memory).
pub const COND_ENTRIES: usize = 512;
const COND_SITE_BYTES: i64 = (COND_ENTRIES as i64) * 8;
const COND_BASE: i64 = 0x10_0000;
const DATA_BASE: i64 = 0x40_0000;
const OUT_BASE: i64 = 0x90_0000;
// 65 lines: consecutive iterations land on distant, non-adjacent lines so
// successor-block loads are independent misses (the MLP the paper exploits).
const DATA_STRIDE: i64 = 65 * 64;

// Register map (see module docs): r1 counter, r2 latch flag, r3 cond ptr,
// r4 cond value, r5 site flag, r10 data ptr, r11 out ptr, r13/r14 raw
// indices, r15 cond-dependence temp, r18 cond raw offset, r40.. block
// temporaries, r50 accumulator, r52/r53 FP.
const R_COUNT: Reg = Reg(1);
const R_LFLAG: Reg = Reg(2);
const R_CONDP: Reg = Reg(3);
const R_CVAL: Reg = Reg(4);
const R_SFLAG: Reg = Reg(5);
const R_DATAP: Reg = Reg(10);
const R_OUTP: Reg = Reg(11);
const R_DIDX: Reg = Reg(13);
const R_OIDX: Reg = Reg(14);
const R_CDEP: Reg = Reg(15);
const R_CIDX: Reg = Reg(18);
const R_ACC: Reg = Reg(50);
const R_FP_A: Reg = Reg(52);
const R_FP_B: Reg = Reg(53);

impl BenchmarkSpec {
    /// Validates structural limits.
    ///
    /// # Panics
    ///
    /// Panics when a parameter exceeds its documented limit.
    fn check(&self) {
        assert!(!self.sites.is_empty(), "need at least one site");
        assert!(self.sites.len() <= 16, "too many sites");
        assert!(self.loads_per_block >= 1 && self.loads_per_block <= 6);
        assert!(self.chase_loads <= 2);
        // Register-map safety: independent loads use r40..r45, chase levels
        // r36/r37, hoistable ALU r46..r49 — all disjoint by construction.
        assert!(
            !self.succ_depends_on_cond || self.cond_depends_on_data,
            "succ_depends_on_cond requires cond_depends_on_data"
        );
        assert!(self.hoistable_alu <= 4 && self.tail_alu <= 4 && self.fp_ops <= 4);
        assert!(
            self.data_footprint.is_power_of_two() && self.data_footprint >= 4096,
            "footprint must be a power of two ≥ 4 KiB"
        );
        assert!(self.ref_inputs >= 1);
    }

    /// Builds the kernel program and all inputs.
    pub fn build(&self) -> BuiltWorkload {
        self.check();
        let program = self.build_program();
        debug_assert!(program.validate().is_ok());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let train = self.build_input(self.train_iterations, 0.0, &mut rng);
        let refs = (0..self.ref_inputs)
            .map(|i| {
                // Deterministic per-input jitter in [-jitter, +jitter].
                let j = if self.ref_inputs == 1 {
                    0.0
                } else {
                    self.bias_jitter * (2.0 * i as f64 / (self.ref_inputs - 1) as f64 - 1.0)
                };
                self.build_input(self.iterations, j, &mut rng)
            })
            .collect();
        BuiltWorkload {
            name: self.name.clone(),
            suite: self.suite,
            program,
            train,
            refs,
            seed: self.seed,
        }
    }

    fn build_program(&self) -> Program {
        let s_count = self.sites.len();
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        // Create blocks in layout order: head, fall(side 0), taken(side 1),
        // join per site; branch targets are later blocks ⇒ forward.
        let mut heads = Vec::with_capacity(s_count);
        let mut blocks = Vec::with_capacity(s_count);
        for s in 0..s_count {
            let head = b.block(format!("head{s}"));
            let fall = b.block(format!("fall{s}"));
            let taken = b.block(format!("taken{s}"));
            let join = b.block(format!("join{s}"));
            heads.push(head);
            blocks.push((head, fall, taken, join));
        }
        let latch = b.block("latch");
        let exit = b.block("exit");
        // Optional shared helper: join-block work behind a call/return.
        let helper = self.use_calls.then(|| {
            let h = b.block("helper");
            for _ in 0..self.fp_ops {
                b.push(
                    h,
                    Inst::Fp {
                        op: FpOp::Mul,
                        dst: R_FP_A,
                        a: R_FP_A,
                        b: R_FP_B,
                    },
                );
            }
            b.push(
                h,
                Inst::alu(AluOp::Add, R_ACC, Operand::Reg(R_ACC), Operand::Imm(1)),
            );
            b.push(h, Inst::Ret);
            h
        });

        // entry: pointer/constant setup (r1 arrives via init_regs).
        b.push(entry, Inst::mov(R_CONDP, Operand::Imm(COND_BASE)));
        b.push(entry, Inst::mov(R_DATAP, Operand::Imm(DATA_BASE)));
        b.push(entry, Inst::mov(R_OUTP, Operand::Imm(OUT_BASE)));
        b.push(entry, Inst::mov(R_DIDX, Operand::Imm(0)));
        b.push(entry, Inst::mov(R_OIDX, Operand::Imm(0)));
        b.push(entry, Inst::mov(R_CIDX, Operand::Imm(0)));
        b.push(entry, Inst::mov(R_ACC, Operand::Imm(0)));
        b.push(
            entry,
            Inst::mov(R_FP_A, Operand::Imm(1.5f64.to_bits() as i64)),
        );
        b.push(
            entry,
            Inst::mov(R_FP_B, Operand::Imm(1.0000001f64.to_bits() as i64)),
        );
        b.fallthrough(entry, heads[0]);

        for (s, &(head, fall, taken, join)) in blocks.iter().enumerate() {
            // head: load the site's condition word; optionally chain it
            // behind a data load to lengthen branch resolution.
            let site_off = (s as i64) * COND_SITE_BYTES;
            if self.cond_depends_on_data {
                // A data load on its own line: the branch condition is
                // serialised behind a (possibly missing) load, as in mcf.
                let dep_off = (2 * self.loads_per_block as i64) * 64;
                b.push(head, Inst::load(R_CDEP, R_DATAP, dep_off));
                b.push(
                    head,
                    Inst::alu(AluOp::And, R_CDEP, Operand::Reg(R_CDEP), Operand::Imm(0)),
                );
                b.push(
                    head,
                    Inst::alu(
                        AluOp::Add,
                        R_CDEP,
                        Operand::Reg(R_CDEP),
                        Operand::Reg(R_CONDP),
                    ),
                );
                b.push(head, Inst::load(R_CVAL, R_CDEP, site_off));
            } else {
                b.push(head, Inst::load(R_CVAL, R_CONDP, site_off));
            }
            b.push(
                head,
                Inst::Cmp {
                    kind: CmpKind::Ne,
                    dst: R_SFLAG,
                    a: R_CVAL,
                    b: Operand::Imm(0),
                },
            );
            b.push(
                head,
                Inst::Branch {
                    cond: CondKind::Nz,
                    src: R_SFLAG,
                    target: taken,
                },
            );
            b.fallthrough(head, fall);

            // Two successor sides with disjoint load offsets.
            self.emit_side(&mut b, fall, 0, s, 0, join);
            self.emit_side(
                &mut b,
                taken,
                1,
                s,
                (self.loads_per_block as i64) * 64,
                join,
            );

            // join: FP work (inline or behind a call), then on to the next
            // site or the latch.
            let next = if s + 1 < s_count { heads[s + 1] } else { latch };
            if let Some(h) = helper {
                b.push(
                    join,
                    Inst::Call {
                        callee: h,
                        ret_to: next,
                    },
                );
            } else {
                for _ in 0..self.fp_ops {
                    b.push(
                        join,
                        Inst::Fp {
                            op: FpOp::Mul,
                            dst: R_FP_A,
                            a: R_FP_A,
                            b: R_FP_B,
                        },
                    );
                }
                b.fallthrough(join, next);
            }
        }

        // latch: advance wrapped pointers, decrement, loop.
        let cond_mask = COND_SITE_BYTES - 1;
        b.push(
            latch,
            Inst::alu(AluOp::Add, R_CIDX, Operand::Reg(R_CIDX), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::And,
                R_CIDX,
                Operand::Reg(R_CIDX),
                Operand::Imm(cond_mask),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_CONDP,
                Operand::Reg(R_CIDX),
                Operand::Imm(COND_BASE),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_DIDX,
                Operand::Reg(R_DIDX),
                Operand::Imm(DATA_STRIDE),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::And,
                R_DIDX,
                Operand::Reg(R_DIDX),
                Operand::Imm((self.data_footprint - 1) as i64),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_DATAP,
                Operand::Reg(R_DIDX),
                Operand::Imm(DATA_BASE),
            ),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Add, R_OIDX, Operand::Reg(R_OIDX), Operand::Imm(64)),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::And,
                R_OIDX,
                Operand::Reg(R_OIDX),
                Operand::Imm(0xfff),
            ),
        );
        b.push(
            latch,
            Inst::alu(
                AluOp::Add,
                R_OUTP,
                Operand::Reg(R_OIDX),
                Operand::Imm(OUT_BASE),
            ),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, R_COUNT, Operand::Reg(R_COUNT), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: R_LFLAG,
                a: R_COUNT,
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: R_LFLAG,
                target: heads[0],
            },
        );
        b.fallthrough(latch, exit);

        // exit: materialise the accumulator so nothing is dead.
        b.push(exit, Inst::store(R_ACC, R_OUTP, 0x800));
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().expect("generated kernel is structurally valid")
    }

    /// One successor block: loads, hoistable ALU, a store, tail ALU.
    fn emit_side(
        &self,
        b: &mut ProgramBuilder,
        block: BlockId,
        side: i64,
        site: usize,
        load_off: i64,
        join: BlockId,
    ) {
        let loads = self.loads_per_block;
        if self.succ_depends_on_cond {
            // Pointer-chase off the condition chain's value: the address
            // is ready only after the (possibly missing) dependence load.
            let addr = Reg(39);
            b.push(
                block,
                Inst::alu(
                    AluOp::And,
                    addr,
                    Operand::Reg(R_CDEP),
                    Operand::Imm((self.data_footprint as i64 - 1) & !7),
                ),
            );
            b.push(
                block,
                Inst::alu(
                    AluOp::Add,
                    addr,
                    Operand::Reg(addr),
                    Operand::Imm(DATA_BASE),
                ),
            );
            for k in 0..loads {
                b.push(
                    block,
                    Inst::load(Reg(40 + k as u8), addr, load_off + (k as i64) * 64),
                );
            }
        } else {
            for k in 0..loads {
                b.push(
                    block,
                    Inst::load(Reg(40 + k as u8), R_DATAP, load_off + (k as i64) * 64),
                );
            }
        }
        let mut val = Reg(40); // last value feeding the store
                               // Pointer-chase levels: each address depends on the previous
                               // loaded value (wrapped into the data region), so the whole chain
                               // serialises behind the branch in the baseline.
        for c in 0..self.chase_loads {
            // r36/r37: disjoint from the independent-load dsts (r40..r45).
            let dst = Reg(36 + c as u8);
            b.push(
                block,
                Inst::alu(
                    AluOp::And,
                    dst,
                    Operand::Reg(val),
                    Operand::Imm((self.data_footprint as i64 - 1) & !7),
                ),
            );
            b.push(
                block,
                Inst::alu(AluOp::Add, dst, Operand::Reg(dst), Operand::Imm(DATA_BASE)),
            );
            b.push(block, Inst::load(dst, dst, 0));
            val = dst;
        }
        for j in 0..self.hoistable_alu {
            let dst = Reg(46 + j as u8);
            let (a, bb) = if j == 0 {
                (
                    Operand::Reg(val),
                    Operand::Reg(Reg(40 + (loads.min(2) - 1) as u8)),
                )
            } else {
                (Operand::Reg(val), Operand::Imm(3 + j as i64))
            };
            b.push(block, Inst::alu(AluOp::Add, dst, a, bb));
            val = dst;
        }
        b.push(
            block,
            Inst::store(val, R_OUTP, (site as i64) * 16 + side * 8),
        );
        for j in 0..self.tail_alu {
            let src = if j == 0 { val } else { R_ACC };
            b.push(
                block,
                Inst::alu(AluOp::Add, R_ACC, Operand::Reg(R_ACC), Operand::Reg(src)),
            );
        }
        b.push(block, Inst::Jump { target: join });
    }

    /// Builds one input: condition arrays per the site models (with bias
    /// jitter), data array values, output mapping, and `r1`.
    fn build_input(&self, iterations: u64, bias_jitter: f64, rng: &mut StdRng) -> WorkloadInput {
        let mut memory = Memory::new();
        for (s, site) in self.sites.iter().enumerate() {
            let model = jitter_model(&site.model, bias_jitter);
            let stream = model.generate(COND_ENTRIES, rng);
            let words: Vec<u64> = stream.into_iter().map(u64::from).collect();
            memory.load_words(
                COND_BASE as u64 + (s as u64) * COND_SITE_BYTES as u64,
                &words,
            );
        }
        // Data region: footprint plus slack for the per-block offsets.
        let slack = (2 * self.loads_per_block as u64 + 2) * 64 + 128;
        let data_words = (self.data_footprint + slack) / 8;
        let span = self.data_footprint.max(1024);
        let data: Vec<u64> = (0..data_words).map(|_| rng.gen_range(0..span)).collect();
        memory.load_words(DATA_BASE as u64, &data);
        memory.map_region(OUT_BASE as u64, 0x1000 + 0x900);
        WorkloadInput {
            memory,
            init_regs: vec![(R_COUNT, iterations)],
        }
    }
}

/// Perturbs a model's bias by `delta`, clamped to the legal range.
fn jitter_model(model: &OutcomeModel, delta: f64) -> OutcomeModel {
    if delta == 0.0 {
        return model.clone();
    }
    match model {
        OutcomeModel::Markov {
            bias,
            predictability,
        } => {
            let b = (bias + delta).clamp(0.5, 0.98);
            OutcomeModel::Markov {
                bias: b,
                predictability: predictability.max(b),
            }
        }
        OutcomeModel::Random { taken_prob } => OutcomeModel::Random {
            taken_prob: (taken_prob + delta).clamp(0.02, 0.98),
        },
        periodic => periodic.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{Interpreter, StopReason, TakenOracle};

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "toy".into(),
            suite: Suite::Int2006,
            sites: vec![
                SiteSpec {
                    model: OutcomeModel::markov(0.6, 0.93),
                },
                SiteSpec {
                    model: OutcomeModel::Random { taken_prob: 0.5 },
                },
            ],
            loads_per_block: 2,
            chase_loads: 0,
            hoistable_alu: 1,
            tail_alu: 1,
            fp_ops: 0,
            data_footprint: 8192,
            cond_depends_on_data: false,
            succ_depends_on_cond: false,
            iterations: 400,
            train_iterations: 300,
            ref_inputs: 2,
            bias_jitter: 0.05,
            use_calls: false,
            seed: 1,
        }
    }

    #[test]
    fn built_program_validates_and_runs() {
        let w = small_spec().build();
        assert!(w.program.validate().is_ok());
        let mut i = Interpreter::new(&w.program, w.refs[0].memory.clone());
        for &(r, v) in &w.refs[0].init_regs {
            i.set_reg(r, v);
        }
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.stop, StopReason::Halted);
        // Two branch sites + the loop latch per iteration.
        assert_eq!(out.record.branches, 400 * 3);
    }

    #[test]
    fn train_and_refs_have_independent_streams() {
        let w = small_spec().build();
        assert_eq!(w.refs.len(), 2);
        let a = w.train.memory.read(COND_BASE as u64).unwrap();
        let _ = a; // first words may coincide; compare a window instead
        let window = |m: &Memory| {
            (0..64)
                .map(|k| m.read(COND_BASE as u64 + k * 8).unwrap())
                .collect::<Vec<_>>()
        };
        assert_ne!(window(&w.train.memory), window(&w.refs[0].memory));
        assert_ne!(window(&w.refs[0].memory), window(&w.refs[1].memory));
    }

    #[test]
    fn determinism_per_seed() {
        let a = small_spec().build();
        let b = small_spec().build();
        assert_eq!(a.program, b.program);
        let wa = (0..32)
            .map(|k| a.refs[0].memory.read(COND_BASE as u64 + k * 8))
            .collect::<Vec<_>>();
        let wb = (0..32)
            .map(|k| b.refs[0].memory.read(COND_BASE as u64 + k * 8))
            .collect::<Vec<_>>();
        assert_eq!(wa, wb);
    }

    #[test]
    fn cond_dependence_adds_the_chain() {
        let mut s = small_spec();
        s.cond_depends_on_data = true;
        let w = s.build();
        // head blocks now contain two loads.
        let summary = w.program.static_summary();
        assert!(summary.mnemonics["ld"] >= 2 * 2 + 2 * 2 * 2);
        let mut i = Interpreter::new(&w.program, w.refs[0].memory.clone());
        for &(r, v) in &w.refs[0].init_regs {
            i.set_reg(r, v);
        }
        assert_eq!(
            i.run(&mut TakenOracle::AlwaysNotTaken).unwrap().stop,
            StopReason::Halted
        );
    }

    #[test]
    fn iteration_count_comes_from_init_regs() {
        let w = small_spec().build();
        assert_eq!(w.train.init_regs, vec![(R_COUNT, 300)]);
        assert_eq!(w.refs[0].init_regs, vec![(R_COUNT, 400)]);
    }

    #[test]
    fn fp_ops_emit_fp_instructions() {
        let mut s = small_spec();
        s.fp_ops = 3;
        s.suite = Suite::Fp2006;
        let w = s.build();
        let summary = w.program.static_summary();
        assert_eq!(summary.mnemonics["fmul"], 3 * 2);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn bad_footprint_rejected() {
        let mut s = small_spec();
        s.data_footprint = 5000;
        s.build();
    }

    #[test]
    fn call_helper_kernels_run_and_return() {
        let mut s = small_spec();
        s.use_calls = true;
        s.fp_ops = 2;
        s.tail_alu = 0; // keep r50 purely helper-driven for the count check
        let w = s.build();
        assert!(w.program.validate().is_ok());
        let summary = w.program.static_summary();
        assert_eq!(summary.mnemonics["call"], 2, "one call per join");
        assert_eq!(summary.mnemonics["ret"], 1);
        let mut i = Interpreter::new(&w.program, w.refs[0].memory.clone());
        for &(r, v) in &w.refs[0].init_regs {
            i.set_reg(r, v);
        }
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.stop, StopReason::Halted);
        // The helper accumulator ran once per site per iteration.
        assert_eq!(i.reg(Reg(50)), 2 * 400);
    }
}

//! TAGE and an ISL-TAGE-style predictor (Seznec, MICRO 2011) for the
//! branch-predictor sensitivity study (§5.3 of the paper).

use crate::bimodal::Bimodal;
use crate::meta::{cell_id, fold_pc, DirectionPredictor, PredMeta, SaturatingCounter};

/// Updates between two graceful useful-bit aging sweeps (`update` ages
/// when `update_count` reaches a multiple of this).
const AGING_PERIOD: u64 = 256 * 1024;

/// Configuration of a [`Tage`] predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged components (≤ 6).
    pub num_tables: usize,
    /// Shortest history length (geometric series start).
    pub min_hist: u32,
    /// Longest history length (≤ 128).
    pub max_hist: u32,
    /// log2 of entries per tagged table.
    pub log_entries: u32,
    /// Tag width in bits (≤ 16).
    pub tag_bits: u32,
    /// log2 of base bimodal entries.
    pub log_base_entries: u32,
}

impl TageConfig {
    /// A ~32 KB TAGE used as the second-to-top ladder rung.
    pub fn storage_32kb() -> Self {
        TageConfig {
            num_tables: 5,
            min_hist: 4,
            max_hist: 128,
            log_entries: 11,
            tag_bits: 11,
            log_base_entries: 14,
        }
    }

    /// A ~64 KB TAGE used inside [`IslTage`] (the paper's top rung).
    pub fn storage_64kb() -> Self {
        TageConfig {
            num_tables: 6,
            min_hist: 4,
            max_hist: 128,
            log_entries: 12,
            tag_bits: 12,
            log_base_entries: 14,
        }
    }

    /// The geometric history length of table `t` (0 = shortest).
    pub fn hist_len(&self, t: usize) -> u32 {
        if self.num_tables == 1 {
            return self.min_hist;
        }
        let ratio = f64::from(self.max_hist) / f64::from(self.min_hist);
        let exp = t as f64 / (self.num_tables - 1) as f64;
        (f64::from(self.min_hist) * ratio.powf(exp)).round() as u32
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    ctr: u8,    // 3-bit signed-style counter, 0..7, >=4 means taken
    useful: u8, // 2-bit
}

const NO_PROVIDER: u32 = 0xff;

/// The TAGE predictor: a bimodal base plus tagged components with
/// geometrically increasing history lengths.
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    base: Bimodal,
    tables: Vec<Vec<TageEntry>>,
    /// Raw speculative global history, newest outcome in bit 0 of `hist[0]`.
    hist: [u64; 2],
    /// Updates since the last graceful `useful` reset.
    update_count: u64,
    /// Allocation tie-break state (deterministic LFSR).
    alloc_seed: u32,
    /// Adaptive "use alternate prediction on newly-allocated entries"
    /// counters (real TAGE's USE_ALT_ON_NA), indexed by PC so noisy
    /// branches defer to the base while patterned ones trust providers.
    use_alt_on_na: Vec<SaturatingCounter>,
}

impl Tage {
    /// Creates a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration exceeds structural limits
    /// (`num_tables > 6`, `max_hist > 128`, `tag_bits > 16`).
    pub fn new(config: TageConfig) -> Self {
        assert!(config.num_tables >= 1 && config.num_tables <= 6);
        assert!(config.max_hist <= 128 && config.min_hist >= 1);
        assert!(config.tag_bits <= 16);
        let entries = 1usize << config.log_entries;
        Tage {
            config,
            base: Bimodal::new(1 << config.log_base_entries),
            tables: vec![vec![TageEntry::default(); entries]; config.num_tables],
            hist: [0; 2],
            update_count: 0,
            alloc_seed: 0xace1,
            use_alt_on_na: vec![SaturatingCounter::new(4); 128],
        }
    }

    fn use_alt_index(pc: u64) -> usize {
        (fold_pc(pc) & 127) as usize
    }

    /// The configuration in use.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    fn fold_hist(hist: [u64; 2], len: u32, out_bits: u32) -> u64 {
        // Take the low `len` bits of the raw history and xor-fold them into
        // an `out_bits`-wide value.
        let mut bits = [0u64; 2];
        if len >= 64 {
            bits[0] = hist[0];
            let rem = len - 64;
            bits[1] = if rem == 0 {
                0
            } else if rem >= 64 {
                hist[1]
            } else {
                hist[1] & ((1u64 << rem) - 1)
            };
        } else if len > 0 {
            bits[0] = hist[0] & ((1u64 << len) - 1);
        }
        let mut acc = 0u64;
        let mask = (1u64 << out_bits) - 1;
        for mut w in bits {
            while w != 0 {
                acc ^= w & mask;
                w >>= out_bits;
            }
        }
        acc
    }

    fn index(&self, pc: u64, t: usize, hist: [u64; 2]) -> usize {
        let len = self.config.hist_len(t);
        let folded = Self::fold_hist(hist, len, self.config.log_entries);
        let mask = (1u64 << self.config.log_entries) - 1;
        ((fold_pc(pc) ^ folded ^ (t as u64).wrapping_mul(0x9e37)) & mask) as usize
    }

    fn tag(&self, pc: u64, t: usize, hist: [u64; 2]) -> u16 {
        let len = self.config.hist_len(t);
        let folded = Self::fold_hist(hist, len, self.config.tag_bits)
            ^ (Self::fold_hist(hist, len, self.config.tag_bits.saturating_sub(1).max(1)) << 1);
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((fold_pc(pc) >> 3) ^ folded) & mask) as u16
    }

    fn shift_history(hist: [u64; 2], taken: bool) -> [u64; 2] {
        [
            (hist[0] << 1) | taken as u64,
            (hist[1] << 1) | (hist[0] >> 63),
        ]
    }

    fn next_alloc(&mut self) -> u32 {
        // 16-bit Galois LFSR: deterministic allocation tie-breaking.
        let lsb = self.alloc_seed & 1;
        self.alloc_seed >>= 1;
        if lsb != 0 {
            self.alloc_seed ^= 0xB400;
        }
        self.alloc_seed
    }

    /// Replay cell digest shared with [`IslTage`]: every table entry a
    /// prediction with this metadata read and its resolution may write.
    fn probe_tage_cells(&self, pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        for t in 0..self.config.num_tables {
            let idx = meta.words[t] as usize;
            let e = &self.tables[t][idx];
            let packed = u64::from(e.tag) | (u64::from(e.ctr) << 16) | (u64::from(e.useful) << 24);
            out.push((cell_id(1 + t as u64, idx as u64), packed));
        }
        self.base.probe_cell(0, pc, out);
        let ai = Self::use_alt_index(pc);
        out.push((
            cell_id(7, ai as u64),
            u64::from(self.use_alt_on_na[ai].value()),
        ));
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let hist = self.hist;
        let mut provider = NO_PROVIDER;
        let mut alt = NO_PROVIDER;
        let mut provider_pred = false;
        let mut alt_pred;
        let mut meta = PredMeta::default();
        // Compute and stash indices/tags for every table (needed at update
        // time since history will have moved on).
        for t in 0..self.config.num_tables {
            let idx = self.index(pc, t, hist);
            let tag = self.tag(pc, t, hist);
            meta.words[t] = idx as u32;
            meta.words[6 + t / 2] |= u32::from(tag) << (16 * (t % 2));
            let e = &self.tables[t][idx];
            if e.tag == tag && e.useful != 0xff {
                alt = provider;
                provider = t as u32;
                provider_pred = e.ctr >= 4;
            }
        }
        let base_pred = self.base.peek(pc);
        alt_pred = base_pred;
        if alt != NO_PROVIDER {
            let idx = meta.words[alt as usize] as usize;
            alt_pred = self.tables[alt as usize][idx].ctr >= 4;
        }
        let taken = if provider != NO_PROVIDER {
            let idx = meta.words[provider as usize] as usize;
            let e = &self.tables[provider as usize][idx];
            // Low-confidence entries defer to the alternate prediction
            // when the adaptive counter says fresh entries have been
            // unreliable (real TAGE's USE_ALT_ON_NA): in noisy
            // environments, chance-trained tagged entries must not
            // override the base predictor.
            let confident = e.ctr == 0 || e.ctr == 7 || e.useful > 0;
            if !confident && self.use_alt_on_na[Self::use_alt_index(pc)].taken() {
                alt_pred
            } else {
                provider_pred
            }
        } else {
            base_pred
        };
        meta.taken = taken;
        meta.words[9] = provider
            | (alt << 8)
            | ((provider_pred as u32) << 16)
            | ((alt_pred as u32) << 17)
            | ((base_pred as u32) << 18);
        meta.hist = hist;
        self.hist = Self::shift_history(hist, taken);
        meta
    }

    fn update(&mut self, pc: u64, meta: &PredMeta, taken: bool) {
        self.update_count += 1;
        let provider = meta.words[9] & 0xff;
        let alt = (meta.words[9] >> 8) & 0xff;
        let provider_pred = meta.words[9] & (1 << 16) != 0;
        let alt_pred = meta.words[9] & (1 << 17) != 0;

        if provider != NO_PROVIDER {
            let t = provider as usize;
            let idx = meta.words[t] as usize;
            let newish = {
                let e = &self.tables[t][idx];
                e.ctr >= 1 && e.ctr <= 6 && e.useful == 0
            };
            if newish && provider_pred != alt_pred {
                // "taken" for this counter means "prefer the alternate".
                self.use_alt_on_na[Self::use_alt_index(pc)].train(alt_pred == taken);
            }
            let e = &mut self.tables[t][idx];
            if taken && e.ctr < 7 {
                e.ctr += 1;
            } else if !taken && e.ctr > 0 {
                e.ctr -= 1;
            }
            // Useful bit: provider differed from alternate and was right.
            if provider_pred != alt_pred {
                if provider_pred == taken {
                    if e.useful < 3 {
                        e.useful += 1;
                    }
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
            }
            // Train the alternate when the provider entry was weak.
            if (e.ctr == 3 || e.ctr == 4) && alt != NO_PROVIDER {
                let ai = meta.words[alt as usize] as usize;
                let ae = &mut self.tables[alt as usize][ai];
                if taken && ae.ctr < 7 {
                    ae.ctr += 1;
                } else if !taken && ae.ctr > 0 {
                    ae.ctr -= 1;
                }
            }
            // The base always trains: providers come and go with history
            // churn, and a stale base is what every miss falls back to.
            self.base.train(pc, taken);
        } else {
            self.base.train(pc, taken);
        }

        // Allocate on a misprediction in a longer-history table.
        if meta.taken != taken {
            let start = if provider == NO_PROVIDER {
                0
            } else {
                provider as usize + 1
            };
            if start < self.config.num_tables {
                // Pick the first allocatable (useful == 0) table at or after
                // `start`, with a random skip to avoid ping-ponging.
                let skip = (self.next_alloc() as usize) % 2;
                let mut allocated = false;
                let mut skipped = skip;
                for t in start..self.config.num_tables {
                    let idx = meta.words[t] as usize;
                    if self.tables[t][idx].useful == 0 {
                        if skipped > 0 && t + 1 < self.config.num_tables {
                            skipped -= 1;
                            continue;
                        }
                        let tag = ((meta.words[6 + t / 2] >> (16 * (t % 2))) & 0xffff) as u16;
                        self.tables[t][idx] = TageEntry {
                            tag,
                            ctr: if taken { 4 } else { 3 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay useful counters on allocation failure.
                    for t in start..self.config.num_tables {
                        let idx = meta.words[t] as usize;
                        let e = &mut self.tables[t][idx];
                        if e.useful > 0 {
                            e.useful -= 1;
                        }
                    }
                }
            }
            // Repair the speculative history.
            self.hist = Self::shift_history(meta.hist, taken);
        }

        // Graceful aging of useful bits.
        if self.update_count.is_multiple_of(AGING_PERIOD) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "tage"
    }

    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        self.hist = Self::shift_history(meta.hist, taken);
    }

    fn storage_bits(&self) -> usize {
        let per_entry = 3 + 2 + self.config.tag_bits as usize;
        self.tables.len() * (1 << self.config.log_entries) * per_entry
            + self.base.storage_bits()
            + self.config.max_hist as usize
    }

    fn reset(&mut self) {
        for t in &mut self.tables {
            t.fill(TageEntry::default());
        }
        self.base.reset();
        self.hist = [0; 2];
        self.update_count = 0;
        self.alloc_seed = 0xace1;
        for c in &mut self.use_alt_on_na {
            *c = SaturatingCounter::new(4);
        }
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn spec_words(&self, out: &mut Vec<u64>) {
        out.push(self.hist[0]);
        out.push(self.hist[1]);
        out.push(u64::from(self.alloc_seed));
    }

    fn probe_cells(&self, pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        self.probe_tage_cells(pc, meta, out);
    }

    fn replay_advance(&mut self, _pc: u64, meta: &PredMeta) {
        self.hist = Self::shift_history(meta.hist, meta.taken);
    }

    fn replay_guard(&self) -> u64 {
        AGING_PERIOD - (self.update_count % AGING_PERIOD)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    trip: u16,
    current: u16,
    conf: u8,
}

/// An ISL-TAGE-style predictor: TAGE plus a loop predictor and a small
/// statistical corrector (the 64 KB top rung of the paper's §5.3 ladder).
#[derive(Clone, Debug)]
pub struct IslTage {
    tage: Tage,
    loops: Vec<LoopEntry>,
    corrector: Vec<SaturatingCounter>,
}

impl IslTage {
    /// The 64 KB configuration referenced by the paper.
    pub fn storage_64kb() -> Self {
        IslTage {
            tage: Tage::new(TageConfig::storage_64kb()),
            loops: vec![LoopEntry::default(); 256],
            corrector: vec![SaturatingCounter::new(5); 4096],
        }
    }

    fn loop_index(pc: u64) -> usize {
        (fold_pc(pc) & 0xff) as usize
    }

    fn loop_tag(pc: u64) -> u16 {
        ((fold_pc(pc) >> 8) & 0x3fff) as u16
    }

    fn corrector_index(&self, pc: u64, pred: bool) -> usize {
        ((fold_pc(pc).wrapping_mul(0x9e3779b1) >> 7) as usize ^ usize::from(pred))
            & (self.corrector.len() - 1)
    }
}

impl DirectionPredictor for IslTage {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let mut meta = self.tage.predict(pc);
        let tage_pred = meta.taken;

        // Loop predictor: override when a confident loop entry predicts the
        // exit iteration.
        let li = Self::loop_index(pc);
        let e = self.loops[li];
        let mut used_loop = false;
        let mut final_pred = tage_pred;
        if e.tag == Self::loop_tag(pc) && e.conf >= 3 && e.trip > 0 {
            used_loop = true;
            final_pred = e.current < e.trip;
        }

        // Statistical corrector: flip low-confidence predictions that are
        // strongly anti-correlated with the outcome.
        let ci = self.corrector_index(pc, final_pred);
        let c = &self.corrector[ci];
        let mut used_corrector = false;
        if c.is_saturated() && c.taken() != final_pred {
            used_corrector = true;
            final_pred = c.taken();
        }

        meta.taken = final_pred;
        meta.words[10] = (used_loop as u32)
            | ((used_corrector as u32) << 1)
            | ((tage_pred as u32) << 2)
            | ((li as u32) << 8)
            | ((ci as u32) << 16);
        // The TAGE speculative history shifted in `tage_pred`; keep it
        // consistent with the final prediction.
        if final_pred != tage_pred {
            self.tage.hist = Tage::shift_history(meta.hist, final_pred);
        }
        meta
    }

    fn update(&mut self, pc: u64, meta: &PredMeta, taken: bool) {
        let tage_pred = meta.words[10] & 4 != 0;
        // Train TAGE with a meta whose `taken` is the TAGE prediction so its
        // own mispredict/allocation logic sees its own outcome, then repair
        // the history against the *final* outcome.
        let mut tage_meta = *meta;
        tage_meta.taken = tage_pred;
        self.tage.update(pc, &tage_meta, taken);
        if meta.taken != taken || tage_pred != taken {
            self.tage.hist = Tage::shift_history(meta.hist, taken);
        }

        // Loop predictor training.
        let li = ((meta.words[10] >> 8) & 0xff) as usize;
        let e = &mut self.loops[li];
        let tag = Self::loop_tag(pc);
        if e.tag != tag {
            // Adopt the slot when it has no confidence.
            if e.conf == 0 {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    conf: 0,
                };
            }
        }
        if e.tag == tag {
            if taken {
                e.current = e.current.saturating_add(1);
            } else {
                if e.trip == e.current && e.trip > 0 {
                    if e.conf < 3 {
                        e.conf += 1;
                    }
                } else {
                    e.trip = e.current;
                    e.conf = if e.trip > 0 { 1 } else { 0 };
                }
                e.current = 0;
            }
        }

        // Corrector training.
        let ci = ((meta.words[10] >> 16) & 0xffff) as usize;
        self.corrector[ci].train(taken);
    }

    fn name(&self) -> &'static str {
        "isl-tage-64KB"
    }

    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        self.tage.hist = Tage::shift_history(meta.hist, taken);
    }

    fn storage_bits(&self) -> usize {
        self.tage.storage_bits() + self.loops.len() * (14 + 16 + 16 + 2) + self.corrector.len() * 5
    }

    fn reset(&mut self) {
        self.tage.reset();
        self.loops.fill(LoopEntry::default());
        for c in &mut self.corrector {
            *c = SaturatingCounter::new(5);
        }
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn spec_words(&self, out: &mut Vec<u64>) {
        self.tage.spec_words(out);
    }

    fn probe_cells(&self, pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        self.tage.probe_tage_cells(pc, meta, out);
        let li = ((meta.words[10] >> 8) & 0xff) as usize;
        let e = self.loops[li];
        let packed = u64::from(e.tag)
            | (u64::from(e.trip) << 16)
            | (u64::from(e.current) << 32)
            | (u64::from(e.conf) << 48);
        out.push((cell_id(8, li as u64), packed));
        let ci = ((meta.words[10] >> 16) & 0xffff) as usize;
        out.push((cell_id(9, ci as u64), u64::from(self.corrector[ci].value())));
    }

    fn replay_advance(&mut self, _pc: u64, meta: &PredMeta) {
        // `predict` shifts the TAGE history by its own prediction, then
        // re-shifts from the snapshot when the loop/corrector overrides —
        // the net effect is always a shift-in of the final prediction.
        self.tage.hist = Tage::shift_history(meta.hist, meta.taken);
    }

    fn replay_guard(&self) -> u64 {
        self.tage.replay_guard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn late_accuracy<P: DirectionPredictor>(p: &mut P, pc: u64, pattern: &[bool], n: usize) -> f64 {
        let mut correct = 0usize;
        let tail = n - n / 4;
        for i in 0..n {
            let taken = pattern[i % pattern.len()];
            let m = p.predict(pc);
            if i >= tail && m.taken == taken {
                correct += 1;
            }
            p.update(pc, &m, taken);
        }
        correct as f64 / (n / 4) as f64
    }

    #[test]
    fn hist_lengths_are_geometric_and_bounded() {
        let c = TageConfig::storage_32kb();
        assert_eq!(c.hist_len(0), c.min_hist);
        assert_eq!(c.hist_len(c.num_tables - 1), c.max_hist);
        for t in 1..c.num_tables {
            assert!(c.hist_len(t) > c.hist_len(t - 1));
        }
    }

    #[test]
    fn fold_hist_respects_length() {
        // Bits beyond `len` must not affect the fold.
        let h1 = [0b1010u64, 0];
        let h2 = [0b1111_1010u64, 0];
        assert_eq!(Tage::fold_hist(h1, 4, 8), Tage::fold_hist(h2, 4, 8));
        assert_ne!(Tage::fold_hist(h1, 8, 8), Tage::fold_hist(h2, 8, 8));
    }

    #[test]
    fn fold_hist_uses_high_word() {
        let mut h1 = [u64::MAX, 0];
        let h2 = [u64::MAX, 1];
        assert_ne!(Tage::fold_hist(h1, 128, 10), Tage::fold_hist(h2, 128, 10));
        h1[1] = 1;
        assert_eq!(Tage::fold_hist(h1, 128, 10), Tage::fold_hist(h2, 128, 10));
    }

    #[test]
    fn tage_learns_long_patterns_gshare_cannot() {
        // Period-24 pattern needs long history correlation.
        let mut pattern = vec![true; 23];
        pattern.push(false);
        let mut tage = Tage::new(TageConfig::storage_32kb());
        let acc = late_accuracy(&mut tage, 0x4000, &pattern, 30_000);
        assert!(acc > 0.97, "tage on period-24: {acc}");
    }

    #[test]
    fn tage_learns_biased_branches() {
        let mut tage = Tage::new(TageConfig::storage_32kb());
        let acc = late_accuracy(&mut tage, 0x4000, &[true], 2000);
        assert!(acc > 0.99, "tage on bias: {acc}");
    }

    /// TAGE's replay digest (`spec_words`: both 128-bit history words
    /// plus the allocation seed) must separate states whose predictions
    /// can diverge, and must be identical for identically driven
    /// predictors — the property the steady-state replay signature
    /// relies on.
    #[test]
    fn replay_digest_separates_tage_histories() {
        let mut a = Tage::new(TageConfig::storage_32kb());
        let mut b = Tage::new(TageConfig::storage_32kb());
        for i in 0..64u64 {
            let ma = a.predict(0x4000);
            a.update(0x4000, &ma, true);
            let mb = b.predict(0x4000);
            b.update(0x4000, &mb, i % 2 == 0);
        }
        let (mut da, mut db) = (Vec::new(), Vec::new());
        a.spec_words(&mut da);
        b.spec_words(&mut db);
        assert_ne!(da, db, "distinct TAGE histories must digest differently");
        let mut c = Tage::new(TageConfig::storage_32kb());
        for _ in 0..64 {
            let mc = c.predict(0x4000);
            c.update(0x4000, &mc, true);
        }
        let mut dc = Vec::new();
        c.spec_words(&mut dc);
        assert_eq!(da, dc, "identical TAGE histories must digest identically");
        // The digest also separates histories long past gshare's reach:
        // flip only the 100th-most-recent outcome.
        let drive = |flip: bool| {
            let mut p = Tage::new(TageConfig::storage_32kb());
            for i in 0..128u64 {
                let m = p.predict(0x4000);
                p.update(0x4000, &m, if i == 28 { flip } else { i % 3 == 0 });
            }
            let mut d = Vec::new();
            p.spec_words(&mut d);
            d
        };
        assert_ne!(
            drive(false),
            drive(true),
            "a single outcome 100 branches back must still change the digest"
        );
    }

    /// `replay_advance` reproduces `predict`'s speculative-history shift
    /// exactly, including across the 64-bit word boundary of the 128-bit
    /// history.
    #[test]
    fn tage_replay_advance_matches_predict_side_effect() {
        let mut p = Tage::new(TageConfig::storage_32kb());
        for i in 0..100u64 {
            let m = p.predict(0x4000);
            p.update(0x4000, &m, i % 5 != 0);
        }
        let mut shadow = p.clone();
        let m = p.predict(0x4000);
        shadow.replay_advance(0x4000, &m);
        let (mut dp, mut ds) = (Vec::new(), Vec::new());
        p.spec_words(&mut dp);
        shadow.spec_words(&mut ds);
        assert_eq!(dp, ds);
    }

    #[test]
    fn isl_tage_loop_predictor_catches_fixed_trip_loops() {
        // A loop that runs exactly 37 iterations: TAGE with 128-bit history
        // can also catch this, so instead verify the loop table itself
        // converges (confidence saturates and trip count is learned).
        let mut p = IslTage::storage_64kb();
        let pc = 0x7700;
        for _ in 0..50 {
            for i in 0..37 {
                let taken = i < 36; // exit on iteration 37
                let m = p.predict(pc);
                p.update(pc, &m, taken);
            }
        }
        let e = p.loops[IslTage::loop_index(pc)];
        assert_eq!(e.trip, 36);
        assert!(e.conf >= 3);
        // And the final prediction stream should be essentially perfect.
        let mut correct = 0;
        for i in 0..370 {
            let taken = i % 37 < 36;
            let m = p.predict(pc);
            correct += (m.taken == taken) as u32;
            p.update(pc, &m, taken);
        }
        assert!(correct >= 365, "loop accuracy {correct}/370");
    }

    #[test]
    fn ladder_is_monotone_on_a_mixed_stream() {
        // A workload with a patterned branch + biased branch + loop exit:
        // accuracy must not decrease up the ladder.
        fn run(p: &mut dyn DirectionPredictor) -> f64 {
            let mut correct = 0u32;
            let mut total = 0u32;
            let mut lfsr = 0xdeadbeefu64;
            for i in 0..40_000u64 {
                // patterned
                let t1 = [true, false, false, true, true, false][i as usize % 6];
                let m1 = p.predict(0x100);
                correct += (m1.taken == t1) as u32;
                p.update(0x100, &m1, t1);
                // biased 90/10 (pseudo-random)
                lfsr ^= lfsr << 13;
                lfsr ^= lfsr >> 7;
                lfsr ^= lfsr << 17;
                let t2 = !lfsr.is_multiple_of(10);
                let m2 = p.predict(0x200);
                correct += (m2.taken == t2) as u32;
                p.update(0x200, &m2, t2);
                // loop of trip 12
                let t3 = i % 12 != 11;
                let m3 = p.predict(0x300);
                correct += (m3.taken == t3) as u32;
                p.update(0x300, &m3, t3);
                total += 3;
            }
            f64::from(correct) / f64::from(total)
        }
        let mut bimodal = crate::Bimodal::new(4096);
        let mut gshare = crate::Gshare::new(4096, 12);
        let mut tage = Tage::new(TageConfig::storage_32kb());
        let mut isl = IslTage::storage_64kb();
        let a_bi = run(&mut bimodal);
        let a_gs = run(&mut gshare);
        let a_tage = run(&mut tage);
        let a_isl = run(&mut isl);
        assert!(a_gs > a_bi, "gshare {a_gs} vs bimodal {a_bi}");
        assert!(a_tage >= a_gs - 0.005, "tage {a_tage} vs gshare {a_gs}");
        assert!(a_isl >= a_tage - 0.005, "isl {a_isl} vs tage {a_tage}");
        // Theoretical ceiling ≈ 0.967: the 90/10 branch is genuinely random.
        assert!(a_isl > 0.95, "isl-tage absolute accuracy {a_isl}");
    }

    #[test]
    fn storage_budgets_are_close_to_nominal() {
        let t32 = Tage::new(TageConfig::storage_32kb());
        let bits = t32.storage_bits();
        assert!(
            (24 * 8192..=40 * 8192).contains(&bits),
            "32KB TAGE actual bits: {bits}"
        );
        let isl = IslTage::storage_64kb();
        let bits = isl.storage_bits();
        assert!(
            (48 * 8192..=80 * 8192).contains(&bits),
            "64KB ISL-TAGE actual bits: {bits}"
        );
    }

    #[test]
    fn tage_history_repair_keeps_determinism() {
        // Two identical TAGEs fed the same stream, one with forced wrong
        // speculative updates (prediction differs), must converge to the
        // same history after repair.
        let mut a = Tage::new(TageConfig::storage_32kb());
        let outcomes = [true, false, true, true, false, false, true];
        for &t in &outcomes {
            let m = a.predict(0x500);
            a.update(0x500, &m, t);
        }
        // After in-order updates, history low bits must equal the outcome
        // stream regardless of prediction correctness.
        let want = outcomes.iter().fold(0u64, |acc, &t| (acc << 1) | t as u64);
        assert_eq!(a.hist[0] & 0x7f, want);
    }

    #[test]
    fn reset_restores_power_on() {
        let mut p = IslTage::storage_64kb();
        for _ in 0..100 {
            let m = p.predict(0x9);
            p.update(0x9, &m, true);
        }
        p.reset();
        let m = p.predict(0x9);
        assert!(!m.taken); // power-on state predicts not-taken
    }
}

//! Branch target buffer.

use crate::meta::fold_pc;

/// A BTB entry: tag plus predicted target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// Tag derived from the branch PC.
    pub tag: u32,
    /// Predicted target address.
    pub target: u64,
}

/// A direct-mapped branch target buffer (Table 1: 4K entries).
///
/// The hidden ISA encodes targets directly in `predict`/`branch`
/// instructions, so a translated machine could steer without a BTB; we model
/// it anyway because the baseline front end (and the simulator's
/// single-cycle redirect for taken branches) depends on target availability
/// at fetch, exactly as PTLSim's does.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<BtbEntry>>,
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Btb {
            entries: vec![None; entries],
            mask: (entries - 1) as u64,
        }
    }

    /// The paper's 4K-entry configuration.
    pub fn table1_default() -> Self {
        Btb::new(4096)
    }

    fn index(&self, pc: u64) -> usize {
        (fold_pc(pc) & self.mask) as usize
    }

    fn tag(pc: u64) -> u32 {
        ((pc >> 2) & 0xffff_ffff) as u32
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let e = self.entries[self.index(pc)]?;
        (e.tag == Self::tag(pc)).then_some(e.target)
    }

    /// Installs or refreshes the mapping `pc → target`.
    pub fn insert(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some(BtbEntry {
            tag: Self::tag(pc),
            target,
        });
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64);
        assert_eq!(btb.lookup(0x1000), None);
        btb.insert(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut btb = Btb::new(4); // tiny: force conflicts
        btb.insert(0x1000, 0xa);
        // Find a pc mapping to the same slot with a different tag.
        let mut other = 0x1010u64;
        while btb.index(other) != btb.index(0x1000) {
            other += 0x10;
        }
        btb.insert(other, 0xb);
        assert_eq!(btb.lookup(other), Some(0xb));
        assert_eq!(btb.lookup(0x1000), None, "evicted by conflict");
    }

    #[test]
    fn table1_default_has_4k_entries() {
        assert_eq!(Btb::table1_default().capacity(), 4096);
    }

    #[test]
    fn refresh_updates_target() {
        let mut btb = Btb::new(64);
        btb.insert(0x40, 0x100);
        btb.insert(0x40, 0x200);
        assert_eq!(btb.lookup(0x40), Some(0x200));
    }
}

//! Gshare and the PTLSim-style 3-table combined predictor.

use crate::meta::{cell_id, fold_pc, DirectionPredictor, PredMeta, SaturatingCounter};

/// Classic gshare: a table of 2-bit counters indexed by `PC ⊕ global
/// history`.
///
/// History is updated speculatively at prediction time and repaired from
/// the [`PredMeta`] snapshot when the resolution reports a misprediction —
/// the same recovery the paper's front end performs for branch history.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<SaturatingCounter>,
    mask: u64,
    hist_bits: u32,
    history: u64,
}

impl Gshare {
    /// Creates a gshare with `entries` counters and `hist_bits` bits of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `hist_bits > 63`.
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(hist_bits <= 63, "history too long");
        Gshare {
            table: vec![SaturatingCounter::new(2); entries],
            mask: (entries - 1) as u64,
            hist_bits,
            history: 0,
        }
    }

    fn index(&self, pc: u64, history: u64) -> usize {
        let h = history & ((1u64 << self.hist_bits) - 1);
        ((fold_pc(pc) ^ h) & self.mask) as usize
    }

    /// Current speculative global history (low bits are most recent).
    pub fn history(&self) -> u64 {
        self.history
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let idx = self.index(pc, self.history);
        let taken = self.table[idx].taken();
        let mut meta = PredMeta::taken_only(taken);
        meta.words[0] = idx as u32;
        meta.hist[0] = self.history;
        // Speculative history update with the prediction.
        self.history = (self.history << 1) | taken as u64;
        meta
    }

    fn update(&mut self, _pc: u64, meta: &PredMeta, taken: bool) {
        self.table[meta.words[0] as usize].train(taken);
        if meta.taken != taken {
            // Repair: rebuild history as if the branch had gone the right way.
            self.history = (meta.hist[0] << 1) | taken as u64;
        }
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        self.history = (meta.hist[0] << 1) | taken as u64;
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2 + self.hist_bits as usize
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = SaturatingCounter::new(2);
        }
        self.history = 0;
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn spec_words(&self, out: &mut Vec<u64>) {
        out.push(self.history);
    }

    fn probe_cells(&self, _pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        let idx = meta.words[0] as usize;
        out.push((cell_id(0, idx as u64), u64::from(self.table[idx].value())));
    }

    fn replay_advance(&mut self, _pc: u64, meta: &PredMeta) {
        self.history = (meta.hist[0] << 1) | meta.taken as u64;
    }
}

/// The PTLSim default direction predictor: three 8 KB tables (bimodal,
/// gshare, and a chooser), 24 KB total (Table 1 of the paper).
///
/// The chooser (meta) table selects per-PC between the bimodal and gshare
/// components and is trained only when the two disagree.
#[derive(Clone, Debug)]
pub struct Combined {
    bimodal: Vec<SaturatingCounter>,
    global: Vec<SaturatingCounter>,
    chooser: Vec<SaturatingCounter>,
    mask: u64,
    hist_bits: u32,
    history: u64,
}

impl Combined {
    /// Creates a combined predictor with `entries` counters per table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(hist_bits <= 63, "history too long");
        Combined {
            bimodal: vec![SaturatingCounter::new(2); entries],
            global: vec![SaturatingCounter::new(2); entries],
            chooser: vec![SaturatingCounter::new(2); entries],
            mask: (entries - 1) as u64,
            hist_bits,
            history: 0,
        }
    }

    /// The paper's baseline configuration: 24 KB split across three tables
    /// of 32 Ki 2-bit counters (8 KB each), 15 bits of global history.
    pub fn ptlsim_default() -> Self {
        Combined::new(32 * 1024, 15)
    }

    fn gshare_index(&self, pc: u64, history: u64) -> usize {
        let h = history & ((1u64 << self.hist_bits) - 1);
        ((fold_pc(pc) ^ h) & self.mask) as usize
    }

    fn pc_index(&self, pc: u64) -> usize {
        (fold_pc(pc) & self.mask) as usize
    }
}

impl DirectionPredictor for Combined {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let bi = self.pc_index(pc);
        let gi = self.gshare_index(pc, self.history);
        let ci = self.pc_index(pc);
        let b_pred = self.bimodal[bi].taken();
        let g_pred = self.global[gi].taken();
        let use_global = self.chooser[ci].taken();
        let taken = if use_global { g_pred } else { b_pred };
        let mut meta = PredMeta::taken_only(taken);
        meta.words[0] = bi as u32;
        meta.words[1] = gi as u32;
        meta.words[2] = ci as u32;
        meta.words[3] = (b_pred as u32) | ((g_pred as u32) << 1);
        meta.hist[0] = self.history;
        self.history = (self.history << 1) | taken as u64;
        meta
    }

    fn update(&mut self, _pc: u64, meta: &PredMeta, taken: bool) {
        let bi = meta.words[0] as usize;
        let gi = meta.words[1] as usize;
        let ci = meta.words[2] as usize;
        let b_pred = meta.words[3] & 1 != 0;
        let g_pred = meta.words[3] & 2 != 0;
        self.bimodal[bi].train(taken);
        self.global[gi].train(taken);
        // Train the chooser toward whichever component was right, but only
        // when they disagreed.
        if b_pred != g_pred {
            self.chooser[ci].train(g_pred == taken);
        }
        if meta.taken != taken {
            self.history = (meta.hist[0] << 1) | taken as u64;
        }
    }

    fn name(&self) -> &'static str {
        "gshare-24KB-3table"
    }

    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        self.history = (meta.hist[0] << 1) | taken as u64;
    }

    fn storage_bits(&self) -> usize {
        (self.bimodal.len() + self.global.len() + self.chooser.len()) * 2 + self.hist_bits as usize
    }

    fn reset(&mut self) {
        for t in [&mut self.bimodal, &mut self.global, &mut self.chooser] {
            for c in t.iter_mut() {
                *c = SaturatingCounter::new(2);
            }
        }
        self.history = 0;
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn spec_words(&self, out: &mut Vec<u64>) {
        out.push(self.history);
    }

    fn probe_cells(&self, _pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        let bi = meta.words[0] as usize;
        let gi = meta.words[1] as usize;
        let ci = meta.words[2] as usize;
        out.push((cell_id(0, bi as u64), u64::from(self.bimodal[bi].value())));
        out.push((cell_id(1, gi as u64), u64::from(self.global[gi].value())));
        out.push((cell_id(2, ci as u64), u64::from(self.chooser[ci].value())));
    }

    fn replay_advance(&mut self, _pc: u64, meta: &PredMeta) {
        self.history = (meta.hist[0] << 1) | meta.taken as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trains predictor `p` on a repeating pattern at one PC; returns the
    /// accuracy over the final quarter of `n` occurrences.
    fn late_accuracy<P: DirectionPredictor>(p: &mut P, pattern: &[bool], n: usize) -> f64 {
        let mut correct = 0usize;
        let tail_start = n - n / 4;
        for i in 0..n {
            let taken = pattern[i % pattern.len()];
            let m = p.predict(0x1234);
            if i >= tail_start && m.taken == taken {
                correct += 1;
            }
            p.update(0x1234, &m, taken);
        }
        correct as f64 / (n / 4) as f64
    }

    #[test]
    fn gshare_learns_short_patterns() {
        let mut p = Gshare::new(4096, 12);
        let acc = late_accuracy(&mut p, &[true, true, false], 2000);
        assert!(acc > 0.95, "gshare should learn a TTN pattern, got {acc}");
    }

    #[test]
    fn gshare_beats_bimodal_on_alternation() {
        let mut g = Gshare::new(4096, 12);
        let acc = late_accuracy(&mut g, &[true, false], 2000);
        assert!(acc > 0.95, "gshare accuracy on alternation: {acc}");
    }

    #[test]
    fn gshare_history_repair_on_mispredict() {
        let mut p = Gshare::new(64, 8);
        let m = p.predict(0x100);
        // The speculative history shifted in the prediction…
        assert_eq!(p.history() & 1, m.taken as u64);
        // …but resolving the other way must repair it.
        p.update(0x100, &m, !m.taken);
        assert_eq!(p.history() & 1, (!m.taken) as u64);
        assert_eq!(p.history() >> 1, m.hist[0]);
    }

    /// The replay signature must separate predictor states that can
    /// predict differently: two gshares fed different outcome streams
    /// carry different global histories, and `spec_words` must expose
    /// that (the steady-state replay layer hashes these words into the
    /// iteration signature).
    #[test]
    fn replay_digest_separates_histories() {
        let mut a = Gshare::new(4096, 12);
        let mut b = Gshare::new(4096, 12);
        for i in 0..32u64 {
            let ma = a.predict(0x1234);
            a.update(0x1234, &ma, true);
            let mb = b.predict(0x1234);
            b.update(0x1234, &mb, i % 2 == 0);
        }
        let (mut da, mut db) = (Vec::new(), Vec::new());
        a.spec_words(&mut da);
        b.spec_words(&mut db);
        assert_ne!(da, db, "distinct histories must digest differently");
        // And identically driven predictors digest identically, so the
        // signature is stable across iterations of a converged loop.
        let mut c = Gshare::new(4096, 12);
        for _ in 0..32 {
            let mc = c.predict(0x1234);
            c.update(0x1234, &mc, true);
        }
        let mut dc = Vec::new();
        c.spec_words(&mut dc);
        assert_eq!(da, dc, "identical histories must digest identically");
    }

    /// `replay_advance` must reproduce exactly the speculative-history
    /// side effect of `predict` — replayed iterations substitute one for
    /// the other.
    #[test]
    fn replay_advance_matches_predict_side_effect() {
        for seed in 0..4u64 {
            let mut p = Gshare::new(256, 8);
            for i in 0..16u64 {
                let m = p.predict(0x40);
                p.update(0x40, &m, (i ^ seed) % 3 != 0);
            }
            let mut shadow = p.clone();
            let m = p.predict(0x40);
            shadow.replay_advance(0x40, &m);
            let (mut dp, mut ds) = (Vec::new(), Vec::new());
            p.spec_words(&mut dp);
            shadow.spec_words(&mut ds);
            assert_eq!(dp, ds, "seed {seed}");
        }
    }

    #[test]
    fn combined_ptlsim_default_is_24kb() {
        let p = Combined::ptlsim_default();
        // 3 tables × 32Ki × 2 bits = 192 Kibit = 24 KiB (+15 history bits).
        assert_eq!(p.storage_bits(), 3 * 32 * 1024 * 2 + 15);
    }

    #[test]
    fn combined_learns_biased_and_patterned_branches() {
        let mut p = Combined::new(4096, 12);
        let acc_pat = late_accuracy(&mut p, &[true, false, false, true], 4000);
        assert!(acc_pat > 0.9, "combined on pattern: {acc_pat}");
        let mut p2 = Combined::new(4096, 12);
        let acc_bias = late_accuracy(&mut p2, &[true], 400);
        assert!(acc_bias > 0.99, "combined on bias: {acc_bias}");
    }

    #[test]
    fn combined_chooser_prefers_the_better_component() {
        // Alternation: bimodal is ~50%, gshare ~100%. After training, the
        // combined predictor must reach gshare-level accuracy.
        let mut p = Combined::new(4096, 12);
        let acc = late_accuracy(&mut p, &[true, false], 4000);
        assert!(acc > 0.95, "combined on alternation: {acc}");
    }

    #[test]
    fn combined_history_repair() {
        let mut p = Combined::new(64, 8);
        let m = p.predict(0x40);
        p.update(0x40, &m, !m.taken);
        // History low bit reflects the actual outcome after repair.
        let m2 = p.predict(0x44);
        assert_eq!(m2.hist[0] & 1, (!m.taken) as u64);
    }

    #[test]
    fn reset_clears_learning() {
        let mut p = Combined::new(256, 8);
        for _ in 0..32 {
            let m = p.predict(0x10);
            p.update(0x10, &m, true);
        }
        p.reset();
        assert!(!p.predict(0x10).taken);
    }
}

//! PC-indexed bimodal predictor (Smith predictor).

use crate::meta::{cell_id, fold_pc, DirectionPredictor, PredMeta, SaturatingCounter};

/// A table of 2-bit saturating counters indexed by PC.
///
/// The weakest rung of the §5.3 sensitivity ladder and the base component
/// of [`crate::Combined`] and [`crate::Tage`].
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            table: vec![SaturatingCounter::new(2); entries],
            mask: (entries - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (fold_pc(pc) & self.mask) as usize
    }

    /// Peeks the direction without producing metadata (used as a TAGE base).
    pub fn peek(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    /// Trains the entry for `pc` directly (used as a TAGE base).
    pub fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }

    /// Replay digest of the one cell a prediction at `pc` touches, under
    /// the caller-chosen `table` namespace (used standalone and as the
    /// TAGE base).
    pub(crate) fn probe_cell(&self, table: u64, pc: u64, out: &mut Vec<(u64, u64)>) {
        let i = self.index(pc);
        out.push((cell_id(table, i as u64), u64::from(self.table[i].value())));
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let i = self.index(pc);
        let mut meta = PredMeta::taken_only(self.table[i].taken());
        meta.words[0] = i as u32;
        meta
    }

    fn update(&mut self, _pc: u64, meta: &PredMeta, taken: bool) {
        self.table[meta.words[0] as usize].train(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = SaturatingCounter::new(2);
        }
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn probe_cells(&self, pc: u64, _meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        self.probe_cell(0, pc, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias_quickly() {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            let m = p.predict(0x100);
            p.update(0x100, &m, true);
        }
        assert!(p.predict(0x100).taken);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            let m = p.predict(0x100);
            p.update(0x100, &m, true);
        }
        // An untouched PC still starts at the weakly-not-taken default.
        assert!(!p.predict(0x900).taken);
    }

    #[test]
    fn cannot_learn_alternation() {
        // A bimodal predictor on a strict T/NT alternation converges to
        // ~50% accuracy — the motivating failure TAGE-class predictors fix.
        let mut p = Bimodal::new(64);
        let mut correct = 0;
        for i in 0..1000 {
            let taken = i % 2 == 0;
            let m = p.predict(0x40);
            correct += (m.taken == taken) as u32;
            p.update(0x40, &m, taken);
        }
        assert!(
            correct <= 600,
            "bimodal should not learn alternation, got {correct}"
        );
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Bimodal::new(4096).storage_bits(), 8192);
    }

    #[test]
    fn reset_restores_default_state() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            let m = p.predict(0x8);
            p.update(0x8, &m, true);
        }
        p.reset();
        assert!(!p.predict(0x8).taken);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(1000);
    }
}

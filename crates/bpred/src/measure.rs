//! Predictor accuracy measurement over outcome streams.

use crate::meta::DirectionPredictor;

/// Result of [`measure_accuracy`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccuracyReport {
    /// Total predictions measured.
    pub total: u64,
    /// Correct predictions.
    pub correct: u64,
    /// Taken outcomes (for bias computation).
    pub taken: u64,
}

impl AccuracyReport {
    /// Prediction accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Branch bias: the frequency of the *more common* direction, in
    /// `[0.5, 1]` (the paper's notion of bias — a 60/40 branch has 0.6).
    pub fn bias(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let t = self.taken as f64 / self.total as f64;
        t.max(1.0 - t)
    }

    /// Mispredictions per thousand predictions.
    pub fn mpki_like(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.correct) as f64 * 1000.0 / self.total as f64
    }
}

/// Feeds `(pc, outcome)` pairs through a predictor and measures accuracy,
/// skipping the first `warmup` events.
pub fn measure_accuracy<P, I>(predictor: &mut P, stream: I, warmup: u64) -> AccuracyReport
where
    P: DirectionPredictor + ?Sized,
    I: IntoIterator<Item = (u64, bool)>,
{
    let mut report = AccuracyReport::default();
    for (i, (pc, taken)) in stream.into_iter().enumerate() {
        let meta = predictor.predict(pc);
        predictor.update(pc, &meta, taken);
        if (i as u64) >= warmup {
            report.total += 1;
            report.taken += taken as u64;
            report.correct += (meta.taken == taken) as u64;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gshare::Gshare;

    #[test]
    fn perfect_pattern_measures_near_one() {
        let mut p = Gshare::new(4096, 12);
        let stream = (0..4000u64).map(|i| (0x100u64, i % 3 == 0));
        let r = measure_accuracy(&mut p, stream, 1000);
        assert!(r.accuracy() > 0.95, "{}", r.accuracy());
        assert_eq!(r.total, 3000);
    }

    #[test]
    fn bias_is_majority_direction() {
        let r = AccuracyReport {
            total: 100,
            correct: 0,
            taken: 40,
        };
        assert!((r.bias() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_safe() {
        let r = AccuracyReport::default();
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.bias(), 0.0);
        assert_eq!(r.mpki_like(), 0.0);
    }

    #[test]
    fn mpki_like_counts_misses() {
        let r = AccuracyReport {
            total: 1000,
            correct: 950,
            taken: 500,
        };
        assert!((r.mpki_like() - 50.0).abs() < 1e-9);
    }
}

//! Local-history two-level (PAg-style) predictor.

use crate::meta::{cell_id, fold_pc, DirectionPredictor, PredMeta, SaturatingCounter};

/// Two-level predictor with per-branch local history (PAg).
///
/// A first-level table of per-PC local history registers indexes a shared
/// second-level pattern-history table of 2-bit counters. Local history
/// captures per-branch periodic behaviour that global-history gshare can
/// miss when unrelated branches pollute the history register; it sits
/// between gshare and TAGE on the §5.3 accuracy ladder.
#[derive(Clone, Debug)]
pub struct TwoLevel {
    histories: Vec<u16>,
    pht: Vec<SaturatingCounter>,
    hist_mask: u16,
    l1_mask: u64,
    pht_mask: u64,
}

impl TwoLevel {
    /// Creates a two-level predictor.
    ///
    /// * `l1_entries` — number of local-history registers.
    /// * `hist_bits` — bits per local history (≤ 16).
    /// * `pht_entries` — pattern-history-table counters.
    ///
    /// # Panics
    ///
    /// Panics unless both table sizes are powers of two and
    /// `hist_bits <= 16`.
    pub fn new(l1_entries: usize, hist_bits: u32, pht_entries: usize) -> Self {
        assert!(
            l1_entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(
            pht_entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(hist_bits <= 16, "local history too long");
        TwoLevel {
            histories: vec![0; l1_entries],
            pht: vec![SaturatingCounter::new(2); pht_entries],
            hist_mask: ((1u32 << hist_bits) - 1) as u16,
            l1_mask: (l1_entries - 1) as u64,
            pht_mask: (pht_entries - 1) as u64,
        }
    }

    fn l1_index(&self, pc: u64) -> usize {
        (fold_pc(pc) & self.l1_mask) as usize
    }

    fn pht_index(&self, pc: u64, local: u16) -> usize {
        ((fold_pc(pc) ^ u64::from(local).rotate_left(3)) & self.pht_mask) as usize
    }
}

impl DirectionPredictor for TwoLevel {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let l1 = self.l1_index(pc);
        let local = self.histories[l1];
        let pi = self.pht_index(pc, local);
        let taken = self.pht[pi].taken();
        let mut meta = PredMeta::taken_only(taken);
        meta.words[0] = l1 as u32;
        meta.words[1] = pi as u32;
        meta.words[2] = u32::from(local);
        // Local histories update non-speculatively at resolution (the
        // classic retire-time design): wrong-path fetches would otherwise
        // pollute other PCs' histories beyond what a flush can repair.
        meta
    }

    fn update(&mut self, _pc: u64, meta: &PredMeta, taken: bool) {
        self.pht[meta.words[1] as usize].train(taken);
        let l1 = meta.words[0] as usize;
        let local = meta.words[2] as u16;
        self.histories[l1] = ((local << 1) | taken as u16) & self.hist_mask;
    }

    fn name(&self) -> &'static str {
        "two-level-local"
    }

    fn storage_bits(&self) -> usize {
        self.histories.len() * (self.hist_mask.count_ones() as usize) + self.pht.len() * 2
    }

    fn reset(&mut self) {
        self.histories.fill(0);
        for c in &mut self.pht {
            *c = SaturatingCounter::new(2);
        }
    }

    fn replay_supported(&self) -> bool {
        true
    }

    fn probe_cells(&self, _pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        // `predict` is pure (local history updates at resolution), so the
        // whole digest is the two cells the resolution trains. The local
        // history is a cell, which is what makes the data-dependent
        // pht_index reproducible at replay time.
        let l1 = meta.words[0] as usize;
        let pi = meta.words[1] as usize;
        out.push((cell_id(0, l1 as u64), u64::from(self.histories[l1])));
        out.push((cell_id(1, pi as u64), u64::from(self.pht[pi].value())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn late_accuracy<P: DirectionPredictor>(p: &mut P, pc: u64, pattern: &[bool], n: usize) -> f64 {
        let mut correct = 0usize;
        let tail = n - n / 4;
        for i in 0..n {
            let taken = pattern[i % pattern.len()];
            let m = p.predict(pc);
            if i >= tail && m.taken == taken {
                correct += 1;
            }
            p.update(pc, &m, taken);
        }
        correct as f64 / (n / 4) as f64
    }

    #[test]
    fn learns_periodic_local_patterns() {
        let mut p = TwoLevel::new(1024, 10, 4096);
        let acc = late_accuracy(&mut p, 0x77c, &[true, true, true, false], 4000);
        assert!(acc > 0.95, "two-level on period-4 pattern: {acc}");
    }

    #[test]
    fn immune_to_interleaved_noise_branches() {
        // A patterned branch interleaved with a 50/50 branch at another PC:
        // local history keeps the patterned branch predictable.
        let mut p = TwoLevel::new(1024, 10, 4096);
        let mut noise_state = 0x9e3779b97f4a7c15u64;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..6000 {
            // Patterned branch.
            let taken = [true, false, false][i % 3];
            let m = p.predict(0x400);
            if i > 4500 {
                total += 1;
                correct += (m.taken == taken) as u32;
            }
            p.update(0x400, &m, taken);
            // Noise branch.
            noise_state ^= noise_state << 13;
            noise_state ^= noise_state >> 7;
            noise_state ^= noise_state << 17;
            let nt = noise_state & 1 == 0;
            let nm = p.predict(0x800);
            p.update(0x800, &nm, nt);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "two-level under noise: {acc}");
    }

    #[test]
    fn history_repair_on_mispredict() {
        let mut p = TwoLevel::new(64, 8, 256);
        let m = p.predict(0x10);
        p.update(0x10, &m, !m.taken);
        let m2 = p.predict(0x10);
        assert_eq!(m2.words[2] as u16 & 1, (!m.taken) as u16);
    }

    #[test]
    fn storage_accounting() {
        let p = TwoLevel::new(1024, 10, 4096);
        assert_eq!(p.storage_bits(), 1024 * 10 + 4096 * 2);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = TwoLevel::new(64, 8, 256);
        for _ in 0..32 {
            let m = p.predict(0x20);
            p.update(0x20, &m, true);
        }
        p.reset();
        assert!(!p.predict(0x20).taken);
    }
}

//! Return address stack.

/// A circular return-address stack (Table 1: 64 entries).
///
/// Overflow wraps and silently overwrites the oldest entry; underflow
/// returns `None` (the front end then falls back to a not-taken fetch and
/// relies on the back end to redirect).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ras {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// The paper's 64-entry configuration.
    pub fn table1_default() -> Self {
        Ras::new(64)
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        if self.depth < self.entries.len() {
            self.depth += 1;
        }
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Resets to power-on state (all entries zero, empty) without
    /// reallocating — used by the front end's misprediction flush, which
    /// rebuilds the RAS from the restored call stack every redirect.
    pub fn clear(&mut self) {
        self.entries.fill(0);
        self.top = 0;
        self.depth = 0;
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        // The oldest entry was lost to the wrap; depth is exhausted.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn default_capacity_matches_table1() {
        assert_eq!(Ras::table1_default().capacity(), 64);
    }

    #[test]
    fn depth_tracks_pushes_and_pops() {
        let mut ras = Ras::new(4);
        assert_eq!(ras.depth(), 0);
        ras.push(9);
        assert_eq!(ras.depth(), 1);
        ras.pop();
        assert_eq!(ras.depth(), 0);
    }
}

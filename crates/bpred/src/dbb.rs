//! The Decomposed Branch Buffer (DBB) — §4 and Figure 7 of the paper.

use crate::meta::PredMeta;

/// Number of DBB entries; the paper sizes it empirically at 16 ("more than
/// sufficient" given in-order back-pressure), giving a 4-bit index carried
/// by resolution instructions.
pub const DBB_ENTRIES: usize = 16;

/// One DBB entry: the prediction made for a `predict` instruction plus the
/// predictor metadata needed for a later update.
///
/// The paper's implementation packs 24 bits per entry (16 bits of predictor
/// indices + 8 bits of metadata); this model carries the full [`PredMeta`]
/// but reports the hardware size via [`DecomposedBranchBuffer::entry_bits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbbEntry {
    /// PC of the `predict` instruction (for statistics; the hardware does
    /// not need it because the metadata already encodes the table indices).
    pub predict_pc: u64,
    /// Prediction + predictor-update metadata.
    pub meta: PredMeta,
    /// Valid bit (cleared by [`DecomposedBranchBuffer::invalidate_all`]).
    pub valid: bool,
}

/// A small circular buffer in the front end that re-associates each
/// `resolve` instruction with the prediction metadata of its `predict`
/// instruction.
///
/// Operation (Figure 7):
///
/// 1. **Insert** — when a `predict` is detected after decode, the tail
///    pointer is incremented and the prediction plus predictor metadata are
///    written at the tail ([`insert`](Self::insert)).
/// 2. **Tag** — when the corresponding `resolve` is fetched, the current
///    tail index is read and carried down the pipeline with it
///    ([`tail`](Self::tail)).
/// 3. **Update** — if the resolve detects a misprediction, the carried
///    index reads the entry back so the predictor can be trained
///    ([`get`](Self::get)); correct resolutions also train using the same
///    entry.
///
/// On a *non-decomposed* branch misprediction the tail must be recovered
/// along with branch history ([`recover_tail`](Self::recover_tail)); on
/// exceptional control flow entries may be invalidated wholesale
/// ([`invalidate_all`](Self::invalidate_all)).
#[derive(Clone, Debug)]
pub struct DecomposedBranchBuffer {
    entries: Vec<Option<DbbEntry>>,
    tail: usize,
    inserts: u64,
    spurious: u64,
}

impl Default for DecomposedBranchBuffer {
    fn default() -> Self {
        Self::new(DBB_ENTRIES)
    }
}

impl DecomposedBranchBuffer {
    /// Creates a DBB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two (the tail is a wrapping
    /// index).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "DBB size must be a power of two");
        DecomposedBranchBuffer {
            entries: vec![None; entries],
            tail: 0,
            inserts: 0,
            spurious: 0,
        }
    }

    /// Inserts the metadata for a just-predicted `predict` instruction and
    /// returns the index it was written to (the new tail).
    pub fn insert(&mut self, predict_pc: u64, meta: PredMeta) -> usize {
        self.tail = (self.tail + 1) & (self.entries.len() - 1);
        self.entries[self.tail] = Some(DbbEntry {
            predict_pc,
            meta,
            valid: true,
        });
        self.inserts += 1;
        self.tail
    }

    /// The current tail index — read at decode of a `resolve` instruction
    /// and carried down the pipeline with it.
    pub fn tail(&self) -> usize {
        self.tail
    }

    /// Reads the entry at `index`. Returns `None` for never-written or
    /// invalidated slots (a *spurious* association, counted for the §4
    /// discussion of exceptional control flow).
    pub fn get(&mut self, index: usize) -> Option<DbbEntry> {
        match self.entries[index] {
            Some(e) if e.valid => Some(e),
            _ => {
                self.spurious += 1;
                None
            }
        }
    }

    /// Restores the tail pointer after a non-decomposed branch
    /// misprediction (younger, wrong-path `predict`s are abandoned).
    pub fn recover_tail(&mut self, tail: usize) {
        self.tail = tail & (self.entries.len() - 1);
    }

    /// Marks every entry invalid (the paper's second option for handling
    /// interrupts/exceptions/context switches, suppressing spurious
    /// predictor updates).
    pub fn invalidate_all(&mut self) {
        for e in self.entries.iter_mut().flatten() {
            e.valid = false;
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Lifetime insert count.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime count of lookups that found no valid entry.
    pub fn spurious_lookups(&self) -> u64 {
        self.spurious
    }

    /// Hardware bits per entry as budgeted by the paper: 16 bits of
    /// predictor-table indices plus 8 bits of prediction metadata.
    pub fn entry_bits(&self) -> usize {
        24
    }

    /// Index width carried by resolution instructions (4 bits for the
    /// 16-entry configuration).
    pub fn index_bits(&self) -> u32 {
        self.entries.len().trailing_zeros()
    }

    /// Replay snapshot of the associative state: the entry array and tail
    /// pointer (the lifetime counters are deltas, restored separately).
    pub fn replay_state(&self) -> (Vec<Option<DbbEntry>>, usize) {
        (self.entries.clone(), self.tail)
    }

    /// Whether the associative state equals a [`replay_state`](Self::replay_state)
    /// snapshot.
    pub fn replay_matches(&self, entries: &[Option<DbbEntry>], tail: usize) -> bool {
        self.tail == tail && self.entries == entries
    }

    /// Restores the associative state from a snapshot and bumps the
    /// lifetime counters by the memoized per-iteration deltas.
    pub fn replay_restore(
        &mut self,
        entries: &[Option<DbbEntry>],
        tail: usize,
        d_inserts: u64,
        d_spurious: u64,
    ) {
        self.entries.clear();
        self.entries.extend_from_slice(entries);
        self.tail = tail;
        self.inserts += d_inserts;
        self.spurious += d_spurious;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(taken: bool) -> PredMeta {
        PredMeta::taken_only(taken)
    }

    #[test]
    fn figure7_insert_tag_update_sequence() {
        let mut dbb = DecomposedBranchBuffer::default();
        // (a) predict decoded: insert, tail advances.
        let idx = dbb.insert(0x1000, meta(true));
        assert_eq!(idx, dbb.tail());
        // (b) resolve decoded: reads the tail index.
        let carried = dbb.tail();
        // (c) resolve detects mispredict: entry read back for training.
        let e = dbb.get(carried).expect("entry present");
        assert_eq!(e.predict_pc, 0x1000);
        assert!(e.meta.taken);
    }

    #[test]
    fn resolve_associates_with_most_recent_predict() {
        let mut dbb = DecomposedBranchBuffer::default();
        dbb.insert(0xa, meta(true));
        let idx_b = dbb.insert(0xb, meta(false));
        assert_eq!(dbb.tail(), idx_b);
        assert_eq!(dbb.get(dbb.tail()).unwrap().predict_pc, 0xb);
    }

    #[test]
    fn sixteen_entries_give_four_index_bits() {
        let dbb = DecomposedBranchBuffer::default();
        assert_eq!(dbb.capacity(), 16);
        assert_eq!(dbb.index_bits(), 4);
        assert_eq!(dbb.entry_bits(), 24);
    }

    #[test]
    fn tail_wraps_circularly() {
        let mut dbb = DecomposedBranchBuffer::new(4);
        let mut last = 0;
        for i in 0..9 {
            last = dbb.insert(i, meta(false));
        }
        assert_eq!(last, 1); // 9 inserts mod 4, starting after slot 0
        assert_eq!(dbb.inserts(), 9);
    }

    #[test]
    fn recover_tail_rewinds_wrong_path_predicts() {
        let mut dbb = DecomposedBranchBuffer::default();
        dbb.insert(0x1, meta(true));
        let checkpoint = dbb.tail();
        // Wrong-path predicts fetched after a mispredicted normal branch…
        dbb.insert(0x2, meta(false));
        dbb.insert(0x3, meta(false));
        // …are abandoned by tail recovery.
        dbb.recover_tail(checkpoint);
        assert_eq!(dbb.get(dbb.tail()).unwrap().predict_pc, 0x1);
    }

    #[test]
    fn invalidate_all_suppresses_spurious_updates() {
        let mut dbb = DecomposedBranchBuffer::default();
        let idx = dbb.insert(0x9, meta(true));
        dbb.invalidate_all();
        assert_eq!(dbb.get(idx), None);
        assert_eq!(dbb.spurious_lookups(), 1);
    }

    #[test]
    fn never_written_slot_is_spurious() {
        let mut dbb = DecomposedBranchBuffer::default();
        assert_eq!(dbb.get(7), None);
        assert_eq!(dbb.spurious_lookups(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = DecomposedBranchBuffer::new(12);
    }
}

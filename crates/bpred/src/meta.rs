//! The direction-predictor trait and shared building blocks.

use std::fmt;

/// Per-prediction metadata snapshot.
///
/// A prediction and its training are decoupled in this crate (in hardware
/// the Decomposed Branch Buffer carries this state between the `predict`
/// and `resolve` instructions, §4 of the paper). `PredMeta` packs everything
/// a predictor needs to train correctly later: the prediction itself, the
/// table indices/tags computed at prediction time, and a global-history
/// snapshot for repair after a misprediction.
///
/// The hardware DBB stores 24 bits per entry (16 bits of table indices +
/// 8 bits of metadata); this model is not bit-packed but
/// [`DirectionPredictor::meta_bits`] reports the hardware-faithful size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredMeta {
    /// The predicted direction.
    pub taken: bool,
    /// Predictor-specific packed words (indices, tags, provider info).
    pub words: [u32; 16],
    /// Global-history snapshot *before* this prediction was shifted in
    /// (up to 128 bits; predictors using longer histories fold).
    pub hist: [u64; 2],
}

impl PredMeta {
    /// Creates metadata for a prediction with no table state.
    pub fn taken_only(taken: bool) -> PredMeta {
        PredMeta {
            taken,
            ..PredMeta::default()
        }
    }
}

/// A hardware direction predictor with decoupled predict/update.
///
/// The contract mirrors the paper's front end:
///
/// 1. `predict(pc)` is called at fetch. The predictor may speculatively
///    update internal history with its own prediction.
/// 2. `update(pc, meta, taken)` is called at branch resolution, *in program
///    order*, with the metadata captured at step 1. If the prediction was
///    wrong the predictor must also repair its speculative history from the
///    snapshot in `meta`.
pub trait DirectionPredictor: fmt::Debug {
    /// Predicts the direction of the branch at `pc` and returns the
    /// training metadata.
    fn predict(&mut self, pc: u64) -> PredMeta;

    /// Trains with the actual direction, repairing history on mispredicts.
    fn update(&mut self, pc: u64, meta: &PredMeta, taken: bool);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Total predictor storage in bits (direction state only).
    fn storage_bits(&self) -> usize;

    /// Bits of metadata a DBB entry must hold for this predictor
    /// (the paper's implementation budgets 24 bits).
    fn meta_bits(&self) -> usize {
        24
    }

    /// Resets all tables and history to power-on state.
    fn reset(&mut self);

    /// Repairs speculative global history after a pipeline flush, using
    /// the metadata captured at the mispredicted conditional's fetch and
    /// its actual direction. Called by the simulator at re-steer time —
    /// wrong-path fetches made between the misprediction's *detection*
    /// and the *flush* shift speculative history and must be discarded.
    ///
    /// Table state is untouched. The default is a no-op (history-free
    /// predictors).
    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        let _ = (meta, taken);
    }

    /// Whether the predictor exposes the replay digest below. Predictors
    /// that return `false` (the default) disable the simulator's
    /// steady-state iteration replay — conservatively correct, never
    /// wrong.
    fn replay_supported(&self) -> bool {
        false
    }

    /// Appends the predictor's *speculative* state — everything `predict`
    /// can read or write that is not a training cell reachable through
    /// [`DirectionPredictor::probe_cells`] (global-history shift
    /// registers, allocation seeds). Two predictors whose `spec_words`
    /// and touched cells agree must make identical predictions.
    fn spec_words(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Appends `(cell_id, value)` pairs for every table cell `predict(pc)`
    /// read and `update(pc, meta, _)` may write, given the metadata a
    /// prediction at `pc` produced. Cell ids are stable across calls and
    /// namespaced per table so distinct tables never collide.
    fn probe_cells(&self, pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        let _ = (pc, meta, out);
    }

    /// Re-applies the speculative-history side effect of `predict(pc)`
    /// without touching any table cell — the replay-time stand-in for a
    /// prediction whose outcome (`meta`) is already known.
    fn replay_advance(&mut self, pc: u64, meta: &PredMeta) {
        let _ = (pc, meta);
    }

    /// How many more `update` calls are guaranteed *not* to cross an
    /// internal maintenance boundary (e.g. TAGE useful-counter aging)
    /// that depends on a global update count rather than on cell state.
    /// Replay must not memoize across such a boundary.
    fn replay_guard(&self) -> u64 {
        u64::MAX
    }

    /// Consecutive identical iteration-shape observations the replay
    /// layer's adaptive arming requires at a loop site before it starts
    /// paying for full signature capture there. Predictors whose steady
    /// state takes longer to settle (deep histories, slow allocation)
    /// may raise this to defer the capture cost further.
    fn replay_probe_streak(&self) -> u32 {
        2
    }
}

/// An n-bit saturating up/down counter (the workhorse of every table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-wide counter initialised to the weakly-not-taken
    /// midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u32) -> Self {
        assert!((1..=7).contains(&bits), "counter width out of range");
        let max = ((1u16 << bits) - 1) as u8;
        SaturatingCounter {
            value: max / 2,
            max,
        }
    }

    /// The counter's current value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Predicted direction: the upper half of the range means taken.
    pub fn taken(&self) -> bool {
        u16::from(self.value) * 2 > u16::from(self.max)
    }

    /// `true` when saturated at either end (high confidence).
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max
    }

    /// Moves the counter toward `taken`.
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Forces a value (used by allocation policies).
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max);
    }
}

/// Mixes PC bits for table indexing (a cheap xor-fold hash; real hardware
/// uses similar bit-slicing).
#[inline]
pub(crate) fn fold_pc(pc: u64) -> u64 {
    let pc = pc >> 2; // instructions are >= 4-byte aligned
    pc ^ (pc >> 17) ^ (pc >> 31)
}

/// Namespaces a replay cell id: `table` codes are unique within one
/// predictor, indices fit well under 2^40.
#[inline]
pub(crate) fn cell_id(table: u64, idx: u64) -> u64 {
    (table << 40) | idx
}

impl DirectionPredictor for Box<dyn DirectionPredictor> {
    fn predict(&mut self, pc: u64) -> PredMeta {
        (**self).predict(pc)
    }
    fn update(&mut self, pc: u64, meta: &PredMeta, taken: bool) {
        (**self).update(pc, meta, taken)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }
    fn meta_bits(&self) -> usize {
        (**self).meta_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        (**self).repair_history(meta, taken)
    }
    fn replay_supported(&self) -> bool {
        (**self).replay_supported()
    }
    fn spec_words(&self, out: &mut Vec<u64>) {
        (**self).spec_words(out)
    }
    fn probe_cells(&self, pc: u64, meta: &PredMeta, out: &mut Vec<(u64, u64)>) {
        (**self).probe_cells(pc, meta, out)
    }
    fn replay_advance(&mut self, pc: u64, meta: &PredMeta) {
        (**self).replay_advance(pc, meta)
    }
    fn replay_guard(&self) -> u64 {
        (**self).replay_guard()
    }
    fn replay_probe_streak(&self) -> u32 {
        (**self).replay_probe_streak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_weak() {
        let c = SaturatingCounter::new(2);
        assert_eq!(c.value(), 1);
        assert!(!c.taken());
    }

    #[test]
    fn counter_saturates_high() {
        let mut c = SaturatingCounter::new(2);
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        assert!(c.taken());
        assert!(c.is_saturated());
    }

    #[test]
    fn counter_saturates_low() {
        let mut c = SaturatingCounter::new(3);
        for _ in 0..20 {
            c.train(false);
        }
        assert_eq!(c.value(), 0);
        assert!(!c.taken());
    }

    #[test]
    fn counter_hysteresis() {
        let mut c = SaturatingCounter::new(2);
        c.train(true);
        c.train(true); // saturated taken (3)
        c.train(false); // 2: still predicts taken
        assert!(c.taken());
        c.train(false); // 1: now not-taken
        assert!(!c.taken());
    }

    #[test]
    #[should_panic(expected = "counter width out of range")]
    fn zero_width_counter_rejected() {
        let _ = SaturatingCounter::new(0);
    }

    #[test]
    fn fold_pc_distinguishes_nearby_pcs() {
        assert_ne!(fold_pc(0x1000), fold_pc(0x1004));
    }
}

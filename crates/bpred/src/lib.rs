//! # vanguard-bpred
//!
//! Branch-prediction hardware models for the Branch Vanguard reproduction:
//!
//! * Direction predictors — [`Bimodal`], [`Gshare`], the PTLSim-style
//!   3-table combined predictor [`Combined`] used as the paper's default
//!   (Table 1: "GShare, 24 KB 3-table direction predictor"), a local-history
//!   [`TwoLevel`] predictor, and [`Tage`] / [`IslTage`] for the §5.3
//!   sensitivity ladder.
//! * Front-end structures — a 4K-entry [`Btb`] and 64-entry [`Ras`]
//!   (Table 1).
//! * The paper's contribution-enabling hardware: the
//!   [`DecomposedBranchBuffer`] (§4, Figure 7) — a small FIFO that
//!   re-associates each `resolve` instruction with the predictor metadata of
//!   its `predict` instruction so that training works although the two have
//!   different PCs.
//!
//! All predictors implement [`DirectionPredictor`] with *decoupled
//! prediction and training*: `predict` returns a [`PredMeta`] snapshot, and
//! `update` consumes it later — exactly the decoupling the DBB provides in
//! hardware.
//!
//! ```
//! use vanguard_bpred::{Combined, DirectionPredictor};
//!
//! let mut p = Combined::ptlsim_default();
//! let meta = p.predict(0x400);        // at fetch
//! p.update(0x400, &meta, true);       // at resolution
//! assert!(p.storage_bits() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bimodal;
mod btb;
mod dbb;
mod gshare;
mod ladder;
mod measure;
mod meta;
mod ras;
mod tage;
mod twolevel;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbEntry};
pub use dbb::{DbbEntry, DecomposedBranchBuffer, DBB_ENTRIES};
pub use gshare::{Combined, Gshare};
pub use ladder::{ladder, LadderRung};
pub use measure::{measure_accuracy, AccuracyReport};
pub use meta::{DirectionPredictor, PredMeta, SaturatingCounter};
pub use ras::Ras;
pub use tage::{IslTage, Tage, TageConfig};
pub use twolevel::TwoLevel;

//! The §5.3 branch-predictor sensitivity ladder.

use crate::bimodal::Bimodal;
use crate::gshare::Combined;
use crate::meta::DirectionPredictor;
use crate::tage::{IslTage, Tage, TageConfig};
use crate::twolevel::TwoLevel;

/// A rung of the sensitivity ladder: a named predictor factory.
///
/// The paper simulates "a series of ever improving conditional branch
/// predictors, culminating in a 64-KB version of ISL-TAGE"; this ladder
/// reproduces that sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LadderRung {
    /// 2 KB bimodal.
    Bimodal8K,
    /// 6 KB combined (small tables: capacity-limited).
    Combined6KB,
    /// The paper's baseline: 24 KB 3-table combined (PTLSim default).
    Combined24KB,
    /// Local-history two-level, ~14 KB.
    TwoLevelLocal,
    /// 32 KB TAGE.
    Tage32KB,
    /// 64 KB ISL-TAGE (top rung).
    IslTage64KB,
}

impl LadderRung {
    /// Instantiates the predictor for this rung.
    pub fn build(self) -> Box<dyn DirectionPredictor> {
        match self {
            LadderRung::Bimodal8K => Box::new(Bimodal::new(8 * 1024)),
            LadderRung::Combined6KB => Box::new(Combined::new(8 * 1024, 12)),
            LadderRung::Combined24KB => Box::new(Combined::ptlsim_default()),
            LadderRung::TwoLevelLocal => Box::new(TwoLevel::new(2048, 12, 32 * 1024)),
            LadderRung::Tage32KB => Box::new(Tage::new(TageConfig::storage_32kb())),
            LadderRung::IslTage64KB => Box::new(IslTage::storage_64kb()),
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Bimodal8K => "bimodal-2KB",
            LadderRung::Combined6KB => "combined-6KB",
            LadderRung::Combined24KB => "gshare-24KB-3table (baseline)",
            LadderRung::TwoLevelLocal => "two-level-local",
            LadderRung::Tage32KB => "tage-32KB",
            LadderRung::IslTage64KB => "isl-tage-64KB",
        }
    }
}

/// The full ladder, weakest first.
///
/// `Tage32KB` is available as a rung but not part of the default sweep:
/// without its loop predictor and statistical corrector it sits between
/// the combined predictor and ISL-TAGE only on pattern-dominated streams,
/// and the sweep is meant to be monotone ("a series of ever improving
/// conditional branch predictors, culminating in a 64-KB ISL-TAGE").
pub fn ladder() -> Vec<LadderRung> {
    vec![
        LadderRung::Bimodal8K,
        LadderRung::Combined6KB,
        LadderRung::Combined24KB,
        LadderRung::TwoLevelLocal,
        LadderRung::IslTage64KB,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rung_builds_and_predicts() {
        for rung in ladder() {
            let mut p = rung.build();
            let m = p.predict(0x1000);
            p.update(0x1000, &m, true);
            assert!(p.storage_bits() > 0, "{}", rung.label());
        }
    }

    #[test]
    fn ladder_includes_the_paper_baseline_and_top() {
        let l = ladder();
        assert!(l.contains(&LadderRung::Combined24KB));
        assert_eq!(*l.last().unwrap(), LadderRung::IslTage64KB);
    }

    #[test]
    fn labels_are_distinct() {
        let l = ladder();
        let mut labels: Vec<_> = l.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), l.len());
    }
}

//! Transformation reports and code-size accounting.

use vanguard_isa::BlockId;

/// Per-site outcome of the Decomposed Branch Transformation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteOutcome {
    /// The converted branch's block.
    pub block: BlockId,
    /// Instructions hoisted into the predicted-taken resolution block.
    pub hoisted_taken: usize,
    /// Instructions hoisted into the predicted-not-taken resolution block.
    pub hoisted_fallthrough: usize,
    /// Condition-slice instructions pushed down into both resolution
    /// blocks.
    pub slice_insts: usize,
    /// Slice instructions removed from the original block (dead after the
    /// push-down).
    pub removed_from_block: usize,
    /// Shadow-temporary commit moves placed in the resolve shadows (§3's
    /// alternative to correction-code duplication).
    pub commit_moves: usize,
    /// Profiled executions of this site (for dynamic-weight metrics).
    pub executed: u64,
}

/// Summary of one [`crate::decompose_branches`] run.
#[derive(Clone, Debug, Default)]
pub struct TransformReport {
    /// Sites successfully converted.
    pub converted: Vec<SiteOutcome>,
    /// Sites that qualified but were structurally untransformable,
    /// with the reason.
    pub skipped: Vec<(BlockId, String)>,
    /// Static forward conditional branches before transformation (PBC
    /// denominator).
    pub forward_branches: usize,
    /// Hammocks if-converted by the meld/stacked passes (Li et al.).
    pub melded: usize,
    /// Net instruction-count change from melding (blend code added minus
    /// branch/jump code removed); negative when melding shrinks the
    /// program.
    pub meld_added_insts: isize,
    /// Static code bytes before.
    pub code_bytes_before: u64,
    /// Static code bytes after.
    pub code_bytes_after: u64,
}

impl TransformReport {
    /// PBC: percentage of static forward branches converted (Table 2).
    pub fn pbc(&self) -> f64 {
        if self.forward_branches == 0 {
            return 0.0;
        }
        self.converted.len() as f64 * 100.0 / self.forward_branches as f64
    }

    /// PISCS: percentage increase in static code size (Table 2).
    pub fn piscs(&self) -> f64 {
        if self.code_bytes_before == 0 {
            return 0.0;
        }
        (self.code_bytes_after as f64 - self.code_bytes_before as f64) * 100.0
            / self.code_bytes_before as f64
    }

    /// Total hoisted instructions weighted by site execution counts —
    /// the numerator of the PDIH metric.
    pub fn dynamic_hoisted(&self) -> u64 {
        self.converted
            .iter()
            .map(|s| (s.hoisted_taken + s.hoisted_fallthrough) as u64 / 2 * s.executed)
            .sum()
    }
}

/// Before/after code-size comparison for §6.1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeSizeReport {
    /// Baseline static bytes.
    pub baseline_bytes: u64,
    /// Transformed static bytes.
    pub transformed_bytes: u64,
    /// Baseline static instruction count.
    pub baseline_insts: usize,
    /// Transformed static instruction count.
    pub transformed_insts: usize,
}

impl CodeSizeReport {
    /// Percentage increase in static code size.
    pub fn piscs(&self) -> f64 {
        if self.baseline_bytes == 0 {
            return 0.0;
        }
        (self.transformed_bytes as f64 - self.baseline_bytes as f64) * 100.0
            / self.baseline_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbc_and_piscs_math() {
        let r = TransformReport {
            converted: vec![SiteOutcome {
                block: BlockId(0),
                hoisted_taken: 3,
                hoisted_fallthrough: 1,
                slice_insts: 2,
                removed_from_block: 2,
                commit_moves: 1,
                executed: 100,
            }],
            skipped: vec![],
            forward_branches: 4,
            melded: 0,
            meld_added_insts: 0,
            code_bytes_before: 1000,
            code_bytes_after: 1090,
        };
        assert!((r.pbc() - 25.0).abs() < 1e-12);
        assert!((r.piscs() - 9.0).abs() < 1e-12);
        assert_eq!(r.dynamic_hoisted(), 200);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = TransformReport::default();
        assert_eq!(r.pbc(), 0.0);
        assert_eq!(r.piscs(), 0.0);
        assert_eq!(r.dynamic_hoisted(), 0);
    }

    #[test]
    fn code_size_report() {
        let c = CodeSizeReport {
            baseline_bytes: 200,
            transformed_bytes: 220,
            baseline_insts: 50,
            transformed_insts: 55,
        };
        assert!((c.piscs() - 10.0).abs() < 1e-12);
    }
}

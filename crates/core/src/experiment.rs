//! End-to-end experiment facade: profile → compile → simulate → report.

use crate::report::TransformReport;
use crate::transform::TransformOptions;
use std::fmt;
use std::sync::Arc;
use vanguard_compiler::{
    compact_program, layout_program, profile_program, schedule_program, ProfileError, SchedConfig,
};
use vanguard_ir::Profile;
use vanguard_isa::{DecodedImage, Memory, Program, Reg};
use vanguard_sim::{MachineConfig, SimError, SimStats, Simulator};

pub use vanguard_bpred::LadderRung as PredictorKind;

/// One input set: an initial memory image plus initial register values
/// (the paper distinguishes TRAIN inputs, used for profiling, from REF
/// inputs, used for evaluation — bias can differ between them).
#[derive(Clone, Debug, Default)]
pub struct RunInput {
    /// Initial data memory.
    pub memory: Memory,
    /// Initial register values.
    pub init_regs: Vec<(Reg, u64)>,
}

/// A benchmark handed to [`Experiment::run`].
#[derive(Clone, Debug)]
pub struct ExperimentInput {
    /// Benchmark name (for reports).
    pub name: String,
    /// The program (pre-transformation).
    pub program: Program,
    /// TRAIN input, used only for profiling.
    pub train: RunInput,
    /// REF inputs, used for evaluation (≥ 1).
    pub refs: Vec<RunInput>,
    /// Generator seed when the benchmark is seed-generated (fuzz/suite
    /// workloads); lets engine failure reports and quarantine
    /// reproducers name an exact replay command.
    pub seed: Option<u64>,
}

/// Errors from an experiment run.
#[derive(Clone, Debug)]
pub enum ExperimentError {
    /// Profiling failed.
    Profile(ProfileError),
    /// A simulation failed.
    Sim(SimError),
    /// The input had no REF inputs.
    NoRefInputs,
    /// An engine-level failure (watchdog timeout, worker panic, cache
    /// corruption) that has no architectural cause; the message is the
    /// full [`crate::VanguardError`] rendering.
    Engine(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Profile(e) => write!(f, "profiling: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation: {e}"),
            ExperimentError::NoRefInputs => write!(f, "no REF inputs provided"),
            ExperimentError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ProfileError> for ExperimentError {
    fn from(e: ProfileError) -> Self {
        ExperimentError::Profile(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Baseline-vs-experimental statistics for one REF input.
#[derive(Clone, Debug)]
pub struct RefRun {
    /// Baseline machine statistics.
    pub base: SimStats,
    /// Experimental (decomposed-branch) machine statistics.
    pub exp: SimStats,
}

impl RefRun {
    /// Speedup over the baseline in percent (> 0 means the transformation
    /// won).
    pub fn speedup_pct(&self) -> f64 {
        if self.exp.cycles == 0 {
            return 0.0;
        }
        (self.base.cycles as f64 / self.exp.cycles as f64 - 1.0) * 100.0
    }
}

/// Everything measured for one benchmark: the transformation report and
/// per-REF-input baseline/experimental statistics (the Table 2 row).
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Benchmark name.
    pub name: String,
    /// Transformation report (PBC, PISCS, hoist counts).
    pub report: TransformReport,
    /// Per-REF-input runs.
    pub runs: Vec<RefRun>,
    /// Dynamic instructions in the profiling run (PDIH denominator).
    pub profile_dynamic_insts: u64,
}

impl ExperimentOutcome {
    /// SPD: geometric-mean speedup over all REF inputs, in percent
    /// (Figures 8, 10, 12, 13).
    pub fn geomean_speedup_pct(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self
            .runs
            .iter()
            .map(|r| (r.base.cycles as f64 / r.exp.cycles as f64).ln())
            .sum();
        ((log_sum / self.runs.len() as f64).exp() - 1.0) * 100.0
    }

    /// Speedup on the best-performing REF input (Figures 9 and 11).
    pub fn best_speedup_pct(&self) -> f64 {
        self.runs
            .iter()
            .map(RefRun::speedup_pct)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// PDIH: average % of dynamic instructions hoisted above converted
    /// branches (Table 2).
    pub fn pdih(&self) -> f64 {
        if self.profile_dynamic_insts == 0 {
            return 0.0;
        }
        self.report.dynamic_hoisted() as f64 * 100.0 / self.profile_dynamic_insts as f64
    }

    /// ASPCB: average stall cycles per converted branch (Table 2),
    /// measured at the resolve instructions of the experimental runs.
    pub fn aspcb(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.exp.stalls_per_resolve())
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// MPPKI of the baseline runs (Table 2).
    pub fn mppki(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.base.mppki()).sum::<f64>() / self.runs.len() as f64
    }

    /// Percent increase in issued instructions, experimental vs baseline
    /// (Figure 14).
    pub fn issued_increase_pct(&self) -> f64 {
        let base: u64 = self.runs.iter().map(|r| r.base.issued).sum();
        let exp: u64 = self.runs.iter().map(|r| r.exp.issued).sum();
        if base == 0 {
            return 0.0;
        }
        (exp as f64 - base as f64) * 100.0 / base as f64
    }
}

/// The experiment driver: owns the machine configuration, predictor
/// choice, and transformation options.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Machine to simulate (Table 1; 2/4/8-wide).
    pub machine: MachineConfig,
    /// Branch predictor rung (§5.3 ladder; the default baseline is the
    /// 24 KB PTLSim-style combined predictor).
    pub predictor: PredictorKind,
    /// Transformation options.
    pub transform: TransformOptions,
    /// Profiling step budget.
    pub max_profile_steps: u64,
}

impl Experiment {
    /// An experiment on the given machine with the paper's defaults.
    pub fn new(machine: MachineConfig) -> Self {
        Experiment {
            machine,
            predictor: PredictorKind::Combined24KB,
            transform: TransformOptions::default(),
            max_profile_steps: crate::engine::DEFAULT_MAX_PROFILE_STEPS,
        }
    }

    /// Profiles with TRAIN, builds baseline and transformed programs, and
    /// simulates both over every REF input.
    ///
    /// Delegates to the [engine](crate::engine): jobs run on the worker
    /// pool and artifacts are cached, but results are identical to the
    /// historical serial loop (see DESIGN.md §6).
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] if profiling or simulation faults,
    /// or no REF inputs were supplied.
    pub fn run(&self, input: &ExperimentInput) -> Result<ExperimentOutcome, ExperimentError> {
        let mut outcomes = self.run_suite(std::slice::from_ref(input))?;
        Ok(outcomes.remove(0))
    }

    /// Runs a whole suite of benchmarks under this experiment's machine,
    /// predictor, and options, sharing the engine's worker pool and
    /// artifact cache across all of them. Outcomes are returned in input
    /// order regardless of worker count.
    ///
    /// # Errors
    ///
    /// Returns the first (by benchmark and REF-input order) profiling or
    /// simulation error, or [`ExperimentError::NoRefInputs`] if any
    /// benchmark has none.
    pub fn run_suite(
        &self,
        inputs: &[ExperimentInput],
    ) -> Result<Vec<ExperimentOutcome>, ExperimentError> {
        let mut engine = crate::engine::Engine::new();
        let cells: Vec<crate::engine::SweepCell> = inputs
            .iter()
            .map(|input| crate::engine::SweepCell {
                bench: engine.add_benchmark(input.clone()),
                machine: self.machine,
                predictor: self.predictor,
            })
            .collect();
        engine.run_cells(&cells, &self.transform, self.max_profile_steps)
    }

    /// Runs only the profiling step (TRAIN input).
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] if the profiled program faults.
    pub fn profile(&self, input: &ExperimentInput) -> Result<Profile, ExperimentError> {
        Ok(profile_program(
            &input.program,
            input.train.memory.clone(),
            &input.train.init_regs,
            self.predictor.build(),
            self.max_profile_steps,
        )?)
    }

    /// Compiles the baseline and transformed versions of a program for
    /// this experiment's machine, returning both plus the transformation
    /// report.
    pub fn compile_pair(
        &self,
        program: &Program,
        profile: &Profile,
    ) -> (Program, Program, TransformReport) {
        let sched = SchedConfig::for_width(self.machine.width);

        let mut baseline = program.clone();
        layout_program(&mut baseline, profile);
        schedule_program(&mut baseline, &sched);
        let baseline = compact_program(&baseline);

        let mut transformed = program.clone();
        let report = crate::passes::apply_transform(&mut transformed, profile, &self.transform);
        layout_program(&mut transformed, profile);
        schedule_program(&mut transformed, &sched);
        let transformed = compact_program(&transformed);

        (baseline, transformed, report)
    }

    /// Simulates one program over one input on this experiment's machine.
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] on a committed-path fault.
    pub fn simulate(
        &self,
        program: &Program,
        input: &RunInput,
    ) -> Result<SimStats, ExperimentError> {
        let mut sim = Simulator::new(
            program,
            input.memory.clone(),
            self.machine,
            self.predictor.build(),
        );
        for &(r, v) in &input.init_regs {
            sim.set_reg(r, v);
        }
        Ok(sim.run()?.stats)
    }

    /// Simulates a pre-decoded program image over one input on this
    /// experiment's machine. The hot path of the engine: many simulations
    /// of the same compiled program share one image.
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] on a committed-path fault.
    pub fn simulate_image(
        &self,
        image: &Arc<DecodedImage>,
        input: &RunInput,
    ) -> Result<SimStats, ExperimentError> {
        let mut sim = Simulator::with_image(
            Arc::clone(image),
            input.memory.clone(),
            self.machine,
            self.predictor.build(),
        );
        for &(r, v) in &input.init_regs {
            sim.set_reg(r, v);
        }
        Ok(sim.run()?.stats)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use vanguard_isa::{AluOp, CmpKind, CondKind, Inst, Operand, ProgramBuilder};

    /// A Figure 6-style kernel: per-iteration forward branch driven by a
    /// condition array, with dependent loads on both sides.
    fn kernel(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let head = b.block("head");
        let bb_f = b.block("bb_f");
        let bb_t = b.block("bb_t");
        let latch = b.block("latch");
        let exit = b.block("exit");

        b.push(entry, Inst::mov(Reg(1), Operand::Imm(n)));
        b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000)));
        b.push(entry, Inst::mov(Reg(11), Operand::Imm(0x80000)));
        b.fallthrough(entry, head);

        b.push(head, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            head,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            head,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(5),
                target: bb_t,
            },
        );
        b.fallthrough(head, bb_f);

        // Both sides: pointer-chase-flavoured loads then a store.
        for (bb, off, inc) in [(bb_f, 0i64, 1i64), (bb_t, 8, 2)] {
            b.push(bb, Inst::load(Reg(6), Reg(10), off));
            b.push(bb, Inst::load(Reg(7), Reg(10), off + 16));
            b.push(
                bb,
                Inst::alu(
                    AluOp::Add,
                    Reg(8),
                    Operand::Reg(Reg(6)),
                    Operand::Reg(Reg(7)),
                ),
            );
            b.push(
                bb,
                Inst::alu(AluOp::Add, Reg(8), Operand::Reg(Reg(8)), Operand::Imm(inc)),
            );
            b.push(bb, Inst::store(Reg(8), Reg(11), off));
            b.push(bb, Inst::Jump { target: latch });
        }

        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(10), Operand::Reg(Reg(10)), Operand::Imm(32)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(11), Operand::Reg(Reg(11)), Operand::Imm(16)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: head,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().unwrap()
    }

    /// 60/40-biased but fully periodic (predictable) condition pattern.
    fn predictable_unbiased_input(n: usize) -> RunInput {
        let mut memory = Memory::new();
        let cond: Vec<u64> = (0..n)
            .map(|i| u64::from(matches!(i % 5, 0 | 1 | 3)))
            .collect();
        memory.load_words(0x10000, &cond);
        let data: Vec<u64> = (0..4 * n)
            .map(|i| (i as u64).wrapping_mul(7) % 100)
            .collect();
        memory.load_words(0x20000, &data);
        memory.map_region(0x80000, (2 * n) as u64 * 8);
        RunInput {
            memory,
            init_regs: vec![],
        }
    }

    pub(crate) fn experiment_input(n: usize) -> ExperimentInput {
        ExperimentInput {
            name: "fig6-kernel".into(),
            program: kernel(n as i64),
            train: predictable_unbiased_input(n),
            refs: vec![predictable_unbiased_input(n)],
            seed: None,
        }
    }

    #[test]
    fn transformed_kernel_beats_baseline_on_the_4wide() {
        let exp = Experiment::new(MachineConfig::four_wide());
        let out = exp.run(&experiment_input(3000)).unwrap();
        assert_eq!(
            out.report.converted.len(),
            1,
            "skipped {:?}",
            out.report.skipped
        );
        let spd = out.geomean_speedup_pct();
        assert!(
            spd > 3.0,
            "expected a clear speedup on a predictable-unbiased kernel, got {spd:.2}% \
             (base {} cyc, exp {} cyc)",
            out.runs[0].base.cycles,
            out.runs[0].exp.cycles
        );
    }

    #[test]
    fn committed_work_matches_between_machines() {
        let exp = Experiment::new(MachineConfig::four_wide());
        let out = exp.run(&experiment_input(500)).unwrap();
        let r = &out.runs[0];
        // Both versions resolve the same dynamic branch-site count.
        assert_eq!(r.base.branches, r.exp.branches + r.exp.resolves);
        assert!(r.exp.resolves >= 500);
    }

    #[test]
    fn metrics_are_populated() {
        let exp = Experiment::new(MachineConfig::four_wide());
        let out = exp.run(&experiment_input(1000)).unwrap();
        assert!(out.report.pbc() > 0.0);
        assert!(out.report.piscs() > 0.0);
        assert!(out.pdih() > 0.0);
        assert!(out.mppki() >= 0.0);
        assert!(out.best_speedup_pct() >= out.geomean_speedup_pct() - 1e-9);
    }

    #[test]
    fn no_ref_inputs_is_an_error() {
        let mut input = experiment_input(100);
        input.refs.clear();
        let exp = Experiment::new(MachineConfig::four_wide());
        assert!(matches!(exp.run(&input), Err(ExperimentError::NoRefInputs)));
    }

    #[test]
    fn unpredictable_branch_is_left_untouched() {
        // A pseudo-random 50/50 pattern: predictability ≈ bias ≈ 0.5, so
        // nothing qualifies and the "transformed" program is the baseline.
        let n = 1000usize;
        let mut memory = Memory::new();
        let mut x = 0x2545f4914f6cdd1du64;
        let cond: Vec<u64> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1
            })
            .collect();
        memory.load_words(0x10000, &cond);
        let data: Vec<u64> = (0..4 * n).map(|i| i as u64).collect();
        memory.load_words(0x20000, &data);
        memory.map_region(0x80000, (2 * n) as u64 * 8);
        let input = ExperimentInput {
            name: "random".into(),
            program: kernel(n as i64),
            train: RunInput {
                memory: memory.clone(),
                init_regs: vec![],
            },
            refs: vec![RunInput {
                memory,
                init_regs: vec![],
            }],
            seed: None,
        };
        let exp = Experiment::new(MachineConfig::four_wide());
        let out = exp.run(&input).unwrap();
        assert!(out.report.converted.is_empty());
        let spd = out.geomean_speedup_pct();
        assert!(spd.abs() < 1.0, "identical programs: {spd}%");
    }
}

//! Typed, contextual errors for the experiment engine.
//!
//! Every failure the engine can survive is a [`VanguardError`]: the
//! failing pipeline [`Stage`], the benchmark and (when the workload is
//! seed-generated) the seed it belongs to, and a typed [`ErrorKind`]
//! saying *what* went wrong. Workers convert guest traps, watchdog
//! timeouts, worker panics, and cache corruption into these values
//! instead of aborting the process; DESIGN.md §7.8 maps each kind to its
//! detection point and recovery action.

use crate::engine::Stage;
use crate::experiment::ExperimentError;
use std::fmt;
use vanguard_compiler::ProfileError;
use vanguard_sim::SimError;

/// What failed, independent of where.
#[derive(Clone, Debug)]
pub enum ErrorKind {
    /// TRAIN-input profiling failed (the profiled guest faulted).
    Profile(ProfileError),
    /// A simulated guest trapped on the committed path.
    GuestTrap {
        /// The architectural fault.
        trap: SimError,
        /// Program counter of the fault.
        pc: u64,
        /// Cycle the fault was detected at.
        cycle: u64,
    },
    /// A watchdog cancelled a wedged stage.
    Timeout {
        /// Cycles simulated before cancellation.
        cycles: u64,
        /// Wall-clock milliseconds elapsed before cancellation.
        wall_ms: u64,
    },
    /// A worker thread panicked while running a job.
    WorkerPanic {
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// A disk-cache entry failed validation (bad magic, checksum
    /// mismatch, truncation) and was quarantined.
    CacheCorrupt {
        /// Path of the quarantined entry.
        path: String,
        /// What failed to validate.
        detail: String,
    },
    /// The benchmark has no REF inputs to evaluate.
    NoRefInputs,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Profile(e) => write!(f, "profiling failed: {e}"),
            ErrorKind::GuestTrap { trap, pc, cycle } => {
                write!(f, "guest trap at pc {pc:#x}, cycle {cycle}: {trap}")
            }
            ErrorKind::Timeout { cycles, wall_ms } => {
                write!(f, "watchdog timeout after {cycles} cycles / {wall_ms} ms")
            }
            ErrorKind::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
            ErrorKind::CacheCorrupt { path, detail } => {
                write!(f, "corrupt cache entry {path}: {detail}")
            }
            ErrorKind::NoRefInputs => write!(f, "no REF inputs provided"),
        }
    }
}

/// A recoverable engine failure with full attribution context.
#[derive(Clone, Debug)]
pub struct VanguardError {
    /// Pipeline stage the failure surfaced in.
    pub stage: Stage,
    /// Benchmark the failing job belonged to, when known.
    pub benchmark: Option<String>,
    /// Generator seed of the benchmark, when it is seed-generated
    /// (makes the reproducer replay line exact).
    pub seed: Option<u64>,
    /// What failed.
    pub kind: ErrorKind,
}

impl VanguardError {
    /// An error with no benchmark/seed attribution yet.
    pub fn new(stage: Stage, kind: ErrorKind) -> Self {
        VanguardError {
            stage,
            benchmark: None,
            seed: None,
            kind,
        }
    }

    /// Attaches the benchmark name.
    #[must_use]
    pub fn with_benchmark(mut self, name: impl Into<String>) -> Self {
        self.benchmark = Some(name.into());
        self
    }

    /// Attaches the generator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }

    /// Whether a retry can plausibly succeed: worker panics and cache
    /// corruption are environmental (poisoned state, torn write, read
    /// race) and retried once with backoff; guest traps and timeouts are
    /// deterministic properties of the job and never retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::WorkerPanic { .. } | ErrorKind::CacheCorrupt { .. }
        )
    }
}

impl fmt::Display for VanguardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stage", self.stage.label())?;
        if let Some(b) = &self.benchmark {
            write!(f, ", benchmark {b}")?;
        }
        if let Some(s) = self.seed {
            write!(f, " (seed {s})")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for VanguardError {}

impl From<VanguardError> for ExperimentError {
    /// Narrows to the legacy error the `Experiment` facade reports:
    /// typed causes map to their original variants, engine-level
    /// failures (timeout, panic, cache corruption) to
    /// [`ExperimentError::Engine`].
    fn from(e: VanguardError) -> Self {
        match e.kind {
            ErrorKind::Profile(p) => ExperimentError::Profile(p),
            ErrorKind::GuestTrap { trap, .. } => ExperimentError::Sim(trap),
            ErrorKind::NoRefInputs => ExperimentError::NoRefInputs,
            ErrorKind::Timeout { .. }
            | ErrorKind::WorkerPanic { .. }
            | ErrorKind::CacheCorrupt { .. } => ExperimentError::Engine(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        let panic = VanguardError::new(
            Stage::Simulate,
            ErrorKind::WorkerPanic {
                detail: "boom".into(),
            },
        );
        assert!(panic.is_transient());
        let trap = VanguardError::new(
            Stage::Simulate,
            ErrorKind::GuestTrap {
                trap: SimError::LoadFault { addr: 0x10, pc: 4 },
                pc: 4,
                cycle: 99,
            },
        );
        assert!(!trap.is_transient());
        let timeout = VanguardError::new(
            Stage::Simulate,
            ErrorKind::Timeout {
                cycles: 1,
                wall_ms: 2,
            },
        );
        assert!(!timeout.is_transient());
    }

    #[test]
    fn display_carries_full_context() {
        let e = VanguardError::new(
            Stage::Simulate,
            ErrorKind::Timeout {
                cycles: 5000,
                wall_ms: 12,
            },
        )
        .with_benchmark("mcf")
        .with_seed(Some(7));
        let s = e.to_string();
        assert!(s.contains("simulate"), "{s}");
        assert!(s.contains("mcf"), "{s}");
        assert!(s.contains("seed 7"), "{s}");
        assert!(s.contains("5000 cycles"), "{s}");
    }

    #[test]
    fn narrowing_preserves_typed_causes() {
        let trap = VanguardError::new(
            Stage::Simulate,
            ErrorKind::GuestTrap {
                trap: SimError::OrphanResolve { pc: 8 },
                pc: 8,
                cycle: 3,
            },
        );
        assert!(matches!(
            ExperimentError::from(trap),
            ExperimentError::Sim(SimError::OrphanResolve { pc: 8 })
        ));
        let wedged = VanguardError::new(
            Stage::Simulate,
            ErrorKind::Timeout {
                cycles: 1,
                wall_ms: 1,
            },
        );
        assert!(matches!(
            ExperimentError::from(wedged),
            ExperimentError::Engine(_)
        ));
    }
}

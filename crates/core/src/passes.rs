//! Pluggable transformation passes: the paper's decomposition plus two
//! rivals from the related work, behind one [`TransformPass`] trait.
//!
//! The Decomposed Branch Transformation is one point in a design space,
//! and the related work names two natural rivals. Head-to-head cells
//! (baseline vs vanguard vs meld vs shadow vs stacked) are what the
//! ablation table measures:
//!
//! * **vanguard** — the paper's §3 decomposition
//!   ([`decompose_branches`]).
//! * **meld** — IR-level branch melding (Li et al., *Eliminate Branches
//!   by Melding IR Instructions*): short side-effect-free hammocks are
//!   if-converted into straight-line mask-and-blend code. The right
//!   tool for *unpredictable* unbiased branches (Figure 1's
//!   bottom-right quadrant), wasted work on predictable ones.
//! * **shadow** — decode-time shadow-branch exposure (Pepi et al.,
//!   *Exposing Shadow Branches*): the branch's prediction is surfaced
//!   early as a predict/resolve decomposition but **no** code moves —
//!   resolution blocks carry only the pushed-down condition slice, so
//!   the measured speedup isolates the early-redirect effect with zero
//!   speculative code motion.
//! * **stacked** — vanguard ∘ meld: melding removes the short
//!   unpredictable hammocks first, then the decomposition converts the
//!   predictable remainder.
//!
//! Each pass declares a [`PassContract`] the lint dispatches on
//! ([`crate::lint_variant`]) and a stable [`TransformPass::cache_id`]
//! the engine folds into its artifact and disk-cache keys, so two
//! variants of the same (benchmark, profile, width) can never collide.

use std::fmt;

use crate::report::TransformReport;
use crate::transform::{decompose_branches, TransformOptions};
use vanguard_compiler::if_convert;
use vanguard_ir::{BranchDirection, Cfg, Profile};
use vanguard_isa::Program;

/// Options consumed by a [`TransformPass::apply`] call. One shared knob
/// set: each pass reads the fields its contract names (`meld_max_side`
/// for meld/stacked, the selection and hoist knobs for vanguard, the
/// selection knobs alone for shadow) and ignores the rest.
pub type PassOptions = TransformOptions;

/// Report produced by a [`TransformPass::apply`] call.
pub type PassReport = TransformReport;

/// Which transformation compiles the experimental side of a pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// The paper's Decomposed Branch Transformation (§3).
    #[default]
    Vanguard,
    /// IR-level branch melding (if-conversion), per Li et al.
    Meld,
    /// Decode-time shadow-branch exposure, per Pepi et al.
    Shadow,
    /// Meld first, then decompose the surviving branches.
    Stacked,
}

impl TransformKind {
    /// Every kind, in ablation-table column order.
    pub const ALL: [TransformKind; 4] = [
        TransformKind::Vanguard,
        TransformKind::Meld,
        TransformKind::Shadow,
        TransformKind::Stacked,
    ];

    /// CLI and report name.
    pub fn name(self) -> &'static str {
        match self {
            TransformKind::Vanguard => "vanguard",
            TransformKind::Meld => "meld",
            TransformKind::Shadow => "shadow",
            TransformKind::Stacked => "stacked",
        }
    }

    /// Stable id folded into artifact and disk-cache keys. Never reuse
    /// or renumber a value: a stale disk entry keyed under a retired id
    /// must miss, never alias another variant.
    pub fn cache_id(self) -> u64 {
        match self {
            TransformKind::Vanguard => 1,
            TransformKind::Meld => 2,
            TransformKind::Shadow => 3,
            TransformKind::Stacked => 4,
        }
    }

    /// Parses a `--transform` flag value ([`TransformKind::name`]
    /// spelling).
    pub fn parse(s: &str) -> Option<TransformKind> {
        TransformKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The structural contract a pass's output is held to by the lint
/// ([`crate::lint_variant`] dispatches on this).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassContract {
    /// The full §3 decomposition contract ([`crate::lint_program`]):
    /// predict/resolve pairing, store sinking, non-faulting hoists,
    /// live-in protection, correction coverage, shadow dominance.
    Decomposition,
    /// Side-effect equivalence: melding may never add a store or a
    /// conditional branch, and must not emit decomposition artifacts
    /// (`predict`/`resolve`).
    Meld,
    /// Decode-model consistency: the §3 contract plus resolution blocks
    /// carrying *only* the condition slice — exposing a shadow branch
    /// moves no code.
    ShadowExposure,
}

/// A transformation pass over a profiled program: the experimental side
/// of every compiled pair goes through exactly one of these.
pub trait TransformPass: fmt::Debug + Send + Sync {
    /// CLI and report name (matches [`TransformKind::name`]).
    fn name(&self) -> &'static str;
    /// Stable cache-key id (matches [`TransformKind::cache_id`]).
    fn cache_id(&self) -> u64;
    /// The structural contract the lint holds this pass's output to.
    fn contract(&self) -> PassContract;
    /// Applies the pass in place and reports what changed.
    fn apply(&self, program: &mut Program, profile: &Profile, options: &PassOptions) -> PassReport;
}

/// The paper's §3 decomposition as a pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct VanguardPass;

impl TransformPass for VanguardPass {
    fn name(&self) -> &'static str {
        TransformKind::Vanguard.name()
    }
    fn cache_id(&self) -> u64 {
        TransformKind::Vanguard.cache_id()
    }
    fn contract(&self) -> PassContract {
        PassContract::Decomposition
    }
    fn apply(&self, program: &mut Program, profile: &Profile, options: &PassOptions) -> PassReport {
        decompose_branches(program, profile, options)
    }
}

/// IR-level branch melding (cmov-style if-conversion) as a pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeldPass;

impl TransformPass for MeldPass {
    fn name(&self) -> &'static str {
        TransformKind::Meld.name()
    }
    fn cache_id(&self) -> u64 {
        TransformKind::Meld.cache_id()
    }
    fn contract(&self) -> PassContract {
        PassContract::Meld
    }
    fn apply(
        &self,
        program: &mut Program,
        _profile: &Profile,
        options: &PassOptions,
    ) -> PassReport {
        let mut report = TransformReport {
            code_bytes_before: program.code_bytes(),
            forward_branches: forward_branch_count(program),
            ..TransformReport::default()
        };
        let stats = if_convert(program, options.meld_max_side);
        report.melded = stats.converted;
        report.meld_added_insts = stats.added_insts;
        report.code_bytes_after = program.code_bytes();
        report
    }
}

/// Decode-time shadow-branch exposure as a pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShadowPass;

impl TransformPass for ShadowPass {
    fn name(&self) -> &'static str {
        TransformKind::Shadow.name()
    }
    fn cache_id(&self) -> u64 {
        TransformKind::Shadow.cache_id()
    }
    fn contract(&self) -> PassContract {
        PassContract::ShadowExposure
    }
    fn apply(&self, program: &mut Program, profile: &Profile, options: &PassOptions) -> PassReport {
        // Same site selection as vanguard, but zero code motion: with
        // the hoist budget pinned to 0, resolution blocks carry only
        // the pushed-down condition slice and the resolve — the
        // decode-time exposure of the prediction, nothing speculative.
        let opts = TransformOptions {
            max_hoist: 0,
            hoist_loads: false,
            shadow_temps: false,
            ..*options
        };
        decompose_branches(program, profile, &opts)
    }
}

/// The stacked composition: meld, then decompose what survives.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackedPass;

impl TransformPass for StackedPass {
    fn name(&self) -> &'static str {
        TransformKind::Stacked.name()
    }
    fn cache_id(&self) -> u64 {
        TransformKind::Stacked.cache_id()
    }
    fn contract(&self) -> PassContract {
        PassContract::Decomposition
    }
    fn apply(&self, program: &mut Program, profile: &Profile, options: &PassOptions) -> PassReport {
        let code_bytes_before = program.code_bytes();
        let stats = if_convert(program, options.meld_max_side);
        // Melded hammocks no longer appear as branch sites, so the
        // decomposition naturally works on the remainder; block ids are
        // preserved, keeping the profile's site keys valid.
        let mut report = decompose_branches(program, profile, options);
        report.code_bytes_before = code_bytes_before;
        report.melded = stats.converted;
        report.meld_added_insts = stats.added_insts;
        report
    }
}

/// The singleton pass implementing a [`TransformKind`].
pub fn pass_for(kind: TransformKind) -> &'static dyn TransformPass {
    match kind {
        TransformKind::Vanguard => &VanguardPass,
        TransformKind::Meld => &MeldPass,
        TransformKind::Shadow => &ShadowPass,
        TransformKind::Stacked => &StackedPass,
    }
}

/// Applies the pass selected by `options.kind` — the single dispatch
/// point every compile pipeline goes through.
pub fn apply_transform(
    program: &mut Program,
    profile: &Profile,
    options: &TransformOptions,
) -> TransformReport {
    pass_for(options.kind).apply(program, profile, options)
}

/// Static forward conditional branches (the PBC denominator) — the same
/// count [`decompose_branches`] reports for its report header.
fn forward_branch_count(program: &Program) -> usize {
    let cfg = Cfg::build(program);
    cfg.branch_blocks(program)
        .filter(|&b| cfg.branch_direction(program, b) == Some(BranchDirection::Forward))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, BlockId, CmpKind, CondKind, Inst, Operand, ProgramBuilder, Reg};

    /// A program with both rivals' prey: a pure-ALU hammock (meld bait,
    /// blocks 1–3) and a memory-heavy diamond whose branch is
    /// predictable-unbiased (decomposition bait, block 4).
    fn mixed() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry"); // 0
        let meld_head = b.block("meld_head"); // 1
        let mt = b.block("mt"); // 2
        let mf = b.block("mf"); // 3
        let join = b.block("join"); // 4
        let bb_f = b.block("bb_f"); // 5
        let bb_t = b.block("bb_t"); // 6
        let exit = b.block("exit"); // 7

        b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000)));
        b.push(entry, Inst::mov(Reg(11), Operand::Imm(0x30000)));
        b.push(entry, Inst::mov(Reg(20), Operand::Imm(1)));
        b.push(entry, Inst::mov(Reg(22), Operand::Imm(50)));
        b.fallthrough(entry, meld_head);

        // Pure-ALU hammock: if (r20) r21 = r22+7 else r21 = r22-7.
        b.push(
            meld_head,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(20),
                target: mt,
            },
        );
        b.fallthrough(meld_head, mf);
        b.push(
            mt,
            Inst::alu(AluOp::Add, Reg(21), Operand::Reg(Reg(22)), Operand::Imm(7)),
        );
        b.push(mt, Inst::Jump { target: join });
        b.push(
            mf,
            Inst::alu(AluOp::Sub, Reg(21), Operand::Reg(Reg(22)), Operand::Imm(7)),
        );
        b.fallthrough(mf, join);

        // Memory diamond: load-compare-branch with loads and a store on
        // each side (melding must refuse it; decomposition wants it).
        b.push(join, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            join,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            join,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(5),
                target: bb_t,
            },
        );
        b.fallthrough(join, bb_f);
        for (bb, off, inc) in [(bb_f, 0i64, 1i64), (bb_t, 8, 2)] {
            b.push(bb, Inst::load(Reg(6), Reg(10), off));
            b.push(
                bb,
                Inst::alu(AluOp::Add, Reg(8), Operand::Reg(Reg(6)), Operand::Imm(inc)),
            );
            b.push(bb, Inst::store(Reg(8), Reg(11), off));
            b.push(bb, Inst::Jump { target: exit });
        }
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().unwrap()
    }

    /// A profile that qualifies `site` under the default selector:
    /// 60/100 taken (bias 0.6), 95/100 predicted (predictability 0.95).
    fn qualifying_profile(site: BlockId) -> Profile {
        let mut p = Profile::new();
        for i in 0..100u64 {
            p.record(site, i < 60, i < 95);
        }
        p.dynamic_insts = 1_000;
        p
    }

    fn count_insts(p: &Program, f: impl Fn(&Inst) -> bool) -> usize {
        p.iter()
            .flat_map(|(_, b)| b.insts())
            .filter(|i| f(i))
            .count()
    }

    #[test]
    fn kind_names_parse_and_display_roundtrip() {
        for kind in TransformKind::ALL {
            assert_eq!(TransformKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
            let pass = pass_for(kind);
            assert_eq!(pass.name(), kind.name());
            assert_eq!(pass.cache_id(), kind.cache_id());
        }
        assert_eq!(TransformKind::parse("bogus"), None);
        assert_eq!(TransformKind::default(), TransformKind::Vanguard);
    }

    #[test]
    fn cache_ids_are_distinct() {
        let mut ids: Vec<u64> = TransformKind::ALL.iter().map(|k| k.cache_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TransformKind::ALL.len());
    }

    #[test]
    fn contracts_match_the_issue_mapping() {
        assert_eq!(
            pass_for(TransformKind::Vanguard).contract(),
            PassContract::Decomposition
        );
        assert_eq!(pass_for(TransformKind::Meld).contract(), PassContract::Meld);
        assert_eq!(
            pass_for(TransformKind::Shadow).contract(),
            PassContract::ShadowExposure
        );
        assert_eq!(
            pass_for(TransformKind::Stacked).contract(),
            PassContract::Decomposition
        );
    }

    #[test]
    fn vanguard_pass_decomposes_the_memory_diamond() {
        let mut p = mixed();
        let profile = qualifying_profile(BlockId(4));
        let report = apply_transform(&mut p, &profile, &TransformOptions::default());
        assert_eq!(report.converted.len(), 1, "skipped {:?}", report.skipped);
        assert_eq!(report.melded, 0);
        assert!(count_insts(&p, |i| matches!(i, Inst::Predict { .. })) > 0);
    }

    #[test]
    fn meld_pass_converts_only_the_alu_hammock() {
        let mut p = mixed();
        let profile = qualifying_profile(BlockId(4));
        let opts = TransformOptions {
            kind: TransformKind::Meld,
            ..TransformOptions::default()
        };
        let before_stores = count_insts(&p, |i| matches!(i, Inst::Store { .. }));
        let report = apply_transform(&mut p, &profile, &opts);
        assert_eq!(report.melded, 1);
        assert!(report.converted.is_empty());
        // No decomposition artifacts, no new stores; the memory diamond's
        // branch survives while the hammock's is gone.
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Predict { .. })), 0);
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Resolve { .. })), 0);
        assert_eq!(
            count_insts(&p, |i| matches!(i, Inst::Store { .. })),
            before_stores
        );
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Branch { .. })), 1);
    }

    #[test]
    fn shadow_pass_exposes_predictions_without_code_motion() {
        let mut p = mixed();
        let profile = qualifying_profile(BlockId(4));
        let opts = TransformOptions {
            kind: TransformKind::Shadow,
            ..TransformOptions::default()
        };
        let report = apply_transform(&mut p, &profile, &opts);
        assert_eq!(report.converted.len(), 1, "skipped {:?}", report.skipped);
        for site in &report.converted {
            assert_eq!(site.hoisted_taken, 0);
            assert_eq!(site.hoisted_fallthrough, 0);
            assert_eq!(site.commit_moves, 0);
        }
        // Zero speculative code motion: no non-faulting load form exists.
        assert_eq!(
            count_insts(&p, |i| matches!(
                i,
                Inst::Load {
                    speculative: true,
                    ..
                }
            )),
            0
        );
        assert!(count_insts(&p, |i| matches!(i, Inst::Predict { .. })) > 0);
    }

    #[test]
    fn stacked_pass_melds_then_decomposes() {
        let mut p = mixed();
        let profile = qualifying_profile(BlockId(4));
        let opts = TransformOptions {
            kind: TransformKind::Stacked,
            ..TransformOptions::default()
        };
        let before_bytes = mixed().code_bytes();
        let report = apply_transform(&mut p, &profile, &opts);
        assert_eq!(report.melded, 1);
        assert_eq!(report.converted.len(), 1, "skipped {:?}", report.skipped);
        assert_eq!(report.code_bytes_before, before_bytes);
        // No conditional branch survives: one melded, one decomposed.
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Branch { .. })), 0);
    }
}

//! # vanguard-core
//!
//! The paper's contribution: the **Decomposed Branch Transformation**
//! (§3) and its surrounding machinery.
//!
//! A conditional branch whose *predictability* exceeds its *bias* by at
//! least 5% (measured on TRAIN-style profiling runs) is decomposed into a
//! [`predict`](vanguard_isa::Inst::Predict) instruction — the control-flow
//! divergence point, data-independent of everything — and a pair of
//! [`resolve`](vanguard_isa::Inst::Resolve) instructions in per-path
//! *resolution blocks*. The branch's condition slice is pushed down into
//! the resolution blocks, the profitable prefix of each successor is
//! hoisted above the resolve (loads become non-faulting `ld.s`), stores
//! sink below the resolution point, and correction blocks repair control
//! on misprediction.
//!
//! The result is a pair of highly-biased branches (taken only on
//! misprediction) that an in-order machine can schedule across: load
//! latency from both paths overlaps, exposing the MLP the original control
//! dependence serialized.
//!
//! Entry points:
//!
//! * [`select_candidates`] — the paper's §5 profile-guided heuristic.
//! * [`decompose_branches`] — the transformation itself.
//! * [`Experiment`] — end-to-end facade: profile → compile baseline and
//!   transformed programs → simulate both → report speedup and the
//!   Table 2 metrics.
//! * [`engine`] — the parallel, artifact-cached sweep engine behind
//!   [`Experiment::run`] and the bench harness: stages as cached
//!   artifacts, flat [`engine::SimJob`] lists, a scoped worker pool,
//!   and [`engine::ProgressObserver`] progress events.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diskcache;
pub mod engine;
mod error;
mod experiment;
pub mod journal;
mod lint;
mod passes;
mod report;
mod select;
mod slice;
mod transform;
mod verify;

pub use diskcache::{fnv1a, ClaimAttempt, ClaimGuard, CorruptEntry, DiskCache};
pub use error::{ErrorKind, VanguardError};
pub use experiment::{
    Experiment, ExperimentError, ExperimentInput, ExperimentOutcome, PredictorKind, RefRun,
    RunInput,
};
pub use journal::{Journal, JournalRecord, JournalSnapshot};
pub use lint::{lint_program, lint_variant, LintDiagnostic, LintKind};
pub use passes::{
    apply_transform, pass_for, MeldPass, PassContract, PassOptions, PassReport, ShadowPass,
    StackedPass, TransformKind, TransformPass, VanguardPass,
};
pub use report::{CodeSizeReport, SiteOutcome, TransformReport};
pub use select::{select_candidates, Candidate, SelectOptions};
pub use slice::{condition_slice, SliceError};
pub use transform::{decompose_branches, ReplayPolicy, TransformOptions};
pub use verify::{verify_equivalence, Divergence, Observables};

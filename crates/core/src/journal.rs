//! Persistent append-only job journal: the resume backbone of the
//! sweep service.
//!
//! A sweep's workers append one checksummed record per *completed* job,
//! keyed by the job's deterministic content-addressed key (see
//! [`Engine::job_key`](crate::engine::Engine::job_key)). An interrupted
//! sweep — `SIGKILL`ed worker, lost power, cancelled CI run — resumes
//! from the journal instead of restarting: every key already present is
//! skipped, and the merged output is reconstructed from the recorded
//! payloads without re-running a single job.
//!
//! The format is designed around the same crash-safety rules as the
//! disk cache (DESIGN.md §7.11):
//!
//! * **Append-only** — records are only ever added at the tail under an
//!   exclusive file lock, so concurrent worker *processes* never
//!   interleave partial records.
//! * **Checksummed** — the file opens with a `VGJ1` magic and every
//!   record carries an FNV-1a checksum over its key, length, and
//!   payload. A torn tail (the writer died mid-append) or a flipped
//!   bit anywhere in a record fails validation.
//! * **Drop-the-tail, never trust it** — [`Journal::read`] returns the
//!   longest valid prefix; anything after the first malformed record is
//!   reported as [`JournalSnapshot::dropped_bytes`] and the jobs it
//!   might have described are simply recomputed. A corrupt journal
//!   degrades a resume into extra work, never into wrong results.
//! * **Bounded growth** — when the tail file exceeds a threshold
//!   (`VANGUARD_JOURNAL_COMPACT_BYTES`; `0` disables), an append folds
//!   every record into a sibling `.snap` snapshot (same `VGJ1` format,
//!   written temp+rename) and truncates the tail back to its magic, all
//!   under the append lock. [`Journal::read`] transparently merges
//!   snapshot + tail; the tail is read *first*, so a compaction racing a
//!   reader can only grow the merged view, never shrink it, and a crash
//!   between the snapshot rename and the tail truncation leaves records
//!   present in both files, which the merge deduplicates (the snapshot
//!   wins — the payloads are identical by construction).

use crate::diskcache::fnv1a;
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Journal file magic ("Vanguard Journal v1").
pub const JOURNAL_MAGIC: &[u8; 4] = b"VGJ1";

/// Env var: journal compaction threshold in bytes (`0` disables).
pub const COMPACT_BYTES_ENV: &str = "VANGUARD_JOURNAL_COMPACT_BYTES";

/// Default tail-size threshold that triggers compaction on append.
pub const DEFAULT_COMPACT_BYTES: u64 = 4 * 1024 * 1024;

/// Per-record header size: key (8) + payload length (4) + checksum (8).
const RECORD_HEADER: usize = 20;

/// Record checksum: FNV-1a over the key and length header bytes
/// followed by the payload, so a flipped bit *anywhere* in a record —
/// including its key — fails validation and drops the tail.
fn record_checksum(key: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a(&buf)
}

/// One validated journal record: a completed job's key and its recorded
/// result payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// The job's deterministic content-addressed key.
    pub key: u64,
    /// The recorded result (the sweep service stores encoded
    /// [`SimStats`](vanguard_sim::SimStats); the journal itself is
    /// payload-agnostic).
    pub payload: Vec<u8>,
}

/// The validated contents of a journal file.
#[derive(Clone, Debug, Default)]
pub struct JournalSnapshot {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded after the first malformed record (a torn or
    /// corrupt tail — the affected jobs are recomputed, never trusted).
    pub dropped_bytes: u64,
}

impl JournalSnapshot {
    /// Whether a record for `key` exists.
    pub fn contains(&self, key: u64) -> bool {
        self.records.iter().any(|r| r.key == key)
    }

    /// The first recorded payload for `key`.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.records
            .iter()
            .find(|r| r.key == key)
            .map(|r| r.payload.as_slice())
    }

    /// Keys that appear more than once — a completed job re-ran its
    /// side effects. The kill-and-resume fault class asserts this is
    /// empty across any kill/resume split.
    pub fn duplicate_keys(&self) -> Vec<u64> {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &self.records {
            *counts.entry(r.key).or_default() += 1;
        }
        let mut dup: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(k, _)| k)
            .collect();
        dup.sort_unstable();
        dup
    }
}

/// Parses the record stream after the magic into the longest valid
/// prefix; everything after the first malformed record is counted in
/// `dropped_bytes`.
fn parse_body(body: &[u8]) -> JournalSnapshot {
    let mut snapshot = JournalSnapshot::default();
    let mut at = 0;
    while at < body.len() {
        let rest = &body[at..];
        if rest.len() < RECORD_HEADER {
            break; // torn header
        }
        let key = u64::from_le_bytes(rest[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
            break; // torn payload
        };
        if record_checksum(key, payload) != checksum {
            break; // corrupt record: drop it and everything after
        }
        snapshot.records.push(JournalRecord {
            key,
            payload: payload.to_vec(),
        });
        at += RECORD_HEADER + len;
    }
    snapshot.dropped_bytes = (body.len() - at) as u64;
    snapshot
}

/// A handle on an append-only journal file. Cheap to construct; every
/// operation opens the file fresh, so any number of handles (across any
/// number of processes) can share one journal.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
    /// Tail size (bytes) past which an append compacts; `None` disables.
    compact_threshold: Option<u64>,
}

impl Journal {
    /// A journal at `path` (the file is created on first append). The
    /// compaction threshold comes from `VANGUARD_JOURNAL_COMPACT_BYTES`
    /// (default [`DEFAULT_COMPACT_BYTES`]; `0` disables).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let threshold = match std::env::var(COMPACT_BYTES_ENV) {
            Ok(v) => v.trim().parse::<u64>().ok(),
            Err(_) => Some(DEFAULT_COMPACT_BYTES),
        };
        Journal {
            path: path.into(),
            compact_threshold: threshold.filter(|&b| b > 0),
        }
    }

    /// Overrides the compaction threshold (`None` disables).
    pub fn set_compact_threshold(&mut self, bytes: Option<u64>) {
        self.compact_threshold = bytes.filter(|&b| b > 0);
    }

    /// The journal file path (the "tail" once a snapshot exists).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The compaction snapshot path: `<path>.snap`, same `VGJ1` format.
    pub fn snapshot_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".snap");
        PathBuf::from(os)
    }

    /// Reads one VGJ1 file into the longest-valid-prefix snapshot.
    /// `strict` controls what a bad magic means: the tail is `strict`
    /// (resuming from a non-journal would be meaningless → error), the
    /// compaction snapshot is not (a corrupt snapshot degrades into
    /// recomputed work → every byte counted dropped).
    fn read_file(&self, path: &Path, strict: bool) -> io::Result<JournalSnapshot> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalSnapshot::default()),
            Err(e) => return Err(e),
        };
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            if strict {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a VGJ1 journal", path.display()),
                ));
            }
            return Ok(JournalSnapshot {
                records: Vec::new(),
                dropped_bytes: bytes.len() as u64,
            });
        }
        Ok(parse_body(&bytes[JOURNAL_MAGIC.len()..]))
    }

    /// Merges a compaction snapshot with tail records: snapshot records
    /// first (in their original append order), then tail records whose
    /// key the snapshot does not already hold. The overlap case only
    /// arises from a crash between the snapshot rename and the tail
    /// truncation, where both files hold the same records — dropping
    /// the tail copy loses nothing.
    fn merge(snap: JournalSnapshot, tail: JournalSnapshot) -> JournalSnapshot {
        if snap.records.is_empty() && snap.dropped_bytes == 0 {
            return tail;
        }
        let seen: HashSet<u64> = snap.records.iter().map(|r| r.key).collect();
        let mut merged = snap;
        merged.dropped_bytes += tail.dropped_bytes;
        merged
            .records
            .extend(tail.records.into_iter().filter(|r| !seen.contains(&r.key)));
        merged
    }

    /// Reads and validates the journal, transparently merging the
    /// compaction snapshot (if any) with the tail. A missing file is an
    /// empty snapshot (a sweep that has not started yet); a present
    /// tail must open with the `VGJ1` magic.
    ///
    /// The tail is read *before* the snapshot: records only ever move
    /// tail → snapshot (under the append lock), so this ordering means
    /// a compaction racing the read can only grow the merged view.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or [`io::ErrorKind::InvalidData`] when the
    /// tail file exists but does not start with the journal magic (it is
    /// not a journal — resuming from it would be meaningless).
    pub fn read(&self) -> io::Result<JournalSnapshot> {
        let tail = self.read_file(&self.path, true)?;
        let snap = self.read_file(&self.snapshot_path(), false)?;
        Ok(Self::merge(snap, tail))
    }

    /// Opens (creating if needed) and exclusively locks the tail file.
    fn open_locked(&self) -> io::Result<File> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        file.lock()?;
        Ok(file)
    }

    /// Appends one completed-job record under an exclusive file lock
    /// (creating the file with its magic on first use). The record is
    /// written with a single `write_all` and synced, so a reader — or a
    /// resume after a crash — sees either the whole record or a torn
    /// tail it will drop. If the tail then exceeds the compaction
    /// threshold, it is compacted (best-effort) before the lock drops.
    ///
    /// # Errors
    ///
    /// Returns the I/O error; the caller treats a failed append as "job
    /// not journaled" and the job will be re-run on resume.
    pub fn append(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        let mut file = self.open_locked()?;
        let result = self.append_locked(&mut file, key, payload);
        if result.is_ok() {
            self.maybe_compact_locked(&mut file);
        }
        let _ = File::unlock(&file);
        result
    }

    /// Appends a record only if no record for `key` exists in the
    /// merged (snapshot + tail) view, checked under the same exclusive
    /// lock the append itself holds. This is the dedup that lets a live
    /// worker *steal* a lease-expired claim: even if the original
    /// holder is wedged rather than dead and later finishes the same
    /// job, at most one journal record for the key ever lands.
    ///
    /// Returns whether the record was written (`false` = already
    /// journaled, nothing to do).
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or [`io::ErrorKind::InvalidData`] for a
    /// non-journal tail file — same contract as [`Journal::append`].
    pub fn append_new(&self, key: u64, payload: &[u8]) -> io::Result<bool> {
        let mut file = self.open_locked()?;
        let result = (|| {
            let mut bytes = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            let journaled = if bytes.is_empty() {
                false
            } else {
                if bytes.len() < JOURNAL_MAGIC.len()
                    || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC
                {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not a VGJ1 journal", self.path.display()),
                    ));
                }
                parse_body(&bytes[JOURNAL_MAGIC.len()..]).contains(key)
            };
            if journaled || self.read_file(&self.snapshot_path(), false)?.contains(key) {
                return Ok(false);
            }
            self.append_locked(&mut file, key, payload)?;
            self.maybe_compact_locked(&mut file);
            Ok(true)
        })();
        let _ = File::unlock(&file);
        result
    }

    fn append_locked(&self, file: &mut File, key: u64, payload: &[u8]) -> io::Result<()> {
        self.ensure_magic_locked(file)?;
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
        record.extend_from_slice(payload);
        file.write_all(&record)?;
        file.sync_all()
    }

    /// Writes the magic into an empty tail, or verifies it on an
    /// existing one, leaving the cursor at the end of the file.
    fn ensure_magic_locked(&self, file: &mut File) -> io::Result<()> {
        let end = file.seek(SeekFrom::End(0))?;
        if end == 0 {
            file.write_all(JOURNAL_MAGIC)?;
        } else {
            // Refuse to append to a non-journal file.
            let mut magic = [0u8; 4];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic)?;
            if &magic != JOURNAL_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a VGJ1 journal", self.path.display()),
                ));
            }
            file.seek(SeekFrom::End(0))?;
        }
        Ok(())
    }

    /// Compacts if the tail has outgrown the threshold. Best-effort:
    /// the append that triggered this is already durable, so a failed
    /// compaction costs nothing but tail size.
    fn maybe_compact_locked(&self, file: &mut File) {
        let Some(threshold) = self.compact_threshold else {
            return;
        };
        match file.seek(SeekFrom::End(0)) {
            Ok(end) if end > threshold => {
                let _ = self.compact_locked(file);
            }
            _ => {}
        }
    }

    /// Folds every record (snapshot + tail, deduplicated first-wins by
    /// key to match [`JournalSnapshot::get`]) into the `.snap` snapshot
    /// via temp + rename, then truncates the tail back to its magic.
    /// Caller holds the tail lock. Crash-safe at every step: dying
    /// before the rename leaves the old snapshot + full tail; dying
    /// between rename and truncation leaves records in both files,
    /// which [`Journal::read`] deduplicates.
    fn compact_locked(&self, file: &mut File) -> io::Result<()> {
        self.ensure_magic_locked(file)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let tail = parse_body(&bytes[JOURNAL_MAGIC.len()..]);
        let snap = self.read_file(&self.snapshot_path(), false)?;
        let merged = Self::merge(snap, tail);

        let mut out = Vec::with_capacity(bytes.len() + JOURNAL_MAGIC.len());
        out.extend_from_slice(JOURNAL_MAGIC);
        let mut seen: HashSet<u64> = HashSet::new();
        for r in &merged.records {
            if !seen.insert(r.key) {
                continue; // first payload wins, matching get()
            }
            out.extend_from_slice(&r.key.to_le_bytes());
            out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&record_checksum(r.key, &r.payload).to_le_bytes());
            out.extend_from_slice(&r.payload);
        }

        let snap_path = self.snapshot_path();
        let tmp = {
            let mut os = snap_path.as_os_str().to_os_string();
            os.push(format!(".tmp-{}", std::process::id()));
            PathBuf::from(os)
        };
        let write_result = (|| {
            let mut tmp_file = File::create(&tmp)?;
            tmp_file.write_all(&out)?;
            tmp_file.sync_all()?;
            fs::rename(&tmp, &snap_path)
        })();
        if write_result.is_err() {
            let _ = fs::remove_file(&tmp);
            return write_result;
        }
        // Snapshot is durable; retire the tail down to its magic.
        file.set_len(JOURNAL_MAGIC.len() as u64)?;
        file.sync_all()
    }

    /// Compacts the journal now, regardless of size. Used by tests and
    /// the property-based compaction adversary; production compaction
    /// happens automatically on append past the threshold.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or [`io::ErrorKind::InvalidData`] for a
    /// non-journal tail file.
    pub fn compact(&self) -> io::Result<()> {
        let mut file = self.open_locked()?;
        let result = self.compact_locked(&mut file);
        let _ = File::unlock(&file);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> Journal {
        let dir =
            std::env::temp_dir().join(format!("vanguard-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Journal::new(dir.join("journal.vgj"))
    }

    fn cleanup(j: &Journal) {
        if let Some(dir) = j.path().parent() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn missing_file_is_an_empty_snapshot() {
        let j = temp_journal("missing");
        let snap = j.read().unwrap();
        assert!(snap.records.is_empty());
        assert_eq!(snap.dropped_bytes, 0);
        cleanup(&j);
    }

    #[test]
    fn append_then_read_roundtrips_in_order() {
        let j = temp_journal("roundtrip");
        j.append(7, b"seven").unwrap();
        j.append(11, b"").unwrap();
        j.append(7, b"seven-again").unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.records[0].key, 7);
        assert_eq!(snap.records[0].payload, b"seven");
        assert_eq!(snap.records[1].payload, b"");
        assert_eq!(snap.get(11), Some(&b""[..]));
        assert!(snap.contains(7));
        assert!(!snap.contains(12));
        assert_eq!(snap.duplicate_keys(), vec![7]);
        assert_eq!(snap.dropped_bytes, 0);
        cleanup(&j);
    }

    #[test]
    fn torn_tail_is_dropped_not_trusted() {
        let j = temp_journal("torn");
        j.append(1, b"first").unwrap();
        j.append(2, b"second").unwrap();
        let bytes = fs::read(j.path()).unwrap();
        // Tear the last record mid-payload.
        fs::write(j.path(), &bytes[..bytes.len() - 3]).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 1);
        assert!(snap.dropped_bytes > 0);
        // Appending after a torn tail still works; the torn bytes stay
        // dead (the reader drops everything after the first bad record).
        j.append(3, b"third").unwrap();
        let snap = j.read().unwrap();
        assert_eq!(
            snap.records.len(),
            1,
            "records after a torn tail stay dropped"
        );
        cleanup(&j);
    }

    #[test]
    fn corrupt_record_drops_it_and_the_rest() {
        let j = temp_journal("corrupt");
        j.append(1, b"aaaa").unwrap();
        j.append(2, b"bbbb").unwrap();
        j.append(3, b"cccc").unwrap();
        let mut bytes = fs::read(j.path()).unwrap();
        // Flip one payload byte of the middle record.
        let mid = JOURNAL_MAGIC.len() + (RECORD_HEADER + 4) + RECORD_HEADER + 1;
        bytes[mid] ^= 0x20;
        fs::write(j.path(), &bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 1);
        assert!(snap.dropped_bytes > 0);
        cleanup(&j);
    }

    #[test]
    fn flipped_key_byte_is_detected() {
        let j = temp_journal("keyflip");
        j.append(0x1111, b"aaaa").unwrap();
        j.append(0x2222, b"bbbb").unwrap();
        let mut bytes = fs::read(j.path()).unwrap();
        // Flip a byte inside the *key* field of the second record: the
        // checksum covers the header, so the key is not trusted either.
        let key_at = JOURNAL_MAGIC.len() + (RECORD_HEADER + 4) + 1;
        bytes[key_at] ^= 0x01;
        fs::write(j.path(), &bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 0x1111);
        assert!(snap.dropped_bytes > 0);
        cleanup(&j);
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let j = temp_journal("badmagic");
        fs::create_dir_all(j.path().parent().unwrap()).unwrap();
        fs::write(j.path(), b"not a journal at all").unwrap();
        assert_eq!(j.read().unwrap_err().kind(), io::ErrorKind::InvalidData);
        assert!(j.append(1, b"x").is_err());
        cleanup(&j);
    }

    #[test]
    fn compaction_roundtrips_and_truncates_the_tail() {
        let j = temp_journal("compact");
        j.append(1, b"one").unwrap();
        j.append(2, b"two").unwrap();
        j.append(3, b"three").unwrap();
        let before = j.read().unwrap();
        j.compact().unwrap();
        assert!(j.snapshot_path().exists(), "compaction writes the .snap");
        assert_eq!(
            fs::metadata(j.path()).unwrap().len(),
            JOURNAL_MAGIC.len() as u64,
            "tail retires to its magic"
        );
        let after = j.read().unwrap();
        assert_eq!(after.records, before.records, "merged view is unchanged");
        assert_eq!(after.dropped_bytes, 0);
        // Appends keep landing in the tail and merge after the snapshot.
        j.append(4, b"four").unwrap();
        let merged = j.read().unwrap();
        assert_eq!(merged.records.len(), 4);
        assert_eq!(merged.records[3].key, 4);
        assert_eq!(merged.get(2), Some(&b"two"[..]));
        cleanup(&j);
    }

    #[test]
    fn crash_overlap_between_snapshot_and_tail_deduplicates() {
        let j = temp_journal("overlap");
        j.append(1, b"one").unwrap();
        j.append(2, b"two").unwrap();
        // Simulate dying between the snapshot rename and the tail
        // truncation: compact, then restore the pre-compaction tail so
        // both files hold the same records.
        let tail_bytes = fs::read(j.path()).unwrap();
        j.compact().unwrap();
        fs::write(j.path(), &tail_bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 2, "overlapping records deduplicate");
        assert!(snap.duplicate_keys().is_empty());
        assert_eq!(snap.get(1), Some(&b"one"[..]));
        cleanup(&j);
    }

    #[test]
    fn append_new_skips_journaled_keys_across_compaction() {
        let j = temp_journal("appendnew");
        assert!(j.append_new(1, b"one").unwrap());
        assert!(!j.append_new(1, b"one-again").unwrap(), "tail dedup");
        j.compact().unwrap();
        assert!(
            !j.append_new(1, b"one-after-compact").unwrap(),
            "snapshot dedup"
        );
        assert!(j.append_new(2, b"two").unwrap());
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.get(1), Some(&b"one"[..]));
        assert!(snap.duplicate_keys().is_empty());
        cleanup(&j);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_dropped_bytes() {
        let j = temp_journal("badsnap");
        j.append(1, b"one").unwrap();
        j.compact().unwrap();
        j.append(2, b"two").unwrap();
        // Flip a payload byte inside the snapshot: its records drop
        // (recomputed on resume) but the read still succeeds and the
        // tail survives.
        let mut snap_bytes = fs::read(j.snapshot_path()).unwrap();
        let at = snap_bytes.len() - 1;
        snap_bytes[at] ^= 0x20;
        fs::write(j.snapshot_path(), &snap_bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 2);
        assert!(snap.dropped_bytes > 0);
        // A snapshot that is not VGJ1 at all degrades the same way.
        fs::write(j.snapshot_path(), b"junk").unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.dropped_bytes, 4);
        cleanup(&j);
    }

    #[test]
    fn appends_auto_compact_past_the_threshold() {
        let mut j = temp_journal("autocompact");
        j.set_compact_threshold(Some(64));
        for key in 0..8u64 {
            j.append(key, &[0xAB; 32]).unwrap();
        }
        assert!(j.snapshot_path().exists(), "threshold triggered compaction");
        assert!(
            fs::metadata(j.path()).unwrap().len() <= 64,
            "tail stays bounded"
        );
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 8);
        assert!(snap.duplicate_keys().is_empty());
        assert_eq!(snap.dropped_bytes, 0);
        cleanup(&j);
    }

    #[test]
    fn concurrent_appends_never_tear() {
        let j = temp_journal("concurrent");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let j = j.clone();
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let key = t * 100 + i;
                        j.append(key, format!("payload-{key}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 100);
        assert_eq!(snap.dropped_bytes, 0);
        assert!(snap.duplicate_keys().is_empty());
        for r in &snap.records {
            assert_eq!(r.payload, format!("payload-{}", r.key).as_bytes());
        }
        cleanup(&j);
    }
}

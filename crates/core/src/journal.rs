//! Persistent append-only job journal: the resume backbone of the
//! sweep service.
//!
//! A sweep's workers append one checksummed record per *completed* job,
//! keyed by the job's deterministic content-addressed key (see
//! [`Engine::job_key`](crate::engine::Engine::job_key)). An interrupted
//! sweep — `SIGKILL`ed worker, lost power, cancelled CI run — resumes
//! from the journal instead of restarting: every key already present is
//! skipped, and the merged output is reconstructed from the recorded
//! payloads without re-running a single job.
//!
//! The format is designed around the same crash-safety rules as the
//! disk cache (DESIGN.md §7.11):
//!
//! * **Append-only** — records are only ever added at the tail under an
//!   exclusive file lock, so concurrent worker *processes* never
//!   interleave partial records.
//! * **Checksummed** — the file opens with a `VGJ1` magic and every
//!   record carries an FNV-1a checksum over its key, length, and
//!   payload. A torn tail (the writer died mid-append) or a flipped
//!   bit anywhere in a record fails validation.
//! * **Drop-the-tail, never trust it** — [`Journal::read`] returns the
//!   longest valid prefix; anything after the first malformed record is
//!   reported as [`JournalSnapshot::dropped_bytes`] and the jobs it
//!   might have described are simply recomputed. A corrupt journal
//!   degrades a resume into extra work, never into wrong results.

use crate::diskcache::fnv1a;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Journal file magic ("Vanguard Journal v1").
pub const JOURNAL_MAGIC: &[u8; 4] = b"VGJ1";

/// Per-record header size: key (8) + payload length (4) + checksum (8).
const RECORD_HEADER: usize = 20;

/// Record checksum: FNV-1a over the key and length header bytes
/// followed by the payload, so a flipped bit *anywhere* in a record —
/// including its key — fails validation and drops the tail.
fn record_checksum(key: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a(&buf)
}

/// One validated journal record: a completed job's key and its recorded
/// result payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// The job's deterministic content-addressed key.
    pub key: u64,
    /// The recorded result (the sweep service stores encoded
    /// [`SimStats`](vanguard_sim::SimStats); the journal itself is
    /// payload-agnostic).
    pub payload: Vec<u8>,
}

/// The validated contents of a journal file.
#[derive(Clone, Debug, Default)]
pub struct JournalSnapshot {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded after the first malformed record (a torn or
    /// corrupt tail — the affected jobs are recomputed, never trusted).
    pub dropped_bytes: u64,
}

impl JournalSnapshot {
    /// Whether a record for `key` exists.
    pub fn contains(&self, key: u64) -> bool {
        self.records.iter().any(|r| r.key == key)
    }

    /// The first recorded payload for `key`.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.records
            .iter()
            .find(|r| r.key == key)
            .map(|r| r.payload.as_slice())
    }

    /// Keys that appear more than once — a completed job re-ran its
    /// side effects. The kill-and-resume fault class asserts this is
    /// empty across any kill/resume split.
    pub fn duplicate_keys(&self) -> Vec<u64> {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &self.records {
            *counts.entry(r.key).or_default() += 1;
        }
        let mut dup: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(k, _)| k)
            .collect();
        dup.sort_unstable();
        dup
    }
}

/// A handle on an append-only journal file. Cheap to construct; every
/// operation opens the file fresh, so any number of handles (across any
/// number of processes) can share one journal.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path` (the file is created on first append).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads and validates the journal. A missing file is an empty
    /// snapshot (a sweep that has not started yet); a present file must
    /// open with the `VGJ1` magic.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or [`io::ErrorKind::InvalidData`] when the
    /// file exists but does not start with the journal magic (it is not
    /// a journal — resuming from it would be meaningless).
    pub fn read(&self) -> io::Result<JournalSnapshot> {
        let bytes = match fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalSnapshot::default()),
            Err(e) => return Err(e),
        };
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a VGJ1 journal", self.path.display()),
            ));
        }
        let mut snapshot = JournalSnapshot::default();
        let mut at = JOURNAL_MAGIC.len();
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < RECORD_HEADER {
                break; // torn header
            }
            let key = u64::from_le_bytes(rest[0..8].try_into().unwrap());
            let len = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(rest[12..20].try_into().unwrap());
            let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
                break; // torn payload
            };
            if record_checksum(key, payload) != checksum {
                break; // corrupt record: drop it and everything after
            }
            snapshot.records.push(JournalRecord {
                key,
                payload: payload.to_vec(),
            });
            at += RECORD_HEADER + len;
        }
        snapshot.dropped_bytes = (bytes.len() - at) as u64;
        Ok(snapshot)
    }

    /// Appends one completed-job record under an exclusive file lock
    /// (creating the file with its magic on first use). The record is
    /// written with a single `write_all` and synced, so a reader — or a
    /// resume after a crash — sees either the whole record or a torn
    /// tail it will drop.
    ///
    /// # Errors
    ///
    /// Returns the I/O error; the caller treats a failed append as "job
    /// not journaled" and the job will be re-run on resume.
    pub fn append(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        file.lock()?;
        let result = self.append_locked(&mut file, key, payload);
        let _ = File::unlock(&file);
        result
    }

    fn append_locked(&self, file: &mut File, key: u64, payload: &[u8]) -> io::Result<()> {
        let end = file.seek(SeekFrom::End(0))?;
        if end == 0 {
            file.write_all(JOURNAL_MAGIC)?;
        } else {
            // Refuse to append to a non-journal file.
            let mut magic = [0u8; 4];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic)?;
            if &magic != JOURNAL_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a VGJ1 journal", self.path.display()),
                ));
            }
            file.seek(SeekFrom::End(0))?;
        }
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
        record.extend_from_slice(payload);
        file.write_all(&record)?;
        file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> Journal {
        let dir =
            std::env::temp_dir().join(format!("vanguard-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Journal::new(dir.join("journal.vgj"))
    }

    fn cleanup(j: &Journal) {
        if let Some(dir) = j.path().parent() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn missing_file_is_an_empty_snapshot() {
        let j = temp_journal("missing");
        let snap = j.read().unwrap();
        assert!(snap.records.is_empty());
        assert_eq!(snap.dropped_bytes, 0);
        cleanup(&j);
    }

    #[test]
    fn append_then_read_roundtrips_in_order() {
        let j = temp_journal("roundtrip");
        j.append(7, b"seven").unwrap();
        j.append(11, b"").unwrap();
        j.append(7, b"seven-again").unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.records[0].key, 7);
        assert_eq!(snap.records[0].payload, b"seven");
        assert_eq!(snap.records[1].payload, b"");
        assert_eq!(snap.get(11), Some(&b""[..]));
        assert!(snap.contains(7));
        assert!(!snap.contains(12));
        assert_eq!(snap.duplicate_keys(), vec![7]);
        assert_eq!(snap.dropped_bytes, 0);
        cleanup(&j);
    }

    #[test]
    fn torn_tail_is_dropped_not_trusted() {
        let j = temp_journal("torn");
        j.append(1, b"first").unwrap();
        j.append(2, b"second").unwrap();
        let bytes = fs::read(j.path()).unwrap();
        // Tear the last record mid-payload.
        fs::write(j.path(), &bytes[..bytes.len() - 3]).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 1);
        assert!(snap.dropped_bytes > 0);
        // Appending after a torn tail still works; the torn bytes stay
        // dead (the reader drops everything after the first bad record).
        j.append(3, b"third").unwrap();
        let snap = j.read().unwrap();
        assert_eq!(
            snap.records.len(),
            1,
            "records after a torn tail stay dropped"
        );
        cleanup(&j);
    }

    #[test]
    fn corrupt_record_drops_it_and_the_rest() {
        let j = temp_journal("corrupt");
        j.append(1, b"aaaa").unwrap();
        j.append(2, b"bbbb").unwrap();
        j.append(3, b"cccc").unwrap();
        let mut bytes = fs::read(j.path()).unwrap();
        // Flip one payload byte of the middle record.
        let mid = JOURNAL_MAGIC.len() + (RECORD_HEADER + 4) + RECORD_HEADER + 1;
        bytes[mid] ^= 0x20;
        fs::write(j.path(), &bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 1);
        assert!(snap.dropped_bytes > 0);
        cleanup(&j);
    }

    #[test]
    fn flipped_key_byte_is_detected() {
        let j = temp_journal("keyflip");
        j.append(0x1111, b"aaaa").unwrap();
        j.append(0x2222, b"bbbb").unwrap();
        let mut bytes = fs::read(j.path()).unwrap();
        // Flip a byte inside the *key* field of the second record: the
        // checksum covers the header, so the key is not trusted either.
        let key_at = JOURNAL_MAGIC.len() + (RECORD_HEADER + 4) + 1;
        bytes[key_at] ^= 0x01;
        fs::write(j.path(), &bytes).unwrap();
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key, 0x1111);
        assert!(snap.dropped_bytes > 0);
        cleanup(&j);
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let j = temp_journal("badmagic");
        fs::create_dir_all(j.path().parent().unwrap()).unwrap();
        fs::write(j.path(), b"not a journal at all").unwrap();
        assert_eq!(j.read().unwrap_err().kind(), io::ErrorKind::InvalidData);
        assert!(j.append(1, b"x").is_err());
        cleanup(&j);
    }

    #[test]
    fn concurrent_appends_never_tear() {
        let j = temp_journal("concurrent");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let j = j.clone();
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let key = t * 100 + i;
                        j.append(key, format!("payload-{key}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let snap = j.read().unwrap();
        assert_eq!(snap.records.len(), 100);
        assert_eq!(snap.dropped_bytes, 0);
        assert!(snap.duplicate_keys().is_empty());
        for r in &snap.records {
            assert_eq!(r.payload, format!("payload-{}", r.key).as_bytes());
        }
        cleanup(&j);
    }
}

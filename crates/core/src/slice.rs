//! Backward condition slices within a block.

use vanguard_ir::RegSet;
use vanguard_isa::{BasicBlock, Inst, Reg};

/// Why a condition slice cannot be pushed down into resolution blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// The slice contains an instruction that cannot be re-executed
    /// (store, control, or FP with side channels — conservatively anything
    /// but ALU/Cmp/Load).
    NonDuplicable {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A store after a slice load could change the loaded value when the
    /// slice re-executes at the end of the block.
    StoreAfterSliceLoad {
        /// Index of the store.
        store_index: usize,
    },
    /// A non-slice instruction overwrites a register a slice instruction
    /// reads (the re-executed slice would see the new value).
    InputClobbered {
        /// Index of the clobbering instruction.
        index: usize,
        /// The clobbered register.
        reg: Reg,
    },
    /// A non-slice instruction overwrites a slice output (the re-executed
    /// slice would undo the newer value).
    OutputClobbered {
        /// Index of the clobbering instruction.
        index: usize,
        /// The clobbered register.
        reg: Reg,
    },
    /// The block has no conditional terminator.
    NoBranch,
}

/// The backward slice of a block's branch condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionSlice {
    /// Indices (ascending) of the slice instructions, excluding the branch
    /// itself.
    pub indices: Vec<usize>,
    /// Registers the slice reads from outside itself (live-ins).
    pub inputs: RegSet,
    /// Registers the slice writes.
    pub outputs: RegSet,
}

/// Computes the backward slice of the branch condition of `block` and
/// verifies that it can be *pushed down* past the rest of the block (i.e.
/// duplicated at the block's end — the §3 "push the branch resolution
/// slice down both paths" step).
///
/// # Errors
///
/// Returns a [`SliceError`] describing the first legality violation.
pub fn condition_slice(block: &BasicBlock) -> Result<ConditionSlice, SliceError> {
    let insts = block.insts();
    let Some(Inst::Branch { src, .. }) = block.terminator() else {
        return Err(SliceError::NoBranch);
    };
    let branch_idx = insts.len() - 1;

    // Walk backwards, collecting the defining instructions of needed regs.
    let mut needed = RegSet::new();
    needed.insert(*src);
    let mut in_slice = vec![false; insts.len()];
    for i in (0..branch_idx).rev() {
        let inst = &insts[i];
        let Some(d) = inst.dst() else { continue };
        if needed.contains(d) {
            in_slice[i] = true;
            needed.remove(d);
            needed.extend(inst.srcs());
        }
    }

    let indices: Vec<usize> = (0..branch_idx).filter(|&i| in_slice[i]).collect();
    let mut inputs = RegSet::new();
    let mut outputs = RegSet::new();
    let mut slice_has_load = false;
    for &i in &indices {
        let inst = &insts[i];
        if !matches!(
            inst,
            Inst::Alu { .. } | Inst::Cmp { .. } | Inst::Load { .. }
        ) {
            return Err(SliceError::NonDuplicable { index: i });
        }
        slice_has_load |= matches!(inst, Inst::Load { .. });
        for s in inst.srcs() {
            if !outputs.contains(s) {
                inputs.insert(s);
            }
        }
        if let Some(d) = inst.dst() {
            outputs.insert(d);
        }
    }

    // Interference checks: the slice will re-execute after the whole block.
    let first_slice = indices.first().copied().unwrap_or(branch_idx);
    let mut reads_so_far = RegSet::new();
    for (&idx, inst) in indices.iter().zip(indices.iter().map(|&i| &insts[i])) {
        let _ = idx;
        reads_so_far.extend(inst.srcs());
    }
    for (i, inst) in insts.iter().enumerate().take(branch_idx) {
        if in_slice[i] {
            continue;
        }
        if i < first_slice {
            continue; // executes before the slice either way
        }
        if matches!(inst, Inst::Store { .. }) && slice_has_load {
            return Err(SliceError::StoreAfterSliceLoad { store_index: i });
        }
        if let Some(d) = inst.dst() {
            // Clobbers an input the re-executed slice will read?
            if reads_so_far.contains(d) && !outputs.contains(d) {
                return Err(SliceError::InputClobbered { index: i, reg: d });
            }
            // Overwrites a slice output the re-execution would undo?
            if outputs.contains(d) {
                return Err(SliceError::OutputClobbered { index: i, reg: d });
            }
        }
    }

    Ok(ConditionSlice {
        indices,
        inputs,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, BlockId, CmpKind, CondKind, Operand};

    fn block(insts: Vec<Inst>) -> BasicBlock {
        let mut b = BasicBlock::new("t");
        *b.insts_mut() = insts;
        b
    }

    fn branch(src: Reg) -> Inst {
        Inst::Branch {
            cond: CondKind::Nz,
            src,
            target: BlockId(0),
        }
    }

    #[test]
    fn simple_load_cmp_slice() {
        // Exactly the Figure 6 shape: ld; cmp; br.
        let b = block(vec![
            Inst::load(Reg(1), Reg(10), 0),
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            branch(Reg(2)),
        ]);
        let s = condition_slice(&b).unwrap();
        assert_eq!(s.indices, vec![0, 1]);
        assert!(s.inputs.contains(Reg(10)));
        assert!(s.outputs.contains(Reg(1)) && s.outputs.contains(Reg(2)));
    }

    #[test]
    fn unrelated_instructions_are_excluded() {
        let b = block(vec![
            Inst::alu(AluOp::Add, Reg(5), Operand::Imm(1), Operand::Imm(2)),
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            Inst::alu(AluOp::Add, Reg(6), Operand::Imm(3), Operand::Imm(4)),
            branch(Reg(2)),
        ]);
        let s = condition_slice(&b).unwrap();
        assert_eq!(s.indices, vec![1]);
    }

    #[test]
    fn only_last_definition_matters() {
        let b = block(vec![
            Inst::mov(Reg(2), Operand::Imm(0)), // dead def of r2
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            branch(Reg(2)),
        ]);
        let s = condition_slice(&b).unwrap();
        assert_eq!(s.indices, vec![1]);
    }

    #[test]
    fn store_after_slice_load_is_illegal() {
        let b = block(vec![
            Inst::load(Reg(1), Reg(10), 0),
            Inst::store(Reg(5), Reg(11), 0), // may alias; slice re-executes late
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            branch(Reg(2)),
        ]);
        assert_eq!(
            condition_slice(&b).unwrap_err(),
            SliceError::StoreAfterSliceLoad { store_index: 1 }
        );
    }

    #[test]
    fn store_before_slice_is_fine() {
        let b = block(vec![
            Inst::store(Reg(5), Reg(11), 0),
            Inst::load(Reg(1), Reg(10), 0),
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            branch(Reg(2)),
        ]);
        assert!(condition_slice(&b).is_ok());
    }

    #[test]
    fn input_clobber_detected() {
        let b = block(vec![
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            Inst::mov(Reg(1), Operand::Imm(9)), // clobbers slice input r1
            branch(Reg(2)),
        ]);
        assert_eq!(
            condition_slice(&b).unwrap_err(),
            SliceError::InputClobbered {
                index: 1,
                reg: Reg(1)
            }
        );
    }

    #[test]
    fn output_clobber_detected() {
        let b = block(vec![
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            Inst::alu(AluOp::Or, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(1)),
            branch(Reg(2)),
        ]);
        // r2 is redefined from the slice output: the later def IS the slice
        // (backward walk finds the `or`), which reads r2 from the cmp — so
        // both are in the slice and this is legal.
        let s = condition_slice(&b).unwrap();
        assert_eq!(s.indices, vec![0, 1]);
    }

    #[test]
    fn live_in_condition_has_empty_slice() {
        let b = block(vec![Inst::Nop, branch(Reg(7))]);
        let s = condition_slice(&b).unwrap();
        assert!(s.indices.is_empty());
        assert!(s.inputs.is_empty());
    }

    #[test]
    fn non_branch_terminator_is_an_error() {
        let b = block(vec![Inst::Halt]);
        assert_eq!(condition_slice(&b).unwrap_err(), SliceError::NoBranch);
    }
}

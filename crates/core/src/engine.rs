//! The experiment engine: staged, artifact-cached, parallel execution
//! of simulation sweeps.
//!
//! [`Experiment::run`](crate::Experiment::run) decomposes into three
//! stages — **profile** (TRAIN input, once per program × predictor),
//! **compile-pair** (baseline + transformed, once per program × profile
//! × machine width × transform options), and **simulate-one-ref** (one
//! program variant on one REF input on one machine). Every figure and
//! table of the paper's evaluation is a sweep over those stages, so the
//! engine:
//!
//! * enumerates a sweep as a flat list of [`SimJob`]s keyed by
//!   `(benchmark, input, machine, predictor, variant)`;
//! * memoizes profiles and compiled pairs in an **artifact cache** so
//!   each is produced at most once per distinct key, shared across
//!   widths, predictor rungs, and REF inputs;
//! * executes jobs on a [`std::thread::scope`] worker pool, collecting
//!   results in job-index order so output is **bit-identical** to
//!   serial execution regardless of worker count (see DESIGN.md §6);
//! * reports per-job and per-stage progress (with wall-clock timings
//!   and cache hit/miss accounting) through [`ProgressObserver`].
//!
//! Worker count defaults to the machine's available parallelism and can
//! be overridden with the `VANGUARD_THREADS` environment variable.

use crate::experiment::{Experiment, ExperimentError, ExperimentInput, ExperimentOutcome, RefRun};
use crate::report::TransformReport;
use crate::transform::TransformOptions;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use vanguard_ir::Profile;
use vanguard_isa::{DecodedImage, Program};
use vanguard_sim::{MachineConfig, SimStats};

pub use vanguard_bpred::LadderRung as PredictorKind;

/// The paper's default profiling step budget (also used by
/// [`Experiment::new`]).
pub const DEFAULT_MAX_PROFILE_STEPS: u64 = 100_000_000;

/// Which side of a compiled pair a job simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The PGO-laid-out, scheduled original program.
    Baseline,
    /// The decomposed-branch program.
    Transformed,
}

/// One unit of simulation work: a fully keyed
/// `(benchmark, input, machine, predictor, variant)` tuple.
///
/// `bench` indexes the engine's registered benchmarks (see
/// [`Engine::add_benchmark`]); `ref_input` indexes that benchmark's REF
/// inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimJob {
    /// Benchmark id from [`Engine::add_benchmark`].
    pub bench: usize,
    /// REF-input index within the benchmark.
    pub ref_input: usize,
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Predictor rung (drives both profiling and simulation).
    pub predictor: PredictorKind,
    /// Baseline or transformed program.
    pub variant: Variant,
}

/// A completed [`SimJob`].
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: SimJob,
    /// Simulation statistics.
    pub stats: SimStats,
    /// Wall-clock time of the simulate stage alone (excludes cached or
    /// shared profile/compile work).
    pub sim_elapsed: Duration,
}

impl JobResult {
    /// Host-side throughput of this job: millions of committed simulated
    /// instructions per wall-clock second of its simulate stage.
    pub fn sim_mips(&self) -> f64 {
        self.stats.mips(self.sim_elapsed)
    }
}

/// Cache key of a profiling run: a profile depends on the program and
/// TRAIN input (both identified by the benchmark id), the predictor the
/// profiler consults, and the step budget. It does **not** depend on
/// machine width or transform options, so one profile serves every
/// width and option sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// Benchmark id (program + TRAIN input identity).
    pub bench: usize,
    /// Profiling predictor.
    pub predictor: PredictorKind,
    /// Profiling step budget.
    pub max_steps: u64,
}

/// Exact-valued (bit-pattern) form of [`TransformOptions`] usable as a
/// hash-map key. Constructed with [`TransformKey::from_options`]; two
/// keys are equal iff every option field is identical, so distinct
/// option sets can never collide in the artifact cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransformKey {
    /// `select.threshold` as IEEE-754 bits.
    pub threshold_bits: u64,
    /// `select.min_executions`.
    pub min_executions: u64,
    /// `select.forward_only`.
    pub forward_only: bool,
    /// `max_hoist`.
    pub max_hoist: usize,
    /// `hoist_loads`.
    pub hoist_loads: bool,
    /// `shadow_temps`.
    pub shadow_temps: bool,
}

impl TransformKey {
    /// The key of an option set.
    pub fn from_options(opts: &TransformOptions) -> Self {
        TransformKey {
            threshold_bits: opts.select.threshold.to_bits(),
            min_executions: opts.select.min_executions,
            forward_only: opts.select.forward_only,
            max_hoist: opts.max_hoist,
            hoist_loads: opts.hoist_loads,
            shadow_temps: opts.shadow_temps,
        }
    }
}

/// Cache key of a compiled baseline/transformed pair: the profile it
/// was guided by, the machine *width* (the only machine parameter the
/// compiler consults, so 32 KB- and 24 KB-I$ variants share pairs), and
/// the transform options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// The guiding profile's key.
    pub profile: ProfileKey,
    /// Machine width the scheduler targeted.
    pub width: usize,
    /// Transform options.
    pub options: TransformKey,
}

/// A cached compiled pair plus its transformation report.
///
/// Also carries the pre-decoded flat image of each side, built once at
/// compile time and shared by every simulation of the pair (the
/// simulator's fetch walks the image, not the nested program).
#[derive(Clone, Debug)]
pub struct CompiledPair {
    /// Laid-out, scheduled baseline.
    pub baseline: Arc<Program>,
    /// Laid-out, scheduled transformed program.
    pub transformed: Arc<Program>,
    /// Pre-decoded image of the baseline.
    pub baseline_image: Arc<DecodedImage>,
    /// Pre-decoded image of the transformed program.
    pub transformed_image: Arc<DecodedImage>,
    /// The transformation report (PBC, PISCS, hoist counts).
    pub report: TransformReport,
}

/// A pipeline stage, for observer events and timing attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// TRAIN-input profiling.
    Profile,
    /// Baseline + transformed compilation.
    Compile,
    /// One REF-input simulation.
    Simulate,
}

impl Stage {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Profile => "profile",
            Stage::Compile => "compile",
            Stage::Simulate => "simulate",
        }
    }
}

/// Observer of engine progress. All methods have empty defaults; they
/// are called from worker threads, so implementations must be
/// `Send + Sync` (use atomics or locks for mutable state; printing to
/// stderr keeps figure output on stdout byte-identical).
pub trait ProgressObserver: Send + Sync {
    /// A job was picked up by a worker.
    fn job_started(&self, index: usize, job: &SimJob, bench_name: &str) {
        let _ = (index, job, bench_name);
    }

    /// A job finished, with its [`SimStats`] summary and the wall-clock
    /// time of its simulate stage.
    fn job_finished(
        &self,
        index: usize,
        job: &SimJob,
        bench_name: &str,
        stats: &SimStats,
        elapsed: Duration,
    ) {
        let _ = (index, job, bench_name, stats, elapsed);
    }

    /// A profile or compile artifact was produced (`cached == false`)
    /// or served from the cache (`cached == true`). Simulate stages
    /// report through [`ProgressObserver::job_finished`] instead.
    fn stage_completed(&self, stage: Stage, bench_name: &str, elapsed: Duration, cached: bool) {
        let _ = (stage, bench_name, elapsed, cached);
    }
}

/// Cache and timing counters, snapshot via [`Engine::stats`].
///
/// `profile_misses`/`compile_misses` count actual stage executions —
/// in any sweep they equal the number of *distinct* cache keys touched,
/// which is how the at-most-once artifact guarantee is asserted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Profile-stage executions (distinct profile keys computed).
    pub profile_misses: u64,
    /// Profile requests served from the cache.
    pub profile_hits: u64,
    /// Compile-stage executions (distinct compile keys computed).
    pub compile_misses: u64,
    /// Compile requests served from the cache.
    pub compile_hits: u64,
    /// Simulate stages executed.
    pub sim_jobs: u64,
    /// Committed simulated instructions, summed over simulate stages.
    pub sim_insts: u64,
    /// Aggregate wall-clock nanoseconds in the profile stage.
    pub profile_nanos: u64,
    /// Aggregate wall-clock nanoseconds in the compile stage.
    pub compile_nanos: u64,
    /// Aggregate wall-clock nanoseconds in the simulate stage (summed
    /// across workers, so this can exceed elapsed time).
    pub sim_nanos: u64,
}

impl EngineStats {
    /// Host-side simulation throughput: millions of committed simulated
    /// instructions per worker-summed wall-clock second of the simulate
    /// stage (i.e. per-worker MIPS, independent of the pool size).
    pub fn sim_mips(&self) -> f64 {
        if self.sim_nanos == 0 {
            return 0.0;
        }
        self.sim_insts as f64 / 1e6 / (self.sim_nanos as f64 / 1e9)
    }

    /// Renders the per-stage timing/cache summary (one line per stage).
    pub fn summary(&self) -> String {
        fn ms(nanos: u64) -> f64 {
            nanos as f64 / 1e6
        }
        format!(
            "profile : {:>4} runs, {:>4} cache hits, {:>9.1} ms\n\
             compile : {:>4} runs, {:>4} cache hits, {:>9.1} ms\n\
             simulate: {:>4} jobs, {:>21.1} ms, {:>7.2} MIPS/worker",
            self.profile_misses,
            self.profile_hits,
            ms(self.profile_nanos),
            self.compile_misses,
            self.compile_hits,
            ms(self.compile_nanos),
            self.sim_jobs,
            ms(self.sim_nanos),
            self.sim_mips(),
        )
    }
}

/// One cell of a sweep matrix: a benchmark evaluated end-to-end (all
/// REF inputs, both variants) on one machine with one predictor.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Benchmark id from [`Engine::add_benchmark`].
    pub bench: usize,
    /// Machine configuration.
    pub machine: MachineConfig,
    /// Predictor rung.
    pub predictor: PredictorKind,
}

type ProfileSlot = Arc<OnceLock<Result<Arc<Profile>, ExperimentError>>>;
type CompileSlot = Arc<OnceLock<CompiledPair>>;

/// The parallel, artifact-cached experiment engine. See the
/// [module docs](self) for the execution model.
pub struct Engine {
    workers: usize,
    benchmarks: Vec<ExperimentInput>,
    observers: Vec<Arc<dyn ProgressObserver>>,
    profiles: Mutex<HashMap<ProfileKey, ProfileSlot>>,
    pairs: Mutex<HashMap<CompileKey, CompileSlot>>,
    profile_misses: AtomicU64,
    profile_hits: AtomicU64,
    compile_misses: AtomicU64,
    compile_hits: AtomicU64,
    sim_jobs: AtomicU64,
    sim_insts: AtomicU64,
    profile_nanos: AtomicU64,
    compile_nanos: AtomicU64,
    sim_nanos: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("benchmarks", &self.benchmarks.len())
            .field("observers", &self.observers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Worker count: `VANGUARD_THREADS` when set to a positive integer,
/// else the machine's available parallelism.
pub fn default_workers() -> usize {
    std::env::var("VANGUARD_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with [`default_workers`].
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// An engine with an explicit worker count (≥ 1). `1` reproduces
    /// strictly serial execution.
    pub fn with_workers(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            benchmarks: Vec::new(),
            observers: Vec::new(),
            profiles: Mutex::new(HashMap::new()),
            pairs: Mutex::new(HashMap::new()),
            profile_misses: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            compile_hits: AtomicU64::new(0),
            sim_jobs: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
            profile_nanos: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Subscribes a progress observer.
    pub fn observe(&mut self, observer: Arc<dyn ProgressObserver>) {
        self.observers.push(observer);
    }

    /// Registers a benchmark, returning its id for [`SimJob::bench`] /
    /// [`SweepCell::bench`]. Artifacts are cached per id, so register
    /// each (program, input-set) once and reuse the id across sweeps.
    pub fn add_benchmark(&mut self, input: ExperimentInput) -> usize {
        self.benchmarks.push(input);
        self.benchmarks.len() - 1
    }

    /// The registered benchmark for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Engine::add_benchmark`].
    pub fn benchmark(&self, id: usize) -> &ExperimentInput {
        &self.benchmarks[id]
    }

    /// Snapshot of cache and timing counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            sim_jobs: self.sim_jobs.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
            profile_nanos: self.profile_nanos.load(Ordering::Relaxed),
            compile_nanos: self.compile_nanos.load(Ordering::Relaxed),
            sim_nanos: self.sim_nanos.load(Ordering::Relaxed),
        }
    }

    // ----------------------------------------------------------------
    // Stages
    // ----------------------------------------------------------------

    /// Stage 1 — profile: the TRAIN-input profile for a benchmark under
    /// a predictor, computed at most once per [`ProfileKey`].
    ///
    /// # Errors
    ///
    /// Returns the profiling error (cached: re-requests see the same
    /// error without re-running).
    pub fn profile(
        &self,
        bench: usize,
        predictor: PredictorKind,
        max_steps: u64,
    ) -> Result<Arc<Profile>, ExperimentError> {
        let key = ProfileKey {
            bench,
            predictor,
            max_steps,
        };
        let slot = {
            let mut map = self.profiles.lock().expect("profile cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let result = slot.get_or_init(|| {
            computed = true;
            let input = &self.benchmarks[bench];
            let started = Instant::now();
            let out = vanguard_compiler::profile_program(
                &input.program,
                input.train.memory.clone(),
                &input.train.init_regs,
                predictor.build(),
                max_steps,
            )
            .map(Arc::new)
            .map_err(ExperimentError::from);
            let elapsed = started.elapsed();
            self.profile_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(Stage::Profile, &input.name, elapsed, false);
            }
            out
        });
        if computed {
            self.profile_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(
                    Stage::Profile,
                    &self.benchmarks[bench].name,
                    Duration::ZERO,
                    true,
                );
            }
        }
        result.clone()
    }

    /// Stage 2 — compile-pair: the baseline and transformed programs
    /// for a benchmark under a profile, machine width, and option set,
    /// compiled at most once per [`CompileKey`].
    ///
    /// # Errors
    ///
    /// Returns the profiling error if the guiding profile fails.
    pub fn compile_pair(
        &self,
        bench: usize,
        predictor: PredictorKind,
        machine: MachineConfig,
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<CompiledPair, ExperimentError> {
        let profile = self.profile(bench, predictor, max_steps)?;
        let key = CompileKey {
            profile: ProfileKey {
                bench,
                predictor,
                max_steps,
            },
            width: machine.width,
            options: TransformKey::from_options(options),
        };
        let slot = {
            let mut map = self.pairs.lock().expect("compile cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let pair = slot.get_or_init(|| {
            computed = true;
            let input = &self.benchmarks[bench];
            let started = Instant::now();
            let exp = Experiment {
                machine,
                predictor,
                transform: *options,
                max_profile_steps: max_steps,
            };
            let (baseline, transformed, report) = exp.compile_pair(&input.program, &profile);
            let baseline_image = Arc::new(DecodedImage::build(&baseline));
            let transformed_image = Arc::new(DecodedImage::build(&transformed));
            let elapsed = started.elapsed();
            self.compile_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(Stage::Compile, &input.name, elapsed, false);
            }
            CompiledPair {
                baseline: Arc::new(baseline),
                transformed: Arc::new(transformed),
                baseline_image,
                transformed_image,
                report,
            }
        });
        if computed {
            self.compile_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(
                    Stage::Compile,
                    &self.benchmarks[bench].name,
                    Duration::ZERO,
                    true,
                );
            }
        }
        Ok(pair.clone())
    }

    /// Stage 3 — simulate-one-ref: runs one job through the cached
    /// stages and one simulation. Deterministic for a given job.
    ///
    /// # Errors
    ///
    /// Returns profiling or simulation errors.
    pub fn run_job(
        &self,
        job: &SimJob,
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<JobResult, ExperimentError> {
        let input = &self.benchmarks[job.bench];
        let pair = self.compile_pair(job.bench, job.predictor, job.machine, options, max_steps)?;
        let image = match job.variant {
            Variant::Baseline => &pair.baseline_image,
            Variant::Transformed => &pair.transformed_image,
        };
        let exp = Experiment {
            machine: job.machine,
            predictor: job.predictor,
            transform: *options,
            max_profile_steps: max_steps,
        };
        let started = Instant::now();
        let stats = exp.simulate_image(image, &input.refs[job.ref_input])?;
        let sim_elapsed = started.elapsed();
        self.sim_jobs.fetch_add(1, Ordering::Relaxed);
        self.sim_insts
            .fetch_add(stats.committed(), Ordering::Relaxed);
        self.sim_nanos
            .fetch_add(sim_elapsed.as_nanos() as u64, Ordering::Relaxed);
        Ok(JobResult {
            job: *job,
            stats,
            sim_elapsed,
        })
    }

    // ----------------------------------------------------------------
    // Sweep execution
    // ----------------------------------------------------------------

    /// Executes a flat job list on the worker pool. Results come back
    /// in **job-index order** regardless of worker count or completion
    /// order; on error, the error of the lowest-indexed failing job is
    /// returned (exactly what serial execution would have surfaced).
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) profiling or simulation error.
    pub fn run_jobs(
        &self,
        jobs: &[SimJob],
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<Vec<JobResult>, ExperimentError> {
        let n = jobs.len();
        let mut results: Vec<Option<Result<JobResult, ExperimentError>>> = Vec::new();
        results.resize_with(n, || None);
        let results = Mutex::new(results);
        let next = AtomicUsize::new(0);
        let workers = self.workers.min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = &jobs[i];
                    let name = &self.benchmarks[job.bench].name;
                    for o in &self.observers {
                        o.job_started(i, job, name);
                    }
                    let outcome = self.run_job(job, options, max_steps);
                    if let Ok(r) = &outcome {
                        for o in &self.observers {
                            o.job_finished(i, job, name, &r.stats, r.sim_elapsed);
                        }
                    }
                    results.lock().expect("result vector poisoned")[i] = Some(outcome);
                });
            }
        });
        results
            .into_inner()
            .expect("result vector poisoned")
            .into_iter()
            .map(|slot| slot.expect("every job index was executed"))
            .collect()
    }

    /// The canonical job expansion of sweep cells: for each cell, every
    /// REF input × {baseline, transformed}, in the nesting order the
    /// serial loops used (refs outer, variants inner).
    pub fn jobs_for_cells(&self, cells: &[SweepCell]) -> Vec<SimJob> {
        let mut jobs = Vec::new();
        for cell in cells {
            for ref_input in 0..self.benchmarks[cell.bench].refs.len() {
                for variant in [Variant::Baseline, Variant::Transformed] {
                    jobs.push(SimJob {
                        bench: cell.bench,
                        ref_input,
                        machine: cell.machine,
                        predictor: cell.predictor,
                        variant,
                    });
                }
            }
        }
        jobs
    }

    /// Runs a sweep matrix end-to-end: each cell becomes one
    /// [`ExperimentOutcome`] (the Table 2 row shape), computed from
    /// jobs executed on the pool with artifacts shared across cells.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) error, or
    /// [`ExperimentError::NoRefInputs`] if a cell's benchmark has no
    /// REF inputs.
    pub fn run_cells(
        &self,
        cells: &[SweepCell],
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<Vec<ExperimentOutcome>, ExperimentError> {
        for cell in cells {
            if self.benchmarks[cell.bench].refs.is_empty() {
                return Err(ExperimentError::NoRefInputs);
            }
        }
        let jobs = self.jobs_for_cells(cells);
        let results = self.run_jobs(&jobs, options, max_steps)?;
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut cursor = 0usize;
        for cell in cells {
            let input = &self.benchmarks[cell.bench];
            let n_refs = input.refs.len();
            let mut runs = Vec::with_capacity(n_refs);
            for _ in 0..n_refs {
                let base = results[cursor].stats;
                let exp = results[cursor + 1].stats;
                cursor += 2;
                runs.push(RefRun { base, exp });
            }
            // Cached: this re-fetch never recompiles or re-profiles.
            let pair =
                self.compile_pair(cell.bench, cell.predictor, cell.machine, options, max_steps)?;
            let profile = self.profile(cell.bench, cell.predictor, max_steps)?;
            outcomes.push(ExperimentOutcome {
                name: input.name.clone(),
                report: pair.report,
                runs,
                profile_dynamic_insts: profile.dynamic_insts,
            });
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::tests::experiment_input;

    fn engine_with(n: usize, workers: usize) -> (Engine, Vec<usize>) {
        let mut engine = Engine::with_workers(workers);
        let ids = (0..n)
            .map(|i| {
                let mut input = experiment_input(400 + 100 * i);
                input.name = format!("bench{i}");
                engine.add_benchmark(input)
            })
            .collect();
        (engine, ids)
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let opts = TransformOptions::default();
        let cells = |ids: &[usize]| -> Vec<SweepCell> {
            ids.iter()
                .flat_map(|&bench| {
                    [MachineConfig::two_wide(), MachineConfig::four_wide()]
                        .into_iter()
                        .map(move |machine| SweepCell {
                            bench,
                            machine,
                            predictor: PredictorKind::Combined24KB,
                        })
                })
                .collect()
        };
        let (serial, ids_s) = engine_with(2, 1);
        let serial_out = serial.run_cells(&cells(&ids_s), &opts, 1_000_000).unwrap();
        let (parallel, ids_p) = engine_with(2, 4);
        let parallel_out = parallel
            .run_cells(&cells(&ids_p), &opts, 1_000_000)
            .unwrap();
        assert_eq!(serial_out.len(), parallel_out.len());
        for (s, p) in serial_out.iter().zip(&parallel_out) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.profile_dynamic_insts, p.profile_dynamic_insts);
            assert_eq!(s.runs.len(), p.runs.len());
            for (sr, pr) in s.runs.iter().zip(&p.runs) {
                assert_eq!(sr.base, pr.base);
                assert_eq!(sr.exp, pr.exp);
            }
        }
    }

    #[test]
    fn artifacts_are_computed_once_per_key() {
        let opts = TransformOptions::default();
        let (mut engine, _) = engine_with(0, 4);
        let b0 = engine.add_benchmark(experiment_input(500));
        // 3 widths × 1 predictor: 1 profile, 3 compiles, regardless of
        // how many REF sims reference them.
        let cells: Vec<SweepCell> = MachineConfig::all_widths()
            .into_iter()
            .map(|machine| SweepCell {
                bench: b0,
                machine,
                predictor: PredictorKind::Combined24KB,
            })
            .collect();
        engine.run_cells(&cells, &opts, 1_000_000).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.profile_misses, 1, "{stats:?}");
        assert_eq!(stats.compile_misses, 3, "{stats:?}");
        assert_eq!(stats.sim_jobs, 6, "{stats:?}");
        // Re-running the same cells is all hits.
        engine.run_cells(&cells, &opts, 1_000_000).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.profile_misses, 1, "{stats:?}");
        assert_eq!(stats.compile_misses, 3, "{stats:?}");
    }

    #[test]
    fn observer_sees_every_job() {
        #[derive(Default)]
        struct Counter {
            started: AtomicU64,
            finished: AtomicU64,
            stages: AtomicU64,
        }
        impl ProgressObserver for Counter {
            fn job_started(&self, _: usize, _: &SimJob, _: &str) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn job_finished(&self, _: usize, _: &SimJob, _: &str, _: &SimStats, _: Duration) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
            fn stage_completed(&self, _: Stage, _: &str, _: Duration, _: bool) {
                self.stages.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Counter::default());
        let mut engine = Engine::with_workers(2);
        let bench = engine.add_benchmark(experiment_input(300));
        engine.observe(counter.clone());
        let cells = [SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }];
        engine
            .run_cells(&cells, &TransformOptions::default(), 1_000_000)
            .unwrap();
        assert_eq!(counter.started.load(Ordering::Relaxed), 2);
        assert_eq!(counter.finished.load(Ordering::Relaxed), 2);
        assert!(counter.stages.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn distinct_option_sets_get_distinct_compile_keys() {
        let a = TransformOptions::default();
        let mut b = TransformOptions::default();
        b.max_hoist += 1;
        let mut c = TransformOptions::default();
        c.select.threshold += 0.01;
        let pk = ProfileKey {
            bench: 0,
            predictor: PredictorKind::Combined24KB,
            max_steps: 1,
        };
        let keys: Vec<CompileKey> = [&a, &b, &c]
            .iter()
            .map(|o| CompileKey {
                profile: pk,
                width: 4,
                options: TransformKey::from_options(o),
            })
            .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }
}

//! The experiment engine: staged, artifact-cached, parallel execution
//! of simulation sweeps.
//!
//! [`Experiment::run`](crate::Experiment::run) decomposes into three
//! stages — **profile** (TRAIN input, once per program × predictor),
//! **compile-pair** (baseline + transformed, once per program × profile
//! × machine width × transform options), and **simulate-one-ref** (one
//! program variant on one REF input on one machine). Every figure and
//! table of the paper's evaluation is a sweep over those stages, so the
//! engine:
//!
//! * enumerates a sweep as a flat list of [`SimJob`]s keyed by
//!   `(benchmark, input, machine, predictor, variant)`;
//! * memoizes profiles and compiled pairs in an **artifact cache** so
//!   each is produced at most once per distinct key, shared across
//!   widths, predictor rungs, and REF inputs;
//! * executes jobs on a [`std::thread::scope`] worker pool, collecting
//!   results in job-index order so output is **bit-identical** to
//!   serial execution regardless of worker count (see DESIGN.md §6);
//! * reports per-job and per-stage progress (with wall-clock timings
//!   and cache hit/miss accounting) through [`ProgressObserver`].
//!
//! Worker count defaults to the machine's available parallelism and can
//! be overridden with the `VANGUARD_THREADS` environment variable.
//!
//! # Fault tolerance
//!
//! A failing job never aborts the suite. Each worker wraps its job in a
//! containment boundary: guest traps become [`JobResult::Faulted`],
//! watchdog cancellations (see [`FaultPolicy`]) become
//! [`JobResult::TimedOut`], and worker panics become
//! [`JobResult::Failed`] with a [`VanguardError`] carrying stage,
//! benchmark, and seed context. Transient failures are retried once
//! with backoff; repeat failures are quarantined with a replayable
//! reproducer. The optional on-disk profile cache
//! ([`crate::DiskCache`], enabled by `VANGUARD_CACHE_DIR`) is
//! checksummed and crash-safe: corrupt entries are quarantined and
//! recomputed, never trusted. See DESIGN.md §7.8 for the fault model.

use crate::diskcache::{fnv1a, ClaimGuard, DiskCache};
use crate::error::{ErrorKind, VanguardError};
use crate::experiment::{Experiment, ExperimentError, ExperimentInput, ExperimentOutcome, RefRun};
use crate::passes::TransformKind;
use crate::report::{SiteOutcome, TransformReport};
use crate::transform::TransformOptions;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use vanguard_ir::Profile;
use vanguard_isa::{parse_program, BlockId, DecodedImage, Program};
use vanguard_sim::{MachineConfig, ReplayStats, SimError, SimStats, Simulator, StopCause};

pub use vanguard_bpred::LadderRung as PredictorKind;

/// The paper's default profiling step budget (also used by
/// [`Experiment::new`]).
pub const DEFAULT_MAX_PROFILE_STEPS: u64 = 100_000_000;

/// Which side of a compiled pair a job simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The PGO-laid-out, scheduled original program.
    Baseline,
    /// The decomposed-branch program.
    Transformed,
}

/// One unit of simulation work: a fully keyed
/// `(benchmark, input, machine, predictor, variant)` tuple.
///
/// `bench` indexes the engine's registered benchmarks (see
/// [`Engine::add_benchmark`]); `ref_input` indexes that benchmark's REF
/// inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimJob {
    /// Benchmark id from [`Engine::add_benchmark`].
    pub bench: usize,
    /// REF-input index within the benchmark.
    pub ref_input: usize,
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Predictor rung (drives both profiling and simulation).
    pub predictor: PredictorKind,
    /// Baseline or transformed program.
    pub variant: Variant,
}

/// A successfully completed [`SimJob`].
#[derive(Clone, Debug)]
pub struct JobSuccess {
    /// The job that produced this result.
    pub job: SimJob,
    /// Simulation statistics.
    pub stats: SimStats,
    /// Wall-clock time of the simulate stage alone (excludes cached or
    /// shared profile/compile work).
    pub sim_elapsed: Duration,
    /// Steady-state replay-layer counters for this job (all zero when
    /// replay was disabled or the predictor does not support it).
    pub replay: ReplayStats,
    /// Whether this result came from a retry after a transient failure.
    pub retried: bool,
}

impl JobSuccess {
    /// Host-side throughput of this job: millions of committed simulated
    /// instructions per wall-clock second of its simulate stage.
    pub fn sim_mips(&self) -> f64 {
        self.stats.mips(self.sim_elapsed)
    }
}

/// Outcome of one [`SimJob`] — the engine's containment boundary. A
/// trapping guest, a wedged simulation, or a panicking worker produces
/// a non-[`Completed`](JobResult::Completed) variant here; it never
/// aborts the process or the rest of the suite.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// The simulation ran to completion (boxed: the success payload
    /// carries full statistics and dwarfs the failure variants).
    Completed(Box<JobSuccess>),
    /// The guest program trapped on the committed path.
    Faulted {
        /// The job that trapped.
        job: SimJob,
        /// The architectural fault.
        trap: SimError,
        /// Program counter of the fault.
        pc: u64,
        /// Cycle the fault was detected at.
        cycle: u64,
        /// Whether a retry preceded this outcome.
        retried: bool,
    },
    /// A watchdog (cycle budget or wall-clock deadline) cancelled the
    /// simulation cooperatively.
    TimedOut {
        /// The cancelled job.
        job: SimJob,
        /// Cycles simulated before cancellation.
        cycles: u64,
        /// Wall-clock milliseconds before cancellation.
        wall_ms: u64,
        /// Whether a retry preceded this outcome.
        retried: bool,
    },
    /// The job failed outside the guest: profiling error, worker panic,
    /// or another engine-level failure.
    Failed {
        /// The failing job.
        job: SimJob,
        /// Full failure context.
        error: Box<VanguardError>,
        /// Whether a retry preceded this outcome.
        retried: bool,
    },
}

impl JobResult {
    /// The job this outcome belongs to.
    pub fn job(&self) -> &SimJob {
        match self {
            JobResult::Completed(s) => &s.job,
            JobResult::Faulted { job, .. }
            | JobResult::TimedOut { job, .. }
            | JobResult::Failed { job, .. } => job,
        }
    }

    /// The success payload, if the job completed.
    pub fn success(&self) -> Option<&JobSuccess> {
        match self {
            JobResult::Completed(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Whether the job completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobResult::Completed(_))
    }

    /// Whether a transient-failure retry preceded this outcome.
    pub fn retried(&self) -> bool {
        match self {
            JobResult::Completed(s) => s.retried,
            JobResult::Faulted { retried, .. }
            | JobResult::TimedOut { retried, .. }
            | JobResult::Failed { retried, .. } => *retried,
        }
    }

    /// The success payload; panics with the failure context otherwise.
    /// For callers whose workloads are known-clean (the figure sweeps).
    ///
    /// # Panics
    ///
    /// Panics if the job did not complete.
    pub fn expect_completed(&self) -> &JobSuccess {
        match self {
            JobResult::Completed(s) => s.as_ref(),
            other => panic!(
                "job expected to complete: {}",
                other
                    .as_error("<unattributed>", None)
                    .expect("non-completed outcome has an error")
            ),
        }
    }

    /// Converts a failure outcome to a [`VanguardError`] with benchmark
    /// attribution (`None` for completed jobs).
    pub fn as_error(&self, bench_name: &str, seed: Option<u64>) -> Option<VanguardError> {
        let kind = match self {
            JobResult::Completed(_) => return None,
            JobResult::Faulted {
                trap, pc, cycle, ..
            } => ErrorKind::GuestTrap {
                trap: trap.clone(),
                pc: *pc,
                cycle: *cycle,
            },
            JobResult::TimedOut {
                cycles, wall_ms, ..
            } => ErrorKind::Timeout {
                cycles: *cycles,
                wall_ms: *wall_ms,
            },
            JobResult::Failed { error, .. } => return Some((**error).clone()),
        };
        Some(
            VanguardError::new(Stage::Simulate, kind)
                .with_benchmark(bench_name)
                .with_seed(seed),
        )
    }

    fn set_retried(&mut self, value: bool) {
        match self {
            JobResult::Completed(s) => s.retried = value,
            JobResult::Faulted { retried, .. }
            | JobResult::TimedOut { retried, .. }
            | JobResult::Failed { retried, .. } => *retried = value,
        }
    }
}

/// Fault-tolerance policy of an [`Engine`]: watchdog budgets, retry
/// behaviour, and quarantine/cache directories.
#[derive(Clone, Debug)]
pub struct FaultPolicy {
    /// Per-job wall-clock budget (`VANGUARD_JOB_TIMEOUT` seconds);
    /// `None` disables the wall-clock watchdog.
    pub job_timeout: Option<Duration>,
    /// Per-job simulated-cycle budget (`--max-cycles`); `None` disables
    /// the cycle watchdog.
    pub max_cycles: Option<u64>,
    /// Retry a transient failure (worker panic, cache corruption) once.
    pub retry_transient: bool,
    /// Backoff before the retry.
    pub backoff: Duration,
    /// Where to write replayable reproducers for jobs that still fail
    /// after retry (`VANGUARD_QUARANTINE_DIR`); `None` disables.
    pub quarantine_dir: Option<PathBuf>,
    /// Root of the crash-safe on-disk profile cache
    /// (`VANGUARD_CACHE_DIR`); `None` keeps artifacts in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the on-disk cache (`VANGUARD_CACHE_BUDGET`):
    /// stores evict unclaimed entries oldest-first to stay under it;
    /// `None` lets the cache grow without bound.
    pub cache_budget: Option<u64>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            job_timeout: None,
            max_cycles: None,
            retry_transient: true,
            backoff: Duration::from_millis(50),
            quarantine_dir: None,
            cache_dir: None,
            cache_budget: None,
        }
    }
}

impl FaultPolicy {
    /// The default policy with the environment overrides applied:
    /// `VANGUARD_JOB_TIMEOUT` (seconds, fractional allowed),
    /// `VANGUARD_QUARANTINE_DIR`, `VANGUARD_CACHE_DIR`, and
    /// `VANGUARD_CACHE_BUDGET` (bytes; `0` disables).
    pub fn from_env() -> Self {
        let mut policy = FaultPolicy::default();
        if let Ok(v) = std::env::var("VANGUARD_JOB_TIMEOUT") {
            if let Ok(secs) = v.trim().parse::<f64>() {
                if secs > 0.0 {
                    policy.job_timeout = Some(Duration::from_secs_f64(secs));
                }
            }
        }
        if let Ok(v) = std::env::var("VANGUARD_QUARANTINE_DIR") {
            if !v.trim().is_empty() {
                policy.quarantine_dir = Some(PathBuf::from(v));
            }
        }
        if let Ok(v) = std::env::var("VANGUARD_CACHE_DIR") {
            if !v.trim().is_empty() {
                policy.cache_dir = Some(PathBuf::from(v));
            }
        }
        if let Ok(v) = std::env::var("VANGUARD_CACHE_BUDGET") {
            if let Ok(bytes) = v.trim().parse::<u64>() {
                if bytes > 0 {
                    policy.cache_budget = Some(bytes);
                }
            }
        }
        policy
    }
}

/// Cache key of a profiling run: a profile depends on the program and
/// TRAIN input (both identified by the benchmark id), the predictor the
/// profiler consults, and the step budget. It does **not** depend on
/// machine width or transform options, so one profile serves every
/// width and option sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// Benchmark id (program + TRAIN input identity).
    pub bench: usize,
    /// Profiling predictor.
    pub predictor: PredictorKind,
    /// Profiling step budget.
    pub max_steps: u64,
}

/// Exact-valued (bit-pattern) form of [`TransformOptions`] usable as a
/// hash-map key. Constructed with [`TransformKey::from_options`]; two
/// keys are equal iff every *program-affecting* option field is
/// identical, so distinct option sets can never collide in the artifact
/// cache. [`TransformOptions::replay`] is deliberately excluded: the
/// replay policy only changes how the simulator executes, never the
/// compiled program, so both policies share one cached pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransformKey {
    /// The transform pass (`kind`) — distinct variants of the same
    /// benchmark/profile/width must never collide.
    pub kind: TransformKind,
    /// `select.threshold` as IEEE-754 bits.
    pub threshold_bits: u64,
    /// `select.min_executions`.
    pub min_executions: u64,
    /// `select.forward_only`.
    pub forward_only: bool,
    /// `max_hoist`.
    pub max_hoist: usize,
    /// `hoist_loads`.
    pub hoist_loads: bool,
    /// `shadow_temps`.
    pub shadow_temps: bool,
    /// `meld_max_side`.
    pub meld_max_side: usize,
}

impl TransformKey {
    /// The key of an option set.
    pub fn from_options(opts: &TransformOptions) -> Self {
        TransformKey {
            kind: opts.kind,
            threshold_bits: opts.select.threshold.to_bits(),
            min_executions: opts.select.min_executions,
            forward_only: opts.select.forward_only,
            max_hoist: opts.max_hoist,
            hoist_loads: opts.hoist_loads,
            shadow_temps: opts.shadow_temps,
            meld_max_side: opts.meld_max_side,
        }
    }

    /// Stable little-endian byte encoding for disk-cache key hashing.
    /// Leads with the pass's stable [`TransformKind::cache_id`] so two
    /// variants of the same (benchmark, profile, width) can never share
    /// a disk entry.
    pub fn disk_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * 5 + 3);
        out.extend_from_slice(&self.kind.cache_id().to_le_bytes());
        out.extend_from_slice(&self.threshold_bits.to_le_bytes());
        out.extend_from_slice(&self.min_executions.to_le_bytes());
        out.push(self.forward_only as u8);
        out.extend_from_slice(&(self.max_hoist as u64).to_le_bytes());
        out.push(self.hoist_loads as u8);
        out.push(self.shadow_temps as u8);
        out.extend_from_slice(&(self.meld_max_side as u64).to_le_bytes());
        out
    }
}

/// Cache key of a compiled baseline/transformed pair: the profile it
/// was guided by, the machine *width* (the only machine parameter the
/// compiler consults, so 32 KB- and 24 KB-I$ variants share pairs), and
/// the transform options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// The guiding profile's key.
    pub profile: ProfileKey,
    /// Machine width the scheduler targeted.
    pub width: usize,
    /// Transform options.
    pub options: TransformKey,
}

/// A cached compiled pair plus its transformation report.
///
/// Also carries the pre-decoded flat image of each side, built once at
/// compile time and shared by every simulation of the pair (the
/// simulator's fetch walks the image, not the nested program).
#[derive(Clone, Debug)]
pub struct CompiledPair {
    /// Laid-out, scheduled baseline.
    pub baseline: Arc<Program>,
    /// Laid-out, scheduled transformed program.
    pub transformed: Arc<Program>,
    /// Pre-decoded image of the baseline.
    pub baseline_image: Arc<DecodedImage>,
    /// Pre-decoded image of the transformed program.
    pub transformed_image: Arc<DecodedImage>,
    /// The transformation report (PBC, PISCS, hoist counts).
    pub report: TransformReport,
}

/// Disk-cache entry namespace for compiled pairs.
const PAIR_TAG: &str = "pair";

/// Disk-cache entry namespace for content-addressed program images
/// (exact disassembly text, keyed by its own FNV-1a hash). A pair entry
/// *references* its two images by content address instead of inlining
/// them, so identical programs — every transform kind's baseline of the
/// same (benchmark, profile, width), for instance — share one image
/// entry across every process of the farm.
const IMAGE_TAG: &str = "image";

/// Serializes a compiled pair's header for the disk cache: the
/// transformation report plus the content addresses of the two program
/// images (stored separately under [`IMAGE_TAG`]).
fn encode_pair_header(pair: &CompiledPair, baseline_key: u64, transformed_key: u64) -> Vec<u8> {
    let r = &pair.report;
    let mut out = String::new();
    out.push_str(&format!(
        "report {} {} {} {} {}\n",
        r.forward_branches, r.code_bytes_before, r.code_bytes_after, r.melded, r.meld_added_insts
    ));
    for s in &r.converted {
        out.push_str(&format!(
            "site {} {} {} {} {} {} {}\n",
            s.block.0,
            s.hoisted_taken,
            s.hoisted_fallthrough,
            s.slice_insts,
            s.removed_from_block,
            s.commit_moves,
            s.executed
        ));
    }
    for (b, reason) in &r.skipped {
        out.push_str(&format!("skip {} {}\n", b.0, reason.replace('\n', " ")));
    }
    out.push_str(&format!("baseline-image {baseline_key:016x}\n"));
    out.push_str(&format!("transformed-image {transformed_key:016x}\n"));
    out.into_bytes()
}

/// Structurally validates and decodes a disk-cached pair header,
/// returning the report and the two image content addresses. Any
/// malformation is an error (the caller quarantines the entry and
/// recompiles).
fn decode_pair_header(bytes: &[u8]) -> Result<(TransformReport, u64, u64), String> {
    let header = std::str::from_utf8(bytes).map_err(|e| format!("not utf-8: {e}"))?;
    let mut baseline_key = None;
    let mut transformed_key = None;
    let mut report = TransformReport::default();
    let mut saw_report = false;
    for line in header.lines() {
        let (tag, rest) = line.split_once(' ').ok_or("malformed header line")?;
        match tag {
            "report" => {
                let f: Vec<&str> = rest.split(' ').collect();
                if f.len() != 5 {
                    return Err("malformed report line".into());
                }
                let num = |s: &str| s.parse::<u64>().map_err(|e| format!("report field: {e}"));
                report.forward_branches = num(f[0])? as usize;
                report.code_bytes_before = num(f[1])?;
                report.code_bytes_after = num(f[2])?;
                report.melded = num(f[3])? as usize;
                report.meld_added_insts = f[4]
                    .parse::<isize>()
                    .map_err(|e| format!("report field: {e}"))?;
                saw_report = true;
            }
            "site" => {
                let f: Vec<&str> = rest.split(' ').collect();
                if f.len() != 7 {
                    return Err("malformed site line".into());
                }
                let num = |s: &str| s.parse::<u64>().map_err(|e| format!("site field: {e}"));
                report.converted.push(SiteOutcome {
                    block: BlockId(f[0].parse().map_err(|e| format!("site block: {e}"))?),
                    hoisted_taken: num(f[1])? as usize,
                    hoisted_fallthrough: num(f[2])? as usize,
                    slice_insts: num(f[3])? as usize,
                    removed_from_block: num(f[4])? as usize,
                    commit_moves: num(f[5])? as usize,
                    executed: num(f[6])?,
                });
            }
            "skip" => {
                let (block, reason) = rest.split_once(' ').ok_or("malformed skip line")?;
                report.skipped.push((
                    BlockId(block.parse().map_err(|e| format!("skip block: {e}"))?),
                    reason.to_string(),
                ));
            }
            "baseline-image" => {
                baseline_key = Some(
                    u64::from_str_radix(rest, 16).map_err(|e| format!("baseline-image: {e}"))?,
                );
            }
            "transformed-image" => {
                transformed_key = Some(
                    u64::from_str_radix(rest, 16).map_err(|e| format!("transformed-image: {e}"))?,
                );
            }
            other => return Err(format!("unknown header tag `{other}`")),
        }
    }
    if !saw_report {
        return Err("missing report line".into());
    }
    let baseline_key = baseline_key.ok_or("missing baseline-image line")?;
    let transformed_key = transformed_key.ok_or("missing transformed-image line")?;
    Ok((report, baseline_key, transformed_key))
}

/// Parses a content-addressed program image back into a program and its
/// pre-decoded form.
fn decode_image(text: &[u8]) -> Result<(Arc<Program>, Arc<DecodedImage>), String> {
    let text = std::str::from_utf8(text).map_err(|e| format!("not utf-8: {e}"))?;
    let program = parse_program(text).map_err(|e| format!("image: {e}"))?;
    let image = Arc::new(DecodedImage::build(&program));
    Ok((Arc::new(program), image))
}

/// The outcome of a disk-cache pair lookup.
enum PairLoad {
    /// Entry present and fully reconstructed.
    Hit(CompiledPair),
    /// No entry (or a referenced image was evicted) — compile fresh.
    Miss,
    /// Entry or a referenced image failed validation and was
    /// quarantined — compile fresh and count the corruption.
    Corrupt,
}

/// Loads a compiled pair from the disk cache, fetching its two
/// content-addressed images. A missing image entry (shared images can
/// be evicted independently of the pair headers that reference them)
/// degrades to a clean miss; a malformed header or image quarantines
/// the offending entry.
fn load_pair(cache: &DiskCache, dk: u64) -> PairLoad {
    let header = match cache.load_bytes(PAIR_TAG, dk) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return PairLoad::Miss,
        Err(_) => return PairLoad::Corrupt,
    };
    let (report, baseline_key, transformed_key) = match decode_pair_header(&header) {
        Ok(decoded) => decoded,
        Err(detail) => {
            let _ = cache.reject(PAIR_TAG, dk, &detail);
            return PairLoad::Corrupt;
        }
    };
    let mut images = Vec::with_capacity(2);
    for (what, key) in [("baseline", baseline_key), ("transformed", transformed_key)] {
        let text = match cache.load_content(IMAGE_TAG, key) {
            Ok(Some(text)) => text,
            Ok(None) => return PairLoad::Miss,
            Err(_) => return PairLoad::Corrupt,
        };
        match decode_image(&text) {
            Ok(decoded) => images.push(decoded),
            Err(detail) => {
                let _ = cache.reject(IMAGE_TAG, key, format!("{what}: {detail}"));
                return PairLoad::Corrupt;
            }
        }
    }
    let (transformed, transformed_image) = images.pop().expect("two images");
    let (baseline, baseline_image) = images.pop().expect("two images");
    PairLoad::Hit(CompiledPair {
        baseline,
        transformed,
        baseline_image,
        transformed_image,
        report,
    })
}

/// Stores a compiled pair: both program images content-addressed under
/// [`IMAGE_TAG`], then the header referencing them under [`PAIR_TAG`].
/// Image-first ordering means a reader never sees a header whose images
/// have not landed yet.
fn store_pair(cache: &DiskCache, dk: u64, pair: &CompiledPair) -> std::io::Result<()> {
    let baseline_key = cache.store_content(IMAGE_TAG, pair.baseline.disassemble().as_bytes())?;
    let transformed_key =
        cache.store_content(IMAGE_TAG, pair.transformed.disassemble().as_bytes())?;
    cache.store_bytes(
        PAIR_TAG,
        dk,
        &encode_pair_header(pair, baseline_key, transformed_key),
    )
}

/// A pipeline stage, for observer events and timing attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// TRAIN-input profiling.
    Profile,
    /// Baseline + transformed compilation.
    Compile,
    /// One REF-input simulation.
    Simulate,
}

impl Stage {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Profile => "profile",
            Stage::Compile => "compile",
            Stage::Simulate => "simulate",
        }
    }
}

/// Observer of engine progress. All methods have empty defaults; they
/// are called from worker threads, so implementations must be
/// `Send + Sync` (use atomics or locks for mutable state; printing to
/// stderr keeps figure output on stdout byte-identical).
pub trait ProgressObserver: Send + Sync {
    /// A job was picked up by a worker.
    fn job_started(&self, index: usize, job: &SimJob, bench_name: &str) {
        let _ = (index, job, bench_name);
    }

    /// A job finished, with its [`SimStats`] summary and the wall-clock
    /// time of its simulate stage.
    fn job_finished(
        &self,
        index: usize,
        job: &SimJob,
        bench_name: &str,
        stats: &SimStats,
        elapsed: Duration,
    ) {
        let _ = (index, job, bench_name, stats, elapsed);
    }

    /// A completed job's steady-state replay counters (reported right
    /// after [`ProgressObserver::job_finished`]; all-zero counters when
    /// replay was off or unsupported are still delivered).
    fn job_replay(&self, index: usize, job: &SimJob, bench_name: &str, replay: &ReplayStats) {
        let _ = (index, job, bench_name, replay);
    }

    /// A job ended in a non-completed outcome (guest trap, watchdog
    /// timeout, or engine failure), after any retry.
    fn job_failed(&self, index: usize, job: &SimJob, bench_name: &str, outcome: &JobResult) {
        let _ = (index, job, bench_name, outcome);
    }

    /// A transient failure on a job is being retried (once, with
    /// backoff) before the final outcome is reported.
    fn job_retried(&self, index: usize, job: &SimJob, bench_name: &str) {
        let _ = (index, job, bench_name);
    }

    /// A profile or compile artifact was produced (`cached == false`)
    /// or served from the cache (`cached == true`). Simulate stages
    /// report through [`ProgressObserver::job_finished`] instead.
    fn stage_completed(&self, stage: Stage, bench_name: &str, elapsed: Duration, cached: bool) {
        let _ = (stage, bench_name, elapsed, cached);
    }
}

/// Cache and timing counters, snapshot via [`Engine::stats`].
///
/// `profile_misses`/`compile_misses` count actual stage executions —
/// in any sweep they equal the number of *distinct* cache keys touched,
/// which is how the at-most-once artifact guarantee is asserted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Profile-stage executions (distinct profile keys computed).
    pub profile_misses: u64,
    /// Profile requests served from the cache.
    pub profile_hits: u64,
    /// Compile-stage executions (distinct compile keys computed).
    pub compile_misses: u64,
    /// Compile requests served from the cache.
    pub compile_hits: u64,
    /// Simulate stages executed.
    pub sim_jobs: u64,
    /// Committed simulated instructions, summed over simulate stages.
    pub sim_insts: u64,
    /// Aggregate wall-clock nanoseconds in the profile stage.
    pub profile_nanos: u64,
    /// Aggregate wall-clock nanoseconds in the compile stage.
    pub compile_nanos: u64,
    /// Aggregate wall-clock nanoseconds in the simulate stage (summed
    /// across workers, so this can exceed elapsed time).
    pub sim_nanos: u64,
    /// Jobs that completed.
    pub jobs_ok: u64,
    /// Jobs whose guest trapped ([`JobResult::Faulted`]).
    pub jobs_faulted: u64,
    /// Jobs cancelled by a watchdog ([`JobResult::TimedOut`]).
    pub jobs_timed_out: u64,
    /// Jobs that failed outside the guest ([`JobResult::Failed`]).
    pub jobs_failed: u64,
    /// Transient-failure retries attempted.
    pub jobs_retried: u64,
    /// Corrupt disk-cache entries quarantined and recomputed.
    pub cache_corrupt: u64,
    /// Profile-stage executions served from the on-disk cache (a subset
    /// of `profile_misses`: the slot was initialized, but from disk).
    pub profile_disk_hits: u64,
    /// Compile-stage executions served from the on-disk cache (a subset
    /// of `compile_misses`).
    pub pair_disk_hits: u64,
    /// Steady-state loop iterations replayed from the memo table,
    /// summed over simulate stages.
    pub replay_hits: u64,
    /// Cycles skipped by applying memoized iteration deltas.
    pub replayed_cycles: u64,
    /// Replay verification failures that fell back to full simulation.
    pub replay_divergences: u64,
    /// Iteration recordings completed into the memo table.
    pub replay_recordings: u64,
    /// Replay trigger points with no matching memo entry.
    pub replay_misses: u64,
    /// Replay triggers suppressed by the adaptive arming gate (probing
    /// or disarmed loop sites that skipped all signature work).
    pub replay_suppressed: u64,
    /// Loop sites left in the `Armed` state, summed over simulate
    /// stages.
    pub replay_armed_sites: u64,
    /// Loop sites left sitting out a disarm backoff period, summed over
    /// simulate stages.
    pub replay_disarmed_sites: u64,
    /// Disk-cache stores that failed (full disk, unwritable cache dir):
    /// the artifact was computed and used but not persisted — the
    /// degrade-to-compute-without-store path under disk pressure.
    pub cache_store_failures: u64,
    /// Unclaimed disk-cache entries evicted to stay under the
    /// `VANGUARD_CACHE_BUDGET` byte budget.
    pub cache_evictions: u64,
}

impl EngineStats {
    /// Host-side simulation throughput: millions of committed simulated
    /// instructions per worker-summed wall-clock second of the simulate
    /// stage (i.e. per-worker MIPS, independent of the pool size).
    pub fn sim_mips(&self) -> f64 {
        if self.sim_nanos == 0 {
            return 0.0;
        }
        self.sim_insts as f64 / 1e6 / (self.sim_nanos as f64 / 1e9)
    }

    /// Fraction of replay trigger points that applied a memoized
    /// iteration, in percent (suppressed triggers count as non-hits:
    /// the rate reflects how often the layer actually paid off, not
    /// just how often it gambled). Zero when replay never triggered.
    pub fn replay_hit_rate(&self) -> f64 {
        let total = self.replay_hits
            + self.replay_misses
            + self.replay_divergences
            + self.replay_suppressed;
        if total == 0 {
            return 0.0;
        }
        self.replay_hits as f64 * 100.0 / total as f64
    }

    /// Renders the per-stage timing/cache summary (one line per stage,
    /// plus an outcome line counting ok / faulted / timed-out / failed /
    /// retried jobs and quarantined cache entries).
    pub fn summary(&self) -> String {
        fn ms(nanos: u64) -> f64 {
            nanos as f64 / 1e6
        }
        format!(
            "profile : {:>4} runs, {:>4} cache hits, {:>9.1} ms\n\
             compile : {:>4} runs, {:>4} cache hits, {:>9.1} ms\n\
             simulate: {:>4} jobs, {:>21.1} ms, {:>7.2} MIPS/worker\n\
             replay  : {:>4} hits ({:.1}% of triggers), {} cycles replayed, \
             {} divergences, {} recordings\n\
             arming  : {:>4} sites armed, {} disarmed, {} suppressed ticks\n\
             outcomes: {:>4} ok, {} faulted, {} timed out, {} failed, \
             {} retried, {} corrupt cache entries, {} store failures, \
             {} evicted",
            self.profile_misses,
            self.profile_hits,
            ms(self.profile_nanos),
            self.compile_misses,
            self.compile_hits,
            ms(self.compile_nanos),
            self.sim_jobs,
            ms(self.sim_nanos),
            self.sim_mips(),
            self.replay_hits,
            self.replay_hit_rate(),
            self.replayed_cycles,
            self.replay_divergences,
            self.replay_recordings,
            self.replay_armed_sites,
            self.replay_disarmed_sites,
            self.replay_suppressed,
            self.jobs_ok,
            self.jobs_faulted,
            self.jobs_timed_out,
            self.jobs_failed,
            self.jobs_retried,
            self.cache_corrupt,
            self.cache_store_failures,
            self.cache_evictions,
        )
    }
}

/// One cell of a sweep matrix: a benchmark evaluated end-to-end (all
/// REF inputs, both variants) on one machine with one predictor.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Benchmark id from [`Engine::add_benchmark`].
    pub bench: usize,
    /// Machine configuration.
    pub machine: MachineConfig,
    /// Predictor rung.
    pub predictor: PredictorKind,
}

type ProfileSlot = Arc<OnceLock<Result<Arc<Profile>, ExperimentError>>>;
type CompileSlot = Arc<OnceLock<CompiledPair>>;

/// Locks a mutex, recovering from poisoning: the engine's shared state
/// (caches, result vectors, injection plans) stays structurally valid
/// across a worker panic, because panics are contained per job and
/// every critical section is a plain insert/lookup.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a `catch_unwind` payload as a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lifts a legacy [`ExperimentError`] into a typed [`VanguardError`]
/// (no benchmark attribution yet — callers add it).
fn experiment_to_vanguard(e: ExperimentError) -> VanguardError {
    match e {
        ExperimentError::Profile(p) => VanguardError::new(Stage::Profile, ErrorKind::Profile(p)),
        ExperimentError::Sim(s) => {
            let pc = s.pc();
            VanguardError::new(
                Stage::Simulate,
                ErrorKind::GuestTrap {
                    trap: s,
                    pc,
                    cycle: 0,
                },
            )
        }
        ExperimentError::NoRefInputs => VanguardError::new(Stage::Simulate, ErrorKind::NoRefInputs),
        ExperimentError::Engine(m) => {
            VanguardError::new(Stage::Simulate, ErrorKind::WorkerPanic { detail: m })
        }
    }
}

/// The parallel, artifact-cached experiment engine. See the
/// [module docs](self) for the execution model.
pub struct Engine {
    workers: usize,
    benchmarks: Vec<ExperimentInput>,
    observers: Vec<Arc<dyn ProgressObserver>>,
    profiles: Mutex<HashMap<ProfileKey, ProfileSlot>>,
    pairs: Mutex<HashMap<CompileKey, CompileSlot>>,
    fault_policy: FaultPolicy,
    disk_cache: Option<DiskCache>,
    /// Deterministic fault-injection plan: job index → remaining panics
    /// to raise inside the containment boundary (test/harness hook, see
    /// [`Engine::inject_worker_panic`]).
    panic_plan: Mutex<HashMap<usize, u32>>,
    profile_misses: AtomicU64,
    profile_hits: AtomicU64,
    compile_misses: AtomicU64,
    compile_hits: AtomicU64,
    sim_jobs: AtomicU64,
    sim_insts: AtomicU64,
    profile_nanos: AtomicU64,
    compile_nanos: AtomicU64,
    sim_nanos: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_faulted: AtomicU64,
    jobs_timed_out: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_retried: AtomicU64,
    cache_corrupt: AtomicU64,
    cache_store_failures: AtomicU64,
    profile_disk_hits: AtomicU64,
    pair_disk_hits: AtomicU64,
    replay_hits: AtomicU64,
    replayed_cycles: AtomicU64,
    replay_divergences: AtomicU64,
    replay_recordings: AtomicU64,
    replay_misses: AtomicU64,
    replay_suppressed: AtomicU64,
    replay_armed_sites: AtomicU64,
    replay_disarmed_sites: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("benchmarks", &self.benchmarks.len())
            .field("observers", &self.observers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Worker count: `VANGUARD_THREADS` when set to a positive integer,
/// else the machine's available parallelism.
pub fn default_workers() -> usize {
    std::env::var("VANGUARD_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with [`default_workers`].
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// An engine with an explicit worker count (≥ 1). `1` reproduces
    /// strictly serial execution. The fault policy comes from
    /// [`FaultPolicy::from_env`]; override with
    /// [`Engine::set_fault_policy`].
    pub fn with_workers(workers: usize) -> Self {
        let fault_policy = FaultPolicy::from_env();
        let disk_cache = fault_policy
            .cache_dir
            .clone()
            .map(|dir| DiskCache::with_budget(dir, fault_policy.cache_budget));
        Engine {
            workers: workers.max(1),
            benchmarks: Vec::new(),
            observers: Vec::new(),
            profiles: Mutex::new(HashMap::new()),
            pairs: Mutex::new(HashMap::new()),
            fault_policy,
            disk_cache,
            panic_plan: Mutex::new(HashMap::new()),
            profile_misses: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            compile_hits: AtomicU64::new(0),
            sim_jobs: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
            profile_nanos: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_faulted: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            cache_corrupt: AtomicU64::new(0),
            cache_store_failures: AtomicU64::new(0),
            profile_disk_hits: AtomicU64::new(0),
            pair_disk_hits: AtomicU64::new(0),
            replay_hits: AtomicU64::new(0),
            replayed_cycles: AtomicU64::new(0),
            replay_divergences: AtomicU64::new(0),
            replay_recordings: AtomicU64::new(0),
            replay_misses: AtomicU64::new(0),
            replay_suppressed: AtomicU64::new(0),
            replay_armed_sites: AtomicU64::new(0),
            replay_disarmed_sites: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replaces the fault policy (and rebuilds the disk cache handle
    /// from `policy.cache_dir`).
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.disk_cache = policy
            .cache_dir
            .clone()
            .map(|dir| DiskCache::with_budget(dir, policy.cache_budget));
        self.fault_policy = policy;
    }

    /// The active fault policy.
    pub fn fault_policy(&self) -> &FaultPolicy {
        &self.fault_policy
    }

    /// Schedules `times` deterministic worker panics on the job at
    /// `index` (raised inside the containment boundary, before the job
    /// body runs). The fault-injection harness uses this to prove panic
    /// containment and retry behaviour; with the default policy the
    /// first panic is retried and the retry succeeds.
    pub fn inject_worker_panic(&self, index: usize, times: u32) {
        lock_ignore_poison(&self.panic_plan).insert(index, times);
    }

    fn maybe_inject_panic(&self, index: usize) {
        let mut plan = lock_ignore_poison(&self.panic_plan);
        if let Some(n) = plan.get_mut(&index) {
            if *n > 0 {
                *n -= 1;
                drop(plan);
                panic!("injected worker fault (job {index})");
            }
        }
    }

    /// Subscribes a progress observer.
    pub fn observe(&mut self, observer: Arc<dyn ProgressObserver>) {
        self.observers.push(observer);
    }

    /// Registers a benchmark, returning its id for [`SimJob::bench`] /
    /// [`SweepCell::bench`]. Artifacts are cached per id, so register
    /// each (program, input-set) once and reuse the id across sweeps.
    pub fn add_benchmark(&mut self, input: ExperimentInput) -> usize {
        self.benchmarks.push(input);
        self.benchmarks.len() - 1
    }

    /// The registered benchmark for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Engine::add_benchmark`].
    pub fn benchmark(&self, id: usize) -> &ExperimentInput {
        &self.benchmarks[id]
    }

    /// Snapshot of cache and timing counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            sim_jobs: self.sim_jobs.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
            profile_nanos: self.profile_nanos.load(Ordering::Relaxed),
            compile_nanos: self.compile_nanos.load(Ordering::Relaxed),
            sim_nanos: self.sim_nanos.load(Ordering::Relaxed),
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_faulted: self.jobs_faulted.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            cache_corrupt: self.cache_corrupt.load(Ordering::Relaxed),
            cache_store_failures: self.cache_store_failures.load(Ordering::Relaxed),
            cache_evictions: self
                .disk_cache
                .as_ref()
                .map(DiskCache::evictions)
                .unwrap_or(0),
            profile_disk_hits: self.profile_disk_hits.load(Ordering::Relaxed),
            pair_disk_hits: self.pair_disk_hits.load(Ordering::Relaxed),
            replay_hits: self.replay_hits.load(Ordering::Relaxed),
            replayed_cycles: self.replayed_cycles.load(Ordering::Relaxed),
            replay_divergences: self.replay_divergences.load(Ordering::Relaxed),
            replay_recordings: self.replay_recordings.load(Ordering::Relaxed),
            replay_misses: self.replay_misses.load(Ordering::Relaxed),
            replay_suppressed: self.replay_suppressed.load(Ordering::Relaxed),
            replay_armed_sites: self.replay_armed_sites.load(Ordering::Relaxed),
            replay_disarmed_sites: self.replay_disarmed_sites.load(Ordering::Relaxed),
        }
    }

    // ----------------------------------------------------------------
    // Stages
    // ----------------------------------------------------------------

    /// Content-addressed disk-cache key of a profile: hashes the
    /// benchmark name, generator seed, predictor, step budget, and the
    /// program text itself, so a stale entry from a different program
    /// can never be served (the in-memory [`ProfileKey`] identifies
    /// benchmarks by registration id, which is not stable across
    /// processes). The TRAIN input is assumed to be determined by the
    /// (name, seed) pair.
    fn profile_disk_key(&self, bench: usize, predictor: PredictorKind, max_steps: u64) -> u64 {
        fnv1a(&self.bench_identity_bytes(bench, predictor, max_steps))
    }

    /// The content-addressed identity shared by every disk key derived
    /// from a (benchmark, predictor, step-budget) triple.
    fn bench_identity_bytes(
        &self,
        bench: usize,
        predictor: PredictorKind,
        max_steps: u64,
    ) -> Vec<u8> {
        let input = &self.benchmarks[bench];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(input.name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&input.seed.unwrap_or(u64::MAX).to_le_bytes());
        bytes.extend_from_slice(format!("{predictor:?}").as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&max_steps.to_le_bytes());
        bytes.extend_from_slice(input.program.disassemble().as_bytes());
        bytes
    }

    /// Content-addressed disk-cache key of a compiled pair: the profile
    /// identity material plus the machine width and the *full* transform
    /// key — led by the pass's stable cache id — so two transform
    /// variants of the same (benchmark, profile, width) can never share
    /// a disk entry.
    fn pair_disk_key(
        &self,
        bench: usize,
        predictor: PredictorKind,
        max_steps: u64,
        width: usize,
        options: &TransformKey,
    ) -> u64 {
        let mut bytes = self.bench_identity_bytes(bench, predictor, max_steps);
        bytes.extend_from_slice(&(width as u64).to_le_bytes());
        bytes.extend_from_slice(&options.disk_bytes());
        fnv1a(&bytes)
    }

    /// Content-addressed key of one simulation job: the pair identity
    /// material plus the full machine configuration, REF input index,
    /// and variant. Stable across processes (it hashes names, program
    /// text, and option bytes, never registration ids or pointers), so
    /// it keys the sweep journal: a resumed sweep in a fresh process
    /// recognises completed jobs by this key alone.
    pub fn job_key(&self, job: &SimJob, options: &TransformOptions, max_steps: u64) -> u64 {
        let mut bytes = self.bench_identity_bytes(job.bench, job.predictor, max_steps);
        bytes.extend_from_slice(format!("{:?}", job.machine).as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(job.ref_input as u64).to_le_bytes());
        bytes.push(match job.variant {
            Variant::Baseline => 0,
            Variant::Transformed => 1,
        });
        bytes.extend_from_slice(&TransformKey::from_options(options).disk_bytes());
        fnv1a(&bytes)
    }

    /// Stage 1 — profile: the TRAIN-input profile for a benchmark under
    /// a predictor, computed at most once per [`ProfileKey`].
    ///
    /// # Errors
    ///
    /// Returns the profiling error (cached: re-requests see the same
    /// error without re-running).
    pub fn profile(
        &self,
        bench: usize,
        predictor: PredictorKind,
        max_steps: u64,
    ) -> Result<Arc<Profile>, ExperimentError> {
        let key = ProfileKey {
            bench,
            predictor,
            max_steps,
        };
        let slot = {
            let mut map = lock_ignore_poison(&self.profiles);
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let result = slot.get_or_init(|| {
            computed = true;
            let input = &self.benchmarks[bench];
            let disk_key = self
                .disk_cache
                .as_ref()
                .map(|_| self.profile_disk_key(bench, predictor, max_steps));
            let mut claim: Option<ClaimGuard> = None;
            if let (Some(cache), Some(dk)) = (&self.disk_cache, disk_key) {
                // Cross-process claim loop: serve a hit, win the claim
                // and produce, or block on the producing process and
                // re-load once it finishes. Claims are an economy (two
                // workers never recompute the same artifact), not a
                // correctness mechanism — if claiming fails we just
                // compute and let the atomic store race benignly.
                loop {
                    match cache.load(dk) {
                        Ok(Some(profile)) => {
                            self.profile_disk_hits.fetch_add(1, Ordering::Relaxed);
                            for o in &self.observers {
                                o.stage_completed(
                                    Stage::Profile,
                                    &input.name,
                                    Duration::ZERO,
                                    true,
                                );
                            }
                            return Ok(Arc::new(profile));
                        }
                        Ok(None) => {}
                        Err(_corrupt) => {
                            // Quarantined by the cache; recompute below.
                            self.cache_corrupt.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    match cache.claim(DiskCache::PROFILE_TAG, dk) {
                        Ok(Some(guard)) => {
                            // Double-check: a producer may have landed
                            // the entry between our miss and the lock.
                            if let Ok(Some(profile)) = cache.load(dk) {
                                self.profile_disk_hits.fetch_add(1, Ordering::Relaxed);
                                for o in &self.observers {
                                    o.stage_completed(
                                        Stage::Profile,
                                        &input.name,
                                        Duration::ZERO,
                                        true,
                                    );
                                }
                                return Ok(Arc::new(profile));
                            }
                            claim = Some(guard);
                            break;
                        }
                        Ok(None) => continue, // producer finished; re-load
                        Err(_) => break,      // claims unavailable; compute
                    }
                }
            }
            let started = Instant::now();
            let out = vanguard_compiler::profile_program(
                &input.program,
                input.train.memory.clone(),
                &input.train.init_regs,
                predictor.build(),
                max_steps,
            )
            .map(Arc::new)
            .map_err(ExperimentError::from);
            let elapsed = started.elapsed();
            self.profile_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(Stage::Profile, &input.name, elapsed, false);
            }
            if let (Some(cache), Some(dk), Ok(profile)) = (&self.disk_cache, disk_key, &out) {
                // A failed store (full disk) is a future cache miss,
                // never an error: degrade to compute-without-store.
                if cache.store(dk, profile).is_err() {
                    self.cache_store_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Release the claim only after the store landed, so waiting
            // processes re-load and hit instead of recomputing.
            drop(claim);
            out
        });
        if computed {
            self.profile_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(
                    Stage::Profile,
                    &self.benchmarks[bench].name,
                    Duration::ZERO,
                    true,
                );
            }
        }
        result.clone()
    }

    /// Stage 2 — compile-pair: the baseline and transformed programs
    /// for a benchmark under a profile, machine width, and option set,
    /// compiled at most once per [`CompileKey`].
    ///
    /// # Errors
    ///
    /// Returns the profiling error if the guiding profile fails.
    pub fn compile_pair(
        &self,
        bench: usize,
        predictor: PredictorKind,
        machine: MachineConfig,
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<CompiledPair, ExperimentError> {
        let profile = self.profile(bench, predictor, max_steps)?;
        let key = CompileKey {
            profile: ProfileKey {
                bench,
                predictor,
                max_steps,
            },
            width: machine.width,
            options: TransformKey::from_options(options),
        };
        let slot = {
            let mut map = lock_ignore_poison(&self.pairs);
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let pair = slot.get_or_init(|| {
            computed = true;
            let input = &self.benchmarks[bench];
            let disk_key = self.disk_cache.as_ref().map(|_| {
                self.pair_disk_key(bench, predictor, max_steps, machine.width, &key.options)
            });
            let mut claim: Option<ClaimGuard> = None;
            if let (Some(cache), Some(dk)) = (&self.disk_cache, disk_key) {
                // Same cross-process claim loop as `profile`: hit, or
                // win the claim and produce, or wait and re-load.
                loop {
                    match load_pair(cache, dk) {
                        PairLoad::Hit(pair) => {
                            self.pair_disk_hits.fetch_add(1, Ordering::Relaxed);
                            for o in &self.observers {
                                o.stage_completed(
                                    Stage::Compile,
                                    &input.name,
                                    Duration::ZERO,
                                    true,
                                );
                            }
                            return pair;
                        }
                        PairLoad::Miss => {}
                        PairLoad::Corrupt => {
                            // Quarantined (header or image); recompile.
                            self.cache_corrupt.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    match cache.claim(PAIR_TAG, dk) {
                        Ok(Some(guard)) => {
                            // Double-check: a producer may have landed
                            // the entry between our miss and the lock.
                            if let PairLoad::Hit(pair) = load_pair(cache, dk) {
                                self.pair_disk_hits.fetch_add(1, Ordering::Relaxed);
                                for o in &self.observers {
                                    o.stage_completed(
                                        Stage::Compile,
                                        &input.name,
                                        Duration::ZERO,
                                        true,
                                    );
                                }
                                return pair;
                            }
                            claim = Some(guard);
                            break;
                        }
                        Ok(None) => continue, // producer finished; re-load
                        Err(_) => break,      // claims unavailable; compute
                    }
                }
            }
            let started = Instant::now();
            let exp = Experiment {
                machine,
                predictor,
                transform: *options,
                max_profile_steps: max_steps,
            };
            let (baseline, transformed, report) = exp.compile_pair(&input.program, &profile);
            let baseline_image = Arc::new(DecodedImage::build(&baseline));
            let transformed_image = Arc::new(DecodedImage::build(&transformed));
            let elapsed = started.elapsed();
            self.compile_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(Stage::Compile, &input.name, elapsed, false);
            }
            let pair = CompiledPair {
                baseline: Arc::new(baseline),
                transformed: Arc::new(transformed),
                baseline_image,
                transformed_image,
                report,
            };
            if let (Some(cache), Some(dk)) = (&self.disk_cache, disk_key) {
                // A failed store (full disk) is a future cache miss,
                // never an error: degrade to compute-without-store.
                if store_pair(cache, dk, &pair).is_err() {
                    self.cache_store_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Release the claim only after the store landed, so waiting
            // processes re-load and hit instead of recompiling.
            drop(claim);
            pair
        });
        if computed {
            self.compile_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            for o in &self.observers {
                o.stage_completed(
                    Stage::Compile,
                    &self.benchmarks[bench].name,
                    Duration::ZERO,
                    true,
                );
            }
        }
        Ok(pair.clone())
    }

    /// Stage 3 — simulate-one-ref: runs one job through the cached
    /// stages and one simulation. Deterministic for a given job. Never
    /// returns an error or panics on a guest fault: traps, watchdog
    /// cancellations, and stage failures become the corresponding
    /// [`JobResult`] variant.
    pub fn run_job(&self, job: &SimJob, options: &TransformOptions, max_steps: u64) -> JobResult {
        let input = &self.benchmarks[job.bench];
        let pair =
            match self.compile_pair(job.bench, job.predictor, job.machine, options, max_steps) {
                Ok(pair) => pair,
                Err(e) => {
                    return JobResult::Failed {
                        job: *job,
                        error: Box::new(
                            experiment_to_vanguard(e)
                                .with_benchmark(&input.name)
                                .with_seed(input.seed),
                        ),
                        retried: false,
                    }
                }
            };
        let image = match job.variant {
            Variant::Baseline => &pair.baseline_image,
            Variant::Transformed => &pair.transformed_image,
        };
        let ref_input = &input.refs[job.ref_input];
        let mut sim = Simulator::with_image(
            Arc::clone(image),
            ref_input.memory.clone(),
            job.machine,
            job.predictor.build(),
        );
        for &(r, v) in &ref_input.init_regs {
            sim.set_reg(r, v);
        }
        sim.set_replay(options.replay.enabled());
        let policy = &self.fault_policy;
        let deadline = policy.job_timeout.map(|t| Instant::now() + t);
        if policy.max_cycles.is_some() || deadline.is_some() {
            sim.set_watchdog(policy.max_cycles, deadline);
        }
        let started = Instant::now();
        let outcome = sim.run_checked();
        let sim_elapsed = started.elapsed();
        self.sim_jobs.fetch_add(1, Ordering::Relaxed);
        self.sim_nanos
            .fetch_add(sim_elapsed.as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            Ok(res) if res.stop == StopCause::TimedOut => JobResult::TimedOut {
                job: *job,
                cycles: res.stats.cycles,
                wall_ms: sim_elapsed.as_millis() as u64,
                retried: false,
            },
            Ok(res) => {
                self.sim_insts
                    .fetch_add(res.stats.committed(), Ordering::Relaxed);
                self.replay_hits
                    .fetch_add(res.replay.hits, Ordering::Relaxed);
                self.replayed_cycles
                    .fetch_add(res.replay.replayed_cycles, Ordering::Relaxed);
                self.replay_divergences
                    .fetch_add(res.replay.divergences, Ordering::Relaxed);
                self.replay_recordings
                    .fetch_add(res.replay.recordings, Ordering::Relaxed);
                self.replay_misses
                    .fetch_add(res.replay.misses, Ordering::Relaxed);
                self.replay_suppressed
                    .fetch_add(res.replay.suppressed_ticks, Ordering::Relaxed);
                self.replay_armed_sites
                    .fetch_add(res.replay.armed_sites, Ordering::Relaxed);
                self.replay_disarmed_sites
                    .fetch_add(res.replay.disarmed_sites, Ordering::Relaxed);
                JobResult::Completed(Box::new(JobSuccess {
                    job: *job,
                    stats: res.stats,
                    sim_elapsed,
                    replay: res.replay,
                    retried: false,
                }))
            }
            Err(fault) => JobResult::Faulted {
                job: *job,
                pc: fault.error.pc(),
                cycle: fault.cycle,
                trap: fault.error,
                retried: false,
            },
        }
    }

    /// [`Engine::run_job`] inside the full containment boundary: worker
    /// panics (including injected ones) are caught and become
    /// [`JobResult::Failed`]; transient failures are retried once with
    /// backoff when the policy allows. Outcome counters are updated
    /// exactly once, for the final outcome.
    fn run_job_guarded(
        &self,
        index: usize,
        job: &SimJob,
        options: &TransformOptions,
        max_steps: u64,
    ) -> JobResult {
        let mut retried = false;
        let mut outcome = loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.maybe_inject_panic(index);
                self.run_job(job, options, max_steps)
            }));
            let outcome = match attempt {
                Ok(outcome) => outcome,
                Err(payload) => {
                    let input = &self.benchmarks[job.bench];
                    JobResult::Failed {
                        job: *job,
                        error: Box::new(
                            VanguardError::new(
                                Stage::Simulate,
                                ErrorKind::WorkerPanic {
                                    detail: panic_message(payload.as_ref()),
                                },
                            )
                            .with_benchmark(&input.name)
                            .with_seed(input.seed),
                        ),
                        retried: false,
                    }
                }
            };
            let transient =
                matches!(&outcome, JobResult::Failed { error, .. } if error.is_transient());
            if transient && !retried && self.fault_policy.retry_transient {
                retried = true;
                self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                let name = &self.benchmarks[job.bench].name;
                for o in &self.observers {
                    o.job_retried(index, job, name);
                }
                std::thread::sleep(self.fault_policy.backoff);
                continue;
            }
            break outcome;
        };
        outcome.set_retried(retried);
        let counter = match &outcome {
            JobResult::Completed(_) => &self.jobs_ok,
            JobResult::Faulted { .. } => &self.jobs_faulted,
            JobResult::TimedOut { .. } => &self.jobs_timed_out,
            JobResult::Failed { .. } => &self.jobs_failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// Writes a replayable reproducer for a non-completed job into the
    /// policy's quarantine directory (same spirit as the fuzzer's
    /// `seed-<N>/` reproducers): the failure context, the replay seed
    /// when the benchmark is seed-generated, and the program text.
    /// Best-effort — reproducer I/O failures never affect the run.
    fn quarantine_job(&self, index: usize, job: &SimJob, outcome: &JobResult) {
        let Some(qdir) = &self.fault_policy.quarantine_dir else {
            return;
        };
        let input = &self.benchmarks[job.bench];
        let dir = qdir.join(format!("job-{index:04}-{}", input.name));
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut repro = String::from("# Quarantined-job reproducer\n");
        repro.push_str(&format!("job index : {index}\n"));
        repro.push_str(&format!("benchmark : {}\n", input.name));
        if let Some(seed) = input.seed {
            repro.push_str(&format!("seed      : {seed}\n"));
            // `vanguard-fuzz --one N` regenerates exactly the fuzz
            // kernels; other seeded benchmarks replay via their suite.
            if input.name.starts_with("fuzz-") {
                repro.push_str(&format!("replay    : vanguard-fuzz --one {seed}\n"));
            }
        }
        repro.push_str(&format!("job       : {job:?}\n"));
        if let Some(e) = outcome.as_error(&input.name, input.seed) {
            repro.push_str(&format!("failure   : {e}\n"));
        }
        let _ = std::fs::write(dir.join("repro.txt"), repro);
        let _ = std::fs::write(dir.join("program.asm"), input.program.disassemble());
    }

    // ----------------------------------------------------------------
    // Sweep execution
    // ----------------------------------------------------------------

    /// Executes a flat job list on the worker pool. Results come back
    /// in **job-index order** regardless of worker count or completion
    /// order. Infallible: every job produces a [`JobResult`], and a
    /// failing job never prevents the rest of the list from running
    /// (nor perturbs their results — see `tests/fault_recovery.rs`).
    /// Non-completed jobs are quarantined with a reproducer when the
    /// policy names a quarantine directory.
    pub fn run_jobs(
        &self,
        jobs: &[SimJob],
        options: &TransformOptions,
        max_steps: u64,
    ) -> Vec<JobResult> {
        let n = jobs.len();
        let mut results: Vec<Option<JobResult>> = Vec::new();
        results.resize_with(n, || None);
        let results = Mutex::new(results);
        let next = AtomicUsize::new(0);
        let workers = self.workers.min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = &jobs[i];
                    let name = &self.benchmarks[job.bench].name;
                    for o in &self.observers {
                        o.job_started(i, job, name);
                    }
                    let outcome = self.run_job_guarded(i, job, options, max_steps);
                    match &outcome {
                        JobResult::Completed(s) => {
                            for o in &self.observers {
                                o.job_finished(i, job, name, &s.stats, s.sim_elapsed);
                                o.job_replay(i, job, name, &s.replay);
                            }
                        }
                        other => {
                            for o in &self.observers {
                                o.job_failed(i, job, name, other);
                            }
                            self.quarantine_job(i, job, other);
                        }
                    }
                    lock_ignore_poison(&results)[i] = Some(outcome);
                });
            }
        });
        results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every job index was executed"))
            .collect()
    }

    /// The canonical job expansion of sweep cells: for each cell, every
    /// REF input × {baseline, transformed}, in the nesting order the
    /// serial loops used (refs outer, variants inner).
    pub fn jobs_for_cells(&self, cells: &[SweepCell]) -> Vec<SimJob> {
        let mut jobs = Vec::new();
        for cell in cells {
            for ref_input in 0..self.benchmarks[cell.bench].refs.len() {
                for variant in [Variant::Baseline, Variant::Transformed] {
                    jobs.push(SimJob {
                        bench: cell.bench,
                        ref_input,
                        machine: cell.machine,
                        predictor: cell.predictor,
                        variant,
                    });
                }
            }
        }
        jobs
    }

    /// Runs a sweep matrix end-to-end: each cell becomes one
    /// [`ExperimentOutcome`] (the Table 2 row shape), computed from
    /// jobs executed on the pool with artifacts shared across cells.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) error, or
    /// [`ExperimentError::NoRefInputs`] if a cell's benchmark has no
    /// REF inputs. Fault-tolerant callers who want the *surviving*
    /// cells instead of the first error use
    /// [`Engine::run_cells_tolerant`].
    pub fn run_cells(
        &self,
        cells: &[SweepCell],
        options: &TransformOptions,
        max_steps: u64,
    ) -> Result<Vec<ExperimentOutcome>, ExperimentError> {
        for cell in cells {
            if self.benchmarks[cell.bench].refs.is_empty() {
                return Err(ExperimentError::NoRefInputs);
            }
        }
        self.run_cells_tolerant(cells, options, max_steps)
            .into_iter()
            .map(|r| r.map_err(ExperimentError::from))
            .collect()
    }

    /// The fault-tolerant sweep: every cell yields a result, and a
    /// faulting, wedged, or crashing cell never stops — or perturbs —
    /// the others. A cell fails with the error of its lowest-indexed
    /// failing job, carrying benchmark and seed context.
    pub fn run_cells_tolerant(
        &self,
        cells: &[SweepCell],
        options: &TransformOptions,
        max_steps: u64,
    ) -> Vec<Result<ExperimentOutcome, VanguardError>> {
        let jobs = self.jobs_for_cells(cells);
        let results = self.run_jobs(&jobs, options, max_steps);
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut cursor = 0usize;
        for cell in cells {
            let input = &self.benchmarks[cell.bench];
            if input.refs.is_empty() {
                outcomes.push(Err(VanguardError::new(
                    Stage::Simulate,
                    ErrorKind::NoRefInputs,
                )
                .with_benchmark(&input.name)
                .with_seed(input.seed)));
                continue;
            }
            let n_refs = input.refs.len();
            let slice = &results[cursor..cursor + 2 * n_refs];
            cursor += 2 * n_refs;
            if let Some(err) = slice
                .iter()
                .find_map(|r| r.as_error(&input.name, input.seed))
            {
                outcomes.push(Err(err));
                continue;
            }
            let mut runs = Vec::with_capacity(n_refs);
            for pair in slice.chunks_exact(2) {
                runs.push(RefRun {
                    base: pair[0].expect_completed().stats,
                    exp: pair[1].expect_completed().stats,
                });
            }
            // Cached: this re-fetch never recompiles or re-profiles.
            let outcome = self
                .compile_pair(cell.bench, cell.predictor, cell.machine, options, max_steps)
                .and_then(|pair| {
                    let profile = self.profile(cell.bench, cell.predictor, max_steps)?;
                    Ok(ExperimentOutcome {
                        name: input.name.clone(),
                        report: pair.report,
                        runs,
                        profile_dynamic_insts: profile.dynamic_insts,
                    })
                })
                .map_err(|e| {
                    experiment_to_vanguard(e)
                        .with_benchmark(&input.name)
                        .with_seed(input.seed)
                });
            outcomes.push(outcome);
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::tests::experiment_input;

    fn engine_with(n: usize, workers: usize) -> (Engine, Vec<usize>) {
        let mut engine = Engine::with_workers(workers);
        let ids = (0..n)
            .map(|i| {
                let mut input = experiment_input(400 + 100 * i);
                input.name = format!("bench{i}");
                engine.add_benchmark(input)
            })
            .collect();
        (engine, ids)
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let opts = TransformOptions::default();
        let cells = |ids: &[usize]| -> Vec<SweepCell> {
            ids.iter()
                .flat_map(|&bench| {
                    [MachineConfig::two_wide(), MachineConfig::four_wide()]
                        .into_iter()
                        .map(move |machine| SweepCell {
                            bench,
                            machine,
                            predictor: PredictorKind::Combined24KB,
                        })
                })
                .collect()
        };
        let (serial, ids_s) = engine_with(2, 1);
        let serial_out = serial.run_cells(&cells(&ids_s), &opts, 1_000_000).unwrap();
        let (parallel, ids_p) = engine_with(2, 4);
        let parallel_out = parallel
            .run_cells(&cells(&ids_p), &opts, 1_000_000)
            .unwrap();
        assert_eq!(serial_out.len(), parallel_out.len());
        for (s, p) in serial_out.iter().zip(&parallel_out) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.profile_dynamic_insts, p.profile_dynamic_insts);
            assert_eq!(s.runs.len(), p.runs.len());
            for (sr, pr) in s.runs.iter().zip(&p.runs) {
                assert_eq!(sr.base, pr.base);
                assert_eq!(sr.exp, pr.exp);
            }
        }
    }

    #[test]
    fn artifacts_are_computed_once_per_key() {
        let opts = TransformOptions::default();
        let (mut engine, _) = engine_with(0, 4);
        let b0 = engine.add_benchmark(experiment_input(500));
        // 3 widths × 1 predictor: 1 profile, 3 compiles, regardless of
        // how many REF sims reference them.
        let cells: Vec<SweepCell> = MachineConfig::all_widths()
            .into_iter()
            .map(|machine| SweepCell {
                bench: b0,
                machine,
                predictor: PredictorKind::Combined24KB,
            })
            .collect();
        engine.run_cells(&cells, &opts, 1_000_000).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.profile_misses, 1, "{stats:?}");
        assert_eq!(stats.compile_misses, 3, "{stats:?}");
        assert_eq!(stats.sim_jobs, 6, "{stats:?}");
        // Re-running the same cells is all hits.
        engine.run_cells(&cells, &opts, 1_000_000).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.profile_misses, 1, "{stats:?}");
        assert_eq!(stats.compile_misses, 3, "{stats:?}");
    }

    #[test]
    fn observer_sees_every_job() {
        #[derive(Default)]
        struct Counter {
            started: AtomicU64,
            finished: AtomicU64,
            stages: AtomicU64,
        }
        impl ProgressObserver for Counter {
            fn job_started(&self, _: usize, _: &SimJob, _: &str) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn job_finished(&self, _: usize, _: &SimJob, _: &str, _: &SimStats, _: Duration) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
            fn stage_completed(&self, _: Stage, _: &str, _: Duration, _: bool) {
                self.stages.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Counter::default());
        let mut engine = Engine::with_workers(2);
        let bench = engine.add_benchmark(experiment_input(300));
        engine.observe(counter.clone());
        let cells = [SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }];
        engine
            .run_cells(&cells, &TransformOptions::default(), 1_000_000)
            .unwrap();
        assert_eq!(counter.started.load(Ordering::Relaxed), 2);
        assert_eq!(counter.finished.load(Ordering::Relaxed), 2);
        assert!(counter.stages.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn injected_panic_is_retried_and_recovers() {
        let opts = TransformOptions::default();
        let (engine, ids) = engine_with(1, 2);
        let jobs = engine.jobs_for_cells(&[SweepCell {
            bench: ids[0],
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }]);
        engine.inject_worker_panic(0, 1);
        let results = engine.run_jobs(&jobs, &opts, 1_000_000);
        assert!(results.iter().all(JobResult::is_completed));
        assert!(results[0].retried());
        assert!(!results[1].retried());
        let stats = engine.stats();
        assert_eq!(stats.jobs_retried, 1, "{stats:?}");
        assert_eq!(stats.jobs_ok as usize, jobs.len(), "{stats:?}");
        assert_eq!(stats.jobs_failed, 0, "{stats:?}");
    }

    #[test]
    fn repeated_panic_becomes_a_failed_outcome() {
        let opts = TransformOptions::default();
        let (engine, ids) = engine_with(1, 1);
        let jobs = engine.jobs_for_cells(&[SweepCell {
            bench: ids[0],
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }]);
        engine.inject_worker_panic(1, 2); // survives the one retry
        let results = engine.run_jobs(&jobs, &opts, 1_000_000);
        assert!(results[0].is_completed());
        match &results[1] {
            JobResult::Failed { error, retried, .. } => {
                assert!(*retried);
                assert!(matches!(error.kind, ErrorKind::WorkerPanic { .. }));
                assert_eq!(error.benchmark.as_deref(), Some("bench0"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs_failed, 1, "{stats:?}");
        assert_eq!(stats.jobs_retried, 1, "{stats:?}");
    }

    #[test]
    fn distinct_option_sets_get_distinct_compile_keys() {
        let a = TransformOptions::default();
        let mut b = TransformOptions::default();
        b.max_hoist += 1;
        let mut c = TransformOptions::default();
        c.select.threshold += 0.01;
        let pk = ProfileKey {
            bench: 0,
            predictor: PredictorKind::Combined24KB,
            max_steps: 1,
        };
        let keys: Vec<CompileKey> = [&a, &b, &c]
            .iter()
            .map(|o| CompileKey {
                profile: pk,
                width: 4,
                options: TransformKey::from_options(o),
            })
            .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn transform_variants_get_distinct_cache_keys() {
        let pk = ProfileKey {
            bench: 0,
            predictor: PredictorKind::Combined24KB,
            max_steps: 1,
        };
        let (engine, ids) = engine_with(1, 1);
        let mut compile_keys = Vec::new();
        let mut disk_keys = Vec::new();
        for kind in TransformKind::ALL {
            let opts = TransformOptions {
                kind,
                ..TransformOptions::default()
            };
            let tkey = TransformKey::from_options(&opts);
            compile_keys.push(CompileKey {
                profile: pk,
                width: 4,
                options: tkey,
            });
            disk_keys.push(engine.pair_disk_key(
                ids[0],
                PredictorKind::Combined24KB,
                1_000_000,
                4,
                &tkey,
            ));
        }
        // Every variant of the same (benchmark, profile, width) gets a
        // distinct in-memory artifact key AND a distinct disk entry.
        for i in 0..compile_keys.len() {
            for j in i + 1..compile_keys.len() {
                assert_ne!(compile_keys[i], compile_keys[j]);
                assert_ne!(disk_keys[i], disk_keys[j]);
            }
        }
    }

    #[test]
    fn pair_disk_cache_roundtrips_per_variant() {
        let dir =
            std::env::temp_dir().join(format!("vanguard-paircache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = FaultPolicy {
            cache_dir: Some(dir.clone()),
            ..FaultPolicy::default()
        };
        let kinds = [TransformKind::Vanguard, TransformKind::Meld];

        let (mut first, ids) = engine_with(1, 1);
        first.set_fault_policy(policy.clone());
        let mut originals = Vec::new();
        for kind in kinds {
            let opts = TransformOptions {
                kind,
                ..TransformOptions::default()
            };
            originals.push(
                first
                    .compile_pair(
                        ids[0],
                        PredictorKind::Combined24KB,
                        MachineConfig::four_wide(),
                        &opts,
                        1_000_000,
                    )
                    .unwrap(),
            );
        }
        assert_eq!(first.stats().pair_disk_hits, 0);
        // The two variants occupy two distinct disk entries.
        let pair_entries = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("pair-")
            })
            .count();
        assert_eq!(pair_entries, 2);
        // ...but their images are content-addressed and shared: on this
        // benchmark the meld pass has nothing to meld, so both kinds
        // produce byte-identical programs and the four image references
        // collapse to two entries (one baseline, one transformed).
        let image_entries = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("image-")
            })
            .count();
        assert_eq!(image_entries, 2);

        // A fresh engine (empty in-memory caches) is served from disk,
        // bit-identically per variant.
        let (mut second, ids2) = engine_with(1, 1);
        second.set_fault_policy(policy);
        for (kind, original) in kinds.into_iter().zip(&originals) {
            let opts = TransformOptions {
                kind,
                ..TransformOptions::default()
            };
            let pair = second
                .compile_pair(
                    ids2[0],
                    PredictorKind::Combined24KB,
                    MachineConfig::four_wide(),
                    &opts,
                    1_000_000,
                )
                .unwrap();
            assert_eq!(*pair.baseline, *original.baseline);
            assert_eq!(*pair.transformed, *original.transformed);
            assert_eq!(pair.report.converted, original.report.converted);
            assert_eq!(pair.report.skipped, original.report.skipped);
            assert_eq!(pair.report.melded, original.report.melded);
            assert_eq!(
                pair.report.forward_branches,
                original.report.forward_branches
            );
        }
        assert_eq!(second.stats().pair_disk_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

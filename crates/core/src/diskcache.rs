//! Crash-safe on-disk artifact cache.
//!
//! Expensive engine artifacts — profiles (a full TRAIN-input
//! interpretation) and compiled program pairs — can optionally persist
//! across processes in a directory named by `VANGUARD_CACHE_DIR`.
//! Entries are namespaced by a `tag` (`profile-…`, `pair-…`) so distinct
//! artifact types can never alias, and every key already folds in the
//! transform variant's stable cache id, so two transform kinds of the
//! same (benchmark, profile, width) occupy distinct files. The cache is
//! designed to survive crashes and concurrent writers without ever
//! poisoning a run:
//!
//! * **Atomic writes** — entries are written to a private temp file in
//!   the cache directory and `rename`d into place, so a reader never
//!   observes a half-written entry (at worst it misses and recomputes).
//! * **Checksummed entries** — every entry carries a magic tag, payload
//!   length, and FNV-1a checksum; [`DiskCache::load`] validates all
//!   three plus the payload structure before trusting a byte.
//! * **Evict-and-recompute** — a corrupt entry is moved into a
//!   `quarantine/` subdirectory (preserved for postmortem) and reported
//!   as [`CorruptEntry`]; the caller recomputes and re-stores. A flaky
//!   disk degrades throughput, never correctness.
//! * **Cross-process claims** — [`DiskCache::claim`] hands exactly one
//!   process the right to produce a missing entry (an OS file lock on a
//!   `claim-…` file); everyone else blocks until the producer stores and
//!   releases, then re-loads. A `SIGKILL`ed producer releases its lock
//!   with its process, so a dead claim never wedges the farm. Two
//!   workers never recompute the same artifact while both are healthy.
//! * **Content-addressed payloads** — [`DiskCache::store_content`] keys
//!   an entry by the FNV-1a hash of its payload, so identical artifacts
//!   produced anywhere in the farm share one entry, and
//!   [`DiskCache::load_content`] re-verifies the address against the
//!   bytes (a mismatch is quarantined like any other corruption).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};
use vanguard_ir::Profile;

/// Entry header magic ("Vanguard Cache v1").
const MAGIC: &[u8; 4] = b"VGC1";

/// 64-bit FNV-1a — the checksum and key hash of the disk cache (stable
/// across platforms and processes, no dependencies).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cache entry that failed validation and was quarantined.
#[derive(Clone, Debug)]
pub struct CorruptEntry {
    /// Where the entry now lives (under `quarantine/`), or its original
    /// path if even the quarantine move failed.
    pub path: PathBuf,
    /// What failed to validate.
    pub detail: String,
}

/// The outcome of a lease-aware claim attempt
/// ([`DiskCache::try_claim_leased`]).
#[derive(Debug)]
pub enum ClaimAttempt {
    /// This caller won the claim (and stamped its heartbeat).
    Won(ClaimGuard),
    /// Another process holds the claim and its heartbeat is fresh —
    /// let it work.
    Held,
    /// Another process holds the claim but has not refreshed its
    /// heartbeat within the lease: treat the holder as dead and steal
    /// the work (the caller must make its side effects idempotent —
    /// e.g. journal with [`append_new`](crate::Journal::append_new)).
    Expired,
}

/// A crash-safe, checksummed artifact cache rooted at a directory.
#[derive(Clone, Debug)]
pub struct DiskCache {
    dir: PathBuf,
    /// Byte budget over the `.bin` entries; exceeding it evicts
    /// oldest-first ([`DiskCache::enforce_budget`]).
    budget: Option<u64>,
    /// Entries evicted under disk pressure (shared across clones).
    evictions: Arc<AtomicU64>,
    /// Approximate `.bin` bytes on disk, maintained so an under-budget
    /// store costs one atomic add instead of a directory scan. Seeded
    /// to `u64::MAX` so the first store always measures for real
    /// (pre-existing entries, other writers); every full scan resets
    /// it to the measured total.
    stored: Arc<AtomicU64>,
}

impl DiskCache {
    /// A cache rooted at `dir` (created lazily on first store), with no
    /// byte budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_budget(dir, None)
    }

    /// A cache rooted at `dir` with an optional byte budget
    /// (`VANGUARD_CACHE_BUDGET`): after every store the `.bin` entries
    /// are kept under `budget` bytes by evicting unclaimed entries
    /// oldest-first.
    pub fn with_budget(dir: impl Into<PathBuf>, budget: Option<u64>) -> Self {
        DiskCache {
            dir: dir.into(),
            budget,
            evictions: Arc::new(AtomicU64::new(0)),
            stored: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries evicted under the byte budget so far (shared across
    /// clones of this handle).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The quarantine directory for poisoned entries.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn entry_path(&self, tag: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{tag}-{key:016x}.bin"))
    }

    /// Loads and validates the profile entry for `key`.
    ///
    /// Returns `Ok(None)` on a clean miss (no entry).
    ///
    /// # Errors
    ///
    /// Returns [`CorruptEntry`] when an entry exists but fails
    /// validation; the entry has already been moved to quarantine (or
    /// deleted if the move failed), so recomputing and re-storing is
    /// always safe.
    pub fn load(&self, key: u64) -> Result<Option<Profile>, CorruptEntry> {
        let Some(payload) = self.load_bytes(Self::PROFILE_TAG, key)? else {
            return Ok(None);
        };
        match Profile::from_bytes(&payload) {
            Ok(profile) => Ok(Some(profile)),
            Err(detail) => Err(self.reject(Self::PROFILE_TAG, key, detail)),
        }
    }

    /// The entry namespace for profiles ([`DiskCache::load`] /
    /// [`DiskCache::store`]).
    pub const PROFILE_TAG: &'static str = "profile";

    /// Loads and validates the raw entry for `(tag, key)`, returning the
    /// checksummed payload. `Ok(None)` is a clean miss.
    ///
    /// # Errors
    ///
    /// Returns [`CorruptEntry`] when an entry exists but its envelope
    /// (magic, length, checksum) fails validation; the entry has been
    /// quarantined, so recomputing and re-storing is always safe. The
    /// caller is responsible for *structural* validation of the payload
    /// — use [`DiskCache::reject`] when that fails.
    pub fn load_bytes(&self, tag: &str, key: u64) -> Result<Option<Vec<u8>>, CorruptEntry> {
        let path = self.entry_path(tag, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(self.quarantine(&path, format!("unreadable: {e}"))),
        };
        match Self::validate(&bytes) {
            Ok(payload) => Ok(Some(payload.to_vec())),
            Err(detail) => Err(self.quarantine(&path, detail.to_string())),
        }
    }

    fn validate(bytes: &[u8]) -> Result<&[u8], &'static str> {
        if bytes.len() < 20 {
            return Err("shorter than the entry header");
        }
        if &bytes[..4] != MAGIC {
            return Err("bad magic");
        }
        let len = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let payload = &bytes[20..];
        if payload.len() as u64 != len {
            return Err("payload length mismatch (truncated or torn write)");
        }
        if fnv1a(payload) != checksum {
            return Err("checksum mismatch");
        }
        Ok(payload)
    }

    /// Atomically stores the profile entry for `key` (temp file +
    /// rename; a concurrent reader sees either the old entry or the new
    /// one, never a torn write).
    ///
    /// # Errors
    ///
    /// Returns the I/O error; callers treat a failed store as a cache
    /// miss, never a run failure.
    pub fn store(&self, key: u64, profile: &Profile) -> io::Result<()> {
        self.store_bytes(Self::PROFILE_TAG, key, &profile.to_bytes())
    }

    /// Atomically stores a raw payload for `(tag, key)` under the
    /// checksummed envelope.
    ///
    /// # Errors
    ///
    /// Returns the I/O error; callers treat a failed store as a cache
    /// miss, never a run failure.
    pub fn store_bytes(&self, tag: &str, key: u64, payload: &[u8]) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut entry = Vec::with_capacity(20 + payload.len());
        entry.extend_from_slice(MAGIC);
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fnv1a(payload).to_le_bytes());
        entry.extend_from_slice(payload);
        let tmp = self
            .dir
            .join(format!(".tmp-{tag}-{key:016x}-{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&entry)?;
            f.sync_all()?;
        }
        let result = fs::rename(&tmp, self.entry_path(tag, key));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        if result.is_ok() {
            if let Some(budget) = self.budget {
                // Disk-pressure degradation, not an error: a store that
                // pushed the cache over budget evicts cold entries. The
                // running estimate keeps the common under-budget store
                // at one atomic add; only crossing the budget (or the
                // first store ever) pays for a directory scan.
                let prev = self.stored.fetch_add(entry.len() as u64, Ordering::Relaxed);
                if prev.saturating_add(entry.len() as u64) > budget {
                    let _ = self.enforce_budget();
                }
            }
        }
        result
    }

    /// Brings the `.bin` entries under the byte budget (if one is set)
    /// by deleting *unclaimed* entries oldest-first (by modification
    /// time, ties broken by name for determinism). An entry whose claim
    /// file is currently locked has an active producer or consumer and
    /// is skipped. Returns the number of entries evicted.
    ///
    /// Eviction is an economy, never a correctness risk: a reader that
    /// loses its entry mid-run sees a clean miss and recomputes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from scanning the cache directory.
    pub fn enforce_budget(&self) -> io::Result<u64> {
        let Some(budget) = self.budget else {
            return Ok(0);
        };
        let mut entries: Vec<(SystemTime, PathBuf, u64)> = Vec::new();
        let mut total = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "bin") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            total += meta.len();
            entries.push((mtime, path, meta.len()));
        }
        if total <= budget {
            self.stored.store(total, Ordering::Relaxed);
            return Ok(0);
        }
        entries.sort();
        let mut evicted = 0u64;
        for (_, path, len) in entries {
            if total <= budget {
                break;
            }
            if self.entry_is_claimed(&path) {
                continue; // an active producer/consumer owns it
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
            }
        }
        self.stored.store(total, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Whether the entry at `path` has a live claim holder (its claim
    /// file exists and is currently locked).
    fn entry_is_claimed(&self, entry: &Path) -> bool {
        let Some(stem) = entry.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
            return false;
        };
        let claim = self.dir.join(format!("claim-{stem}.lock"));
        let Ok(file) = OpenOptions::new().write(true).open(&claim) else {
            return false; // no claim file: nobody owns it
        };
        match file.try_lock() {
            Ok(()) => {
                let _ = File::unlock(&file);
                false
            }
            Err(_) => true,
        }
    }

    /// Stores a payload content-addressed: the entry key is the FNV-1a
    /// hash of the payload itself, so identical artifacts share one
    /// entry regardless of who produced them. Returns the key. Storing
    /// an already-present entry is a cheap no-op (the bytes are by
    /// construction identical).
    ///
    /// # Errors
    ///
    /// Returns the I/O error; callers treat a failed store as a future
    /// cache miss, never a run failure.
    pub fn store_content(&self, tag: &str, payload: &[u8]) -> io::Result<u64> {
        let key = fnv1a(payload);
        if !self.entry_path(tag, key).exists() {
            self.store_bytes(tag, key, payload)?;
        }
        Ok(key)
    }

    /// Loads a content-addressed entry, re-verifying that the payload
    /// still hashes to its key (the content address is a second,
    /// independent checksum: an envelope that validates but no longer
    /// matches its address is quarantined).
    ///
    /// # Errors
    ///
    /// Returns [`CorruptEntry`] when the entry fails envelope validation
    /// or its payload no longer hashes to `key`.
    pub fn load_content(&self, tag: &str, key: u64) -> Result<Option<Vec<u8>>, CorruptEntry> {
        let Some(payload) = self.load_bytes(tag, key)? else {
            return Ok(None);
        };
        if fnv1a(&payload) != key {
            return Err(self.reject(tag, key, "content address mismatch"));
        }
        Ok(Some(payload))
    }

    fn claim_path(&self, tag: &str, key: u64) -> PathBuf {
        self.dir.join(format!("claim-{tag}-{key:016x}.lock"))
    }

    /// Claims the right to produce the entry for `(tag, key)` across
    /// concurrent *processes*. Returns `Some(guard)` when this caller
    /// won the claim — it should double-check the entry (the previous
    /// holder may have stored it), compute, store, and drop the guard.
    /// Returns `None` after **blocking** until the current holder
    /// released — the caller re-loads, and only re-claims if the entry
    /// is still missing (the holder died or failed to store).
    ///
    /// The claim is an OS file lock, so a `SIGKILL`ed holder releases it
    /// automatically: a dead producer costs one recompute, never a hang.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating or locking the claim file;
    /// callers treat a failed claim as "compute it myself" (correctness
    /// never depends on claims, only at-most-once economy does).
    pub fn claim(&self, tag: &str, key: u64) -> io::Result<Option<ClaimGuard>> {
        fs::create_dir_all(&self.dir)?;
        let path = self.claim_path(tag, key);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => Ok(Some(ClaimGuard { file, path })),
            Err(_) => {
                // Another process holds the claim: wait for it to finish
                // (or die — the OS releases the lock either way).
                file.lock()?;
                let _ = File::unlock(&file);
                Ok(None)
            }
        }
    }

    /// Non-blocking variant of [`DiskCache::claim`]: returns `None`
    /// *immediately* when another process holds the claim, instead of
    /// waiting for it. The sweep workers steal work with this — a
    /// contended job means someone else is running it, so the worker
    /// moves on to the next one rather than convoying.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating or locking the claim file.
    pub fn try_claim(&self, tag: &str, key: u64) -> io::Result<Option<ClaimGuard>> {
        fs::create_dir_all(&self.dir)?;
        let path = self.claim_path(tag, key);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => Ok(Some(ClaimGuard { file, path })),
            Err(_) => Ok(None),
        }
    }

    /// Lease-aware variant of [`DiskCache::try_claim`]: a claim file's
    /// modification time is its holder's *heartbeat* (stamped on win,
    /// refreshed via [`ClaimGuard::heartbeat`]). A contended claim whose
    /// heartbeat is older than `lease` is reported as
    /// [`ClaimAttempt::Expired`] — the holder is alive but wedged (a
    /// `SIGKILL`ed holder releases the OS lock outright and the claim is
    /// simply won), so the caller should steal the work and rely on an
    /// idempotent completion path for correctness.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating or locking the claim file.
    pub fn try_claim_leased(
        &self,
        tag: &str,
        key: u64,
        lease: Duration,
    ) -> io::Result<ClaimAttempt> {
        fs::create_dir_all(&self.dir)?;
        let path = self.claim_path(tag, key);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                let guard = ClaimGuard { file, path };
                guard.heartbeat(); // a stale file must read as freshly held
                Ok(ClaimAttempt::Won(guard))
            }
            Err(_) => match claim_age(&path) {
                Some(age) if age > lease => Ok(ClaimAttempt::Expired),
                _ => Ok(ClaimAttempt::Held),
            },
        }
    }

    /// Sweeps stale claim files — lease-expired *and* holder gone (the
    /// file is unlocked; a live holder's OS lock dies with its process)
    /// — into `quarantine/`. Run/daemon startup calls this so debris
    /// from `SIGKILL`ed workers never accumulates. Returns the number of
    /// claim files swept.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from scanning the cache directory; a
    /// missing directory sweeps nothing.
    pub fn sweep_stale_claims(&self, lease: Duration) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut swept = 0usize;
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("claim-") || !name.ends_with(".lock") {
                continue;
            }
            let Ok(file) = OpenOptions::new().write(true).open(&path) else {
                continue;
            };
            if file.try_lock().is_err() {
                continue; // live holder
            }
            let stale = claim_age(&path).is_some_and(|age| age > lease);
            if stale {
                let qdir = self.quarantine_dir();
                let _ = fs::create_dir_all(&qdir);
                if fs::rename(&path, qdir.join(&name)).is_err() {
                    let _ = fs::remove_file(&path);
                }
                swept += 1;
            }
            let _ = File::unlock(&file);
        }
        Ok(swept)
    }

    /// Quarantines the entry for `(tag, key)` whose *payload* failed the
    /// caller's structural validation (the envelope was intact, so
    /// [`DiskCache::load_bytes`] returned it as a hit).
    pub fn reject(&self, tag: &str, key: u64, detail: impl Into<String>) -> CorruptEntry {
        self.quarantine(&self.entry_path(tag, key), detail.into())
    }

    /// Moves a poisoned entry into `quarantine/`, falling back to
    /// deletion so the corrupt bytes can never be re-read as a hit.
    /// Also sweeps the entry's orphaned `.tmp-…` files: a writer that
    /// died between `create` and `rename` leaves its private temp file
    /// behind, and a rejected entry is the natural point to reclaim
    /// them (a temp file removed under a *live* writer only fails that
    /// writer's rename, which it already treats as a cache miss).
    fn quarantine(&self, path: &Path, detail: String) -> CorruptEntry {
        let qdir = self.quarantine_dir();
        let _ = fs::create_dir_all(&qdir);
        self.sweep_orphaned_tmp(path);
        let dest = qdir.join(
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "entry".into()),
        );
        if fs::rename(path, &dest).is_ok() {
            CorruptEntry { path: dest, detail }
        } else {
            let _ = fs::remove_file(path);
            CorruptEntry {
                path: path.to_path_buf(),
                detail,
            }
        }
    }

    /// Removes `.tmp-<stem>-<pid>` leftovers for the entry at `path`
    /// (stem = file name without the `.bin` extension). Best-effort.
    fn sweep_orphaned_tmp(&self, path: &Path) {
        let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
            return;
        };
        let prefix = format!(".tmp-{stem}-");
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// The heartbeat age of a claim file (its modification time), or `None`
/// when the file vanished or the clock is skewed into the future.
fn claim_age(path: &Path) -> Option<Duration> {
    let mtime = fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// An exclusive cross-process claim on one cache entry, released (and
/// its claim file removed, best-effort) on drop. See
/// [`DiskCache::claim`].
#[derive(Debug)]
pub struct ClaimGuard {
    file: File,
    path: PathBuf,
}

impl ClaimGuard {
    /// The claim file path (heartbeats can be refreshed by path from a
    /// dedicated thread — the lock is advisory, so a plain write is
    /// safe; see [`DiskCache::try_claim_leased`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Refreshes the holder's heartbeat: writes a few bytes through the
    /// held file, bumping the claim file's modification time. A holder
    /// that stops heartbeating for longer than the lease is treated as
    /// dead by [`DiskCache::try_claim_leased`]. Best-effort — a failed
    /// heartbeat only risks a benign steal.
    pub fn heartbeat(&self) {
        let _ = (&self.file).write_all(b"hb");
        let _ = (&self.file).flush();
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        let _ = File::unlock(&self.file);
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::BlockId;

    fn sample_profile() -> Profile {
        let mut p = Profile::new();
        p.dynamic_insts = 42_000;
        for i in 0..10u32 {
            for j in 0..20u64 {
                p.record(BlockId(i), j % 3 == 0, j % 2 == 0);
            }
        }
        p
    }

    fn temp_cache(tag: &str) -> DiskCache {
        let dir =
            std::env::temp_dir().join(format!("vanguard-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskCache::new(dir)
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = temp_cache("roundtrip");
        let p = sample_profile();
        cache.store(7, &p).unwrap();
        let back = cache.load(7).unwrap().expect("entry present");
        assert_eq!(back.dynamic_insts, p.dynamic_insts);
        assert_eq!(back.len(), p.len());
        assert!(cache.load(8).unwrap().is_none(), "distinct key misses");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncation_is_detected_and_quarantined() {
        let cache = temp_cache("truncate");
        cache.store(3, &sample_profile()).unwrap();
        let path = cache.entry_path(DiskCache::PROFILE_TAG, 3);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = cache.load(3).expect_err("truncated entry must not load");
        assert!(err.path.starts_with(cache.quarantine_dir()), "{err:?}");
        // Evicted: the next load is a clean miss, and re-storing works.
        assert!(cache.load(3).unwrap().is_none());
        cache.store(3, &sample_profile()).unwrap();
        assert!(cache.load(3).unwrap().is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bitflip_is_detected() {
        let cache = temp_cache("bitflip");
        cache.store(5, &sample_profile()).unwrap();
        let path = cache.entry_path(DiskCache::PROFILE_TAG, 5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = cache.load(5).expect_err("bit-flipped entry must not load");
        assert!(err.detail.contains("checksum"), "{err:?}");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn byte_entries_roundtrip_and_tags_namespace_keys() {
        let cache = temp_cache("bytes");
        cache
            .store_bytes("pair", 11, b"compiled pair payload")
            .unwrap();
        assert_eq!(
            cache.load_bytes("pair", 11).unwrap().as_deref(),
            Some(&b"compiled pair payload"[..])
        );
        // The same key under another tag is a clean miss — tags are
        // namespaces, so a profile and a pair can never alias.
        assert!(cache
            .load_bytes(DiskCache::PROFILE_TAG, 11)
            .unwrap()
            .is_none());
        assert!(cache.load(11).unwrap().is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn reject_quarantines_structurally_invalid_payloads() {
        let cache = temp_cache("reject");
        cache.store_bytes("pair", 13, b"not a valid pair").unwrap();
        // Envelope validates, so load_bytes hits...
        assert!(cache.load_bytes("pair", 13).unwrap().is_some());
        // ...but the caller's structural validation fails and rejects it.
        let err = cache.reject("pair", 13, "undecodable pair");
        assert!(err.path.starts_with(cache.quarantine_dir()), "{err:?}");
        assert!(cache.load_bytes("pair", 13).unwrap().is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn reject_sweeps_orphaned_tmp_files() {
        let cache = temp_cache("tmp-orphans");
        cache.store_bytes("pair", 21, b"payload").unwrap();
        // A writer that died mid-store leaves its private temp file.
        let orphan = cache.dir().join(format!(".tmp-pair-{:016x}-99999", 21u64));
        let unrelated = cache.dir().join(format!(".tmp-pair-{:016x}-99999", 22u64));
        fs::write(&orphan, b"half-written").unwrap();
        fs::write(&unrelated, b"someone else's in-flight write").unwrap();
        cache.reject("pair", 21, "structurally invalid");
        assert!(!orphan.exists(), "orphaned .tmp swept on reject");
        assert!(
            unrelated.exists(),
            "other keys' in-flight temp files are left alone"
        );
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn content_addressed_entries_roundtrip_and_self_verify() {
        let cache = temp_cache("content");
        let key = cache.store_content("image", b"some program text").unwrap();
        assert_eq!(key, fnv1a(b"some program text"));
        assert_eq!(
            cache.load_content("image", key).unwrap().as_deref(),
            Some(&b"some program text"[..])
        );
        // Storing the same content again is a no-op on the same key.
        assert_eq!(
            cache.store_content("image", b"some program text").unwrap(),
            key
        );
        // An entry whose payload no longer matches its address is
        // quarantined even though the envelope checksum validates.
        cache
            .store_bytes("image", 0x1234, b"address mismatch")
            .unwrap();
        let err = cache.load_content("image", 0x1234).unwrap_err();
        assert!(err.detail.contains("content address"), "{err:?}");
        assert!(cache.load_content("image", 0x1234).unwrap().is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn claim_admits_one_producer_and_releases_waiters() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = temp_cache("claims");
        let produced = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    if cache.load_bytes("pair", 77).unwrap().is_some() {
                        break;
                    }
                    if let Some(_guard) = cache.claim("pair", 77).unwrap() {
                        if cache.load_bytes("pair", 77).unwrap().is_none() {
                            produced.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            cache.store_bytes("pair", 77, b"artifact").unwrap();
                        }
                        break;
                    }
                    // claim() returned after the holder released: re-load.
                });
            }
        });
        assert_eq!(
            produced.load(Ordering::Relaxed),
            1,
            "exactly one producer computed the artifact"
        );
        assert_eq!(
            cache.load_bytes("pair", 77).unwrap().as_deref(),
            Some(&b"artifact"[..])
        );
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn budget_evicts_oldest_unclaimed_entries() {
        let cache = temp_cache("budget");
        // No budget: nothing is ever evicted.
        cache.store_bytes("pair", 1, &[0u8; 100]).unwrap();
        assert_eq!(cache.enforce_budget().unwrap(), 0);

        // Entries are ~120 bytes each (20-byte envelope + payload).
        let cache = DiskCache::with_budget(cache.dir(), Some(300));
        cache.store_bytes("pair", 2, &[0u8; 100]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store_bytes("pair", 3, &[0u8; 100]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // This store pushes past 300 bytes; the oldest entry goes.
        cache.store_bytes("pair", 4, &[0u8; 100]).unwrap();
        assert!(cache.evictions() >= 1, "evictions = {}", cache.evictions());
        assert!(
            cache.load_bytes("pair", 1).unwrap().is_none(),
            "oldest entry evicted first"
        );
        assert!(
            cache.load_bytes("pair", 4).unwrap().is_some(),
            "newest entry survives"
        );
        let total: u64 = fs::read_dir(cache.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= 300, "cache stays under budget, got {total}");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn budget_skips_claimed_entries() {
        let dir = temp_cache("budget-claimed").dir().to_path_buf();
        let cache = DiskCache::with_budget(&dir, Some(10));
        // Claim first: the store's own budget pass must skip the entry.
        let _guard = cache.try_claim("pair", 7).unwrap().expect("claim won");
        cache.store_bytes("pair", 7, &[0u8; 100]).unwrap();
        cache.enforce_budget().unwrap();
        assert!(
            cache.load_bytes("pair", 7).unwrap().is_some(),
            "claimed entry survives eviction pressure"
        );
        drop(_guard);
        cache.enforce_budget().unwrap();
        assert!(
            cache.load_bytes("pair", 7).unwrap().is_none(),
            "released entry is evicted"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leased_claims_report_held_then_expired() {
        let cache = temp_cache("lease");
        let long = Duration::from_secs(3600);
        let short = Duration::from_millis(30);
        let won = cache.try_claim_leased("job", 5, long).unwrap();
        let ClaimAttempt::Won(guard) = won else {
            panic!("uncontended claim is won: {won:?}");
        };
        // Contended + fresh heartbeat: held.
        assert!(matches!(
            cache.try_claim_leased("job", 5, long).unwrap(),
            ClaimAttempt::Held
        ));
        // Contended + stale heartbeat: expired (steal).
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(
            cache.try_claim_leased("job", 5, short).unwrap(),
            ClaimAttempt::Expired
        ));
        // A heartbeat refresh makes it held again.
        guard.heartbeat();
        assert!(matches!(
            cache.try_claim_leased("job", 5, short).unwrap(),
            ClaimAttempt::Held
        ));
        // Released: the next attempt wins.
        drop(guard);
        assert!(matches!(
            cache.try_claim_leased("job", 5, short).unwrap(),
            ClaimAttempt::Won(_)
        ));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_claims_are_swept_to_quarantine() {
        let cache = temp_cache("stale-claims");
        fs::create_dir_all(cache.dir()).unwrap();
        // An orphaned claim file (holder SIGKILLed: no lock on it).
        let orphan = cache.dir().join(format!("claim-job-{:016x}.lock", 9u64));
        fs::write(&orphan, b"").unwrap();
        // A live claim must survive the sweep.
        let _held = cache.try_claim("job", 10).unwrap().expect("claim won");
        std::thread::sleep(Duration::from_millis(30));
        let swept = cache.sweep_stale_claims(Duration::from_millis(10)).unwrap();
        assert_eq!(swept, 1, "only the orphan is swept");
        assert!(!orphan.exists());
        assert!(
            cache
                .quarantine_dir()
                .join(orphan.file_name().unwrap())
                .exists(),
            "swept claim preserved in quarantine"
        );
        assert!(
            cache
                .dir()
                .join(format!("claim-job-{:016x}.lock", 10u64))
                .exists(),
            "live claim untouched"
        );
        // A fresh orphan (within its lease) is also left alone.
        let fresh = cache.dir().join(format!("claim-job-{:016x}.lock", 11u64));
        fs::write(&fresh, b"").unwrap();
        let swept = cache.sweep_stale_claims(Duration::from_secs(3600)).unwrap();
        assert_eq!(swept, 0);
        assert!(fresh.exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bad_magic_is_detected() {
        let cache = temp_cache("magic");
        cache.store(9, &sample_profile()).unwrap();
        let path = cache.entry_path(DiskCache::PROFILE_TAG, 9);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(9).is_err());
        let _ = fs::remove_dir_all(cache.dir());
    }
}

//! Equivalence verification for transformed programs.
//!
//! The Decomposed Branch Transformation makes the *predicted* path
//! architecturally executed, so a correct transformation must reach the
//! same observable state as the original under **every** prediction
//! sequence. This module packages the adversarial-oracle check the test
//! suite uses as a public API, so downstream users applying
//! [`crate::decompose_branches`] to their own programs can validate the
//! result against their own inputs.

use std::fmt;
use vanguard_isa::{
    ExecError, InterpConfig, Interpreter, Memory, Program, Reg, StopReason, TakenOracle,
};

/// What state to compare after the two programs run.
#[derive(Clone, Debug)]
pub struct Observables {
    /// Registers that must match (live-outs; omit dead temporaries).
    pub regs: Vec<Reg>,
    /// Memory words that must match: half-open byte ranges.
    pub memory_ranges: Vec<(u64, u64)>,
}

impl Observables {
    /// Observables covering a memory range only.
    pub fn memory(start: u64, end: u64) -> Self {
        Observables {
            regs: Vec::new(),
            memory_ranges: vec![(start, end)],
        }
    }
}

/// A detected divergence between the original and transformed programs.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    /// A register differs.
    Register {
        /// The oracle that exposed it.
        oracle: String,
        /// The diverging register.
        reg: Reg,
        /// Original program's value.
        original: u64,
        /// Transformed program's value.
        transformed: u64,
    },
    /// A memory word differs.
    Memory {
        /// The oracle that exposed it.
        oracle: String,
        /// Word-aligned address.
        addr: u64,
        /// Original program's value (None = unmapped).
        original: Option<u64>,
        /// Transformed program's value.
        transformed: Option<u64>,
    },
    /// One of the runs faulted or failed to halt.
    Execution {
        /// The oracle that exposed it.
        oracle: String,
        /// Description.
        message: String,
    },
}

/// Observable snapshot: register values + (addr, word) pairs.
type Snapshot = (Vec<u64>, Vec<(u64, Option<u64>)>);

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Register {
                oracle,
                reg,
                original,
                transformed,
            } => write!(
                f,
                "[{oracle}] {reg}: original {original:#x} vs transformed {transformed:#x}"
            ),
            Divergence::Memory {
                oracle,
                addr,
                original,
                transformed,
            } => write!(
                f,
                "[{oracle}] mem {addr:#x}: original {original:?} vs transformed {transformed:?}"
            ),
            Divergence::Execution { oracle, message } => write!(f, "[{oracle}] {message}"),
        }
    }
}

/// Runs `original` once (reference) and `transformed` under a battery of
/// adversarial oracles (always-taken, always-not-taken, alternating, and
/// `random_oracles` seeded pseudo-random ones), comparing the observables
/// after each run.
///
/// Returns all divergences found (empty = equivalent on this input).
///
/// # Errors
///
/// Returns the [`ExecError`] if the *original* program faults — a
/// reference run that faults means the input is bad, not the
/// transformation.
pub fn verify_equivalence(
    original: &Program,
    transformed: &Program,
    memory: &Memory,
    init_regs: &[(Reg, u64)],
    observables: &Observables,
    random_oracles: u32,
    max_steps: u64,
) -> Result<Vec<Divergence>, ExecError> {
    let run = |p: &Program, oracle: &mut TakenOracle| -> Result<Snapshot, String> {
        let mut interp =
            Interpreter::new(p, memory.clone()).with_config(InterpConfig { max_steps });
        for &(r, v) in init_regs {
            interp.set_reg(r, v);
        }
        let out = interp.run(oracle).map_err(|e| e.to_string())?;
        if out.stop != StopReason::Halted {
            return Err(format!("did not halt within {max_steps} steps"));
        }
        let regs = observables.regs.iter().map(|&r| interp.reg(r)).collect();
        let mut words = Vec::new();
        for &(start, end) in &observables.memory_ranges {
            let mut a = start & !7;
            while a < end {
                words.push((a, interp.memory().read(a)));
                a += 8;
            }
        }
        Ok((regs, words))
    };

    // Reference: the original program (its oracle cannot change the
    // observable result). A fault here is an input problem, surfaced as
    // the typed error.
    {
        let mut interp =
            Interpreter::new(original, memory.clone()).with_config(InterpConfig { max_steps });
        for &(r, v) in init_regs {
            interp.set_reg(r, v);
        }
        interp.run(&mut TakenOracle::AlwaysTaken)?;
    }
    let reference = run(original, &mut TakenOracle::AlwaysTaken)
        .expect("reference re-run matches the probe run");

    let mut oracles: Vec<(String, TakenOracle)> = vec![
        ("always-taken".into(), TakenOracle::AlwaysTaken),
        ("always-not-taken".into(), TakenOracle::AlwaysNotTaken),
        ("alternating".into(), TakenOracle::Alternate { next: true }),
    ];
    for i in 0..random_oracles {
        oracles.push((
            format!("random-{i}"),
            TakenOracle::random(0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(i) + 1)),
        ));
    }

    let mut divergences = Vec::new();
    for (name, mut oracle) in oracles {
        match run(transformed, &mut oracle) {
            Err(message) => divergences.push(Divergence::Execution {
                oracle: name,
                message,
            }),
            Ok((regs, words)) => {
                for (i, &r) in observables.regs.iter().enumerate() {
                    if regs[i] != reference.0[i] {
                        divergences.push(Divergence::Register {
                            oracle: name.clone(),
                            reg: r,
                            original: reference.0[i],
                            transformed: regs[i],
                        });
                    }
                }
                for (j, &(addr, got)) in words.iter().enumerate() {
                    if got != reference.1[j].1 {
                        divergences.push(Divergence::Memory {
                            oracle: name.clone(),
                            addr,
                            original: reference.1[j].1,
                            transformed: got,
                        });
                    }
                }
            }
        }
    }
    Ok(divergences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{decompose_branches, TransformOptions};
    use crate::SelectOptions;
    use vanguard_ir::Profile;
    use vanguard_isa::parse_program;

    const KERNEL: &str = r"
.entry bb0
bb0 <entry>:
    mov r1, #100
    mov r3, #65536
    ; fallthrough -> bb1
bb1 <head>:
    ld r4, [r3+0]
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    add r6, r6, #1
    jmp bb4
bb3 <taken>:
    add r7, r7, #3
    ; fallthrough -> bb4
bb4 <latch>:
    st [r3+32768], r6
    st [r3+32776], r7
    add r3, r3, #8
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    halt
";

    fn setup() -> (vanguard_isa::Program, vanguard_isa::Program, Memory) {
        let p = parse_program(KERNEL).unwrap();
        let mut profile = Profile::new();
        for i in 0..200 {
            profile.record(vanguard_isa::BlockId(1), i % 3 != 0, i % 10 != 0);
        }
        let mut t = p.clone();
        decompose_branches(
            &mut t,
            &profile,
            &TransformOptions {
                select: SelectOptions {
                    min_executions: 1,
                    ..SelectOptions::default()
                },
                ..TransformOptions::default()
            },
        );
        let mut mem = Memory::new();
        let conds: Vec<u64> = (0..100).map(|i| u64::from(i % 3 != 0)).collect();
        mem.load_words(0x10000, &conds);
        mem.map_region(0x10000 + 32768, 2048);
        (p, t, mem)
    }

    #[test]
    fn correct_transformation_verifies_clean() {
        let (p, t, mem) = setup();
        let obs = Observables {
            regs: vec![Reg(6), Reg(7)],
            memory_ranges: vec![(0x10000 + 32768, 0x10000 + 32768 + 1024)],
        };
        let div = verify_equivalence(&p, &t, &mem, &[], &obs, 3, 1_000_000).unwrap();
        assert!(div.is_empty(), "{div:?}");
    }

    #[test]
    fn a_broken_transformation_is_caught() {
        let (p, mut t, mem) = setup();
        // Sabotage: flip a resolve condition (classic off-by-one in the
        // negation logic) — the adversarial oracles must expose it.
        let mut sabotaged = false;
        for i in 0..t.num_blocks() {
            let b = t.block_mut(vanguard_isa::BlockId(i as u32));
            for inst in b.insts_mut() {
                if let vanguard_isa::Inst::Resolve { cond, .. } = inst {
                    *cond = cond.negate();
                    sabotaged = true;
                    break;
                }
            }
            if sabotaged {
                break;
            }
        }
        assert!(sabotaged, "no resolve found to sabotage");
        let obs = Observables {
            regs: vec![Reg(6), Reg(7)],
            memory_ranges: vec![],
        };
        let div = verify_equivalence(&p, &t, &mem, &[], &obs, 2, 1_000_000).unwrap();
        assert!(!div.is_empty(), "sabotage must be detected");
    }

    #[test]
    fn non_halting_transformed_program_is_reported() {
        let (p, _, mem) = setup();
        // "Transformed" program that spins forever.
        let spin = parse_program("bb0 <spin>:\n    jmp bb0\n").unwrap();
        let obs = Observables::memory(0x10000, 0x10010);
        let div = verify_equivalence(&p, &spin, &mem, &[], &obs, 0, 10_000).unwrap();
        assert!(div
            .iter()
            .all(|d| matches!(d, Divergence::Execution { .. })));
        assert_eq!(div.len(), 3); // one per deterministic oracle
    }

    #[test]
    fn faulting_reference_is_an_input_error() {
        let bad = parse_program("bb0 <e>:\n    ld r1, [r0+99999]\n    halt\n").unwrap();
        let obs = Observables::memory(0, 8);
        let r = verify_equivalence(&bad, &bad, &Memory::new(), &[], &obs, 0, 1000);
        assert!(r.is_err());
    }

    #[test]
    fn divergence_display_is_informative() {
        let d = Divergence::Register {
            oracle: "random-1".into(),
            reg: Reg(6),
            original: 10,
            transformed: 11,
        };
        let s = d.to_string();
        assert!(s.contains("random-1") && s.contains("r6"));
    }
}

//! The Decomposed Branch Transformation (§3, Figures 5 and 6).

use crate::report::{SiteOutcome, TransformReport};
use crate::select::{select_candidates, SelectOptions};
use crate::slice::condition_slice;
use vanguard_ir::{BranchDirection, Cfg, Liveness, Profile, RegSet};
use vanguard_isa::{BasicBlock, BlockId, Inst, Program};

/// Parameters of [`decompose_branches`] — and, since the pass framework,
/// of every [`crate::passes::TransformPass`]: `kind` selects the pass and
/// the remaining knobs are read by whichever passes their contract names.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransformOptions {
    /// Which transformation pass compiles the experimental variant.
    pub kind: crate::passes::TransformKind,
    /// Candidate-selection heuristic (§5: predictability − bias ≥ 5%).
    pub select: SelectOptions,
    /// Maximum instructions hoisted into each resolution block.
    pub max_hoist: usize,
    /// Convert hoisted loads to the non-faulting `ld.s` form and hoist
    /// them (§2.2 mechanism 1). With this off, only non-load work hoists.
    pub hoist_loads: bool,
    /// Use free architectural registers as *shadow temporaries* (§2.2
    /// mechanism 3 / §3): instructions that would clobber a live-in of the
    /// alternate (correction) path are hoisted into temporaries, with the
    /// move back to the architected register "hidden in the shadow of the
    /// resolution instruction" — executed only on the correctly-predicted
    /// path. Off (the default), such instructions simply stay below the
    /// resolve; measurements show temps pay off only when the clobbering
    /// instructions are long-latency (the commit moves are not free), so
    /// the aggressive mode is opt-in.
    pub shadow_temps: bool,
    /// Maximum instructions per hammock side that the meld/stacked
    /// passes will if-convert (Li et al. meld short diamonds only).
    pub meld_max_side: usize,
    /// Steady-state iteration replay in the simulator (host-side
    /// throughput only: replay is bit-identical on all committed state
    /// and statistics, so it is *not* part of the transform identity —
    /// [`crate::engine::TransformKey`] ignores it).
    pub replay: ReplayPolicy,
}

/// Whether simulations memoize converged loop iterations
/// (see `vanguard_sim`'s replay layer). Defaults to [`On`](Self::On):
/// replay never changes simulation results, only host wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplayPolicy {
    /// Memoize and replay steady-state iterations (default).
    #[default]
    On,
    /// Simulate every cycle in full.
    Off,
}

impl ReplayPolicy {
    /// `true` when replay is enabled.
    pub fn enabled(self) -> bool {
        matches!(self, ReplayPolicy::On)
    }
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            kind: crate::passes::TransformKind::Vanguard,
            select: SelectOptions::default(),
            max_hoist: 12,
            hoist_loads: true,
            shadow_temps: false,
            meld_max_side: 4,
            replay: ReplayPolicy::default(),
        }
    }
}

/// Applies the Decomposed Branch Transformation to every qualifying site
/// of `program`:
///
/// 1. The branch `A → {T, F}` is replaced by a `predict` ending `A`
///    (Figure 5b).
/// 2. Two *resolution blocks* are created, one per predicted direction,
///    each containing the pushed-down condition slice, the speculatively
///    hoisted prefix of its path's successor (loads as `ld.s`; stores
///    sink), and a `resolve` that is taken only on misprediction
///    (Figure 5c–d).
/// 3. The original successors remain intact as the correction targets
///    (compensation code) and for any other predecessors.
/// 4. Slice instructions left dead in `A` are removed.
///
/// The transformation is semantics-preserving under *any* prediction
/// sequence; integration tests verify final state against the
/// interpreter under adversarial oracles.
pub fn decompose_branches(
    program: &mut Program,
    profile: &Profile,
    options: &TransformOptions,
) -> TransformReport {
    let mut report = TransformReport {
        code_bytes_before: program.code_bytes(),
        ..TransformReport::default()
    };
    {
        let cfg = Cfg::build(program);
        report.forward_branches = cfg
            .branch_blocks(program)
            .filter(|&b| cfg.branch_direction(program, b) == Some(BranchDirection::Forward))
            .count();
    }
    let mut candidates = select_candidates(program, profile, &options.select);
    // Process later blocks first so a site that is also another site's
    // successor is already decomposed when its predecessor copies it.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.block));

    for cand in candidates {
        match transform_site(program, cand.block, options) {
            Ok(mut outcome) => {
                outcome.executed = cand.executed;
                report.converted.push(outcome);
            }
            Err(reason) => report.skipped.push((cand.block, reason)),
        }
    }
    report.code_bytes_after = program.code_bytes();
    debug_assert!(program.validate().is_ok());
    report
}

/// Instructions of a hoisted prefix plus what stayed behind.
struct HoistSplit {
    hoisted: Vec<Inst>,
    remainder: Vec<Inst>,
    /// `(architected, temporary)` commit moves for shadow-temp hoists,
    /// placed at the top of the suffix block (the resolve's shadow).
    commits: Vec<(vanguard_isa::Reg, vanguard_isa::Reg)>,
}

/// Scans the body of a successor block and splits it into a speculatively
/// hoistable prefix and the remainder (Figure 5c "upper portion").
///
/// Hoisting rules:
/// * loads become non-faulting `ld.s` (skipped entirely when
///   `hoist_loads` is off);
/// * stores never hoist (they sink below the resolve) and bar later loads
///   from hoisting past them;
/// * an instruction whose sources were written by a skipped instruction,
///   or whose destination is in `clobber` or touched by a skipped
///   instruction, stays behind.
fn hoist_prefix(
    body: &[Inst],
    clobber: &RegSet,
    max_hoist: usize,
    hoist_loads: bool,
    temps: &mut Vec<vanguard_isa::Reg>,
) -> HoistSplit {
    let mut hoisted = Vec::new();
    let mut remainder = Vec::new();
    let mut commits: Vec<(vanguard_isa::Reg, vanguard_isa::Reg)> = Vec::new();
    // Hoisted-code renames: architected → shadow temporary.
    let mut rename: std::collections::HashMap<vanguard_isa::Reg, vanguard_isa::Reg> =
        std::collections::HashMap::new();
    let mut skipped_writes = RegSet::new();
    let mut skipped_reads = RegSet::new();
    let mut store_barrier = false;

    for inst in body {
        let skip = |inst: &Inst,
                    remainder: &mut Vec<Inst>,
                    skipped_writes: &mut RegSet,
                    skipped_reads: &mut RegSet| {
            if let Some(d) = inst.dst() {
                skipped_writes.insert(d);
            }
            skipped_reads.extend(inst.srcs());
            remainder.push(*inst);
        };
        if hoisted.len() >= max_hoist {
            skip(
                inst,
                &mut remainder,
                &mut skipped_writes,
                &mut skipped_reads,
            );
            continue;
        }
        let hoistable_kind = match inst {
            Inst::Load { .. } => hoist_loads && !store_barrier,
            Inst::Alu { .. } | Inst::Cmp { .. } => true,
            Inst::Store { .. } => {
                store_barrier = true;
                false
            }
            _ => false,
        };
        if !hoistable_kind {
            skip(
                inst,
                &mut remainder,
                &mut skipped_writes,
                &mut skipped_reads,
            );
            continue;
        }
        let reads: RegSet = inst.srcs().into_iter().collect();
        let dst = inst.dst();
        // Intra-block ordering conflicts always block the hoist.
        let order_blocked = !reads.intersection(&skipped_writes).is_empty()
            || dst.is_some_and(|d| skipped_writes.contains(d) || skipped_reads.contains(d));
        if order_blocked {
            skip(
                inst,
                &mut remainder,
                &mut skipped_writes,
                &mut skipped_reads,
            );
            continue;
        }
        // A correction-path live-in clobber is fixable with a shadow temp
        // (§3): write the temp speculatively, commit in the resolve shadow.
        let mut inst = *inst;
        // Hoisted reads of previously-renamed registers use the temps.
        rewrite_reads(&mut inst, &rename);
        if let Some(d) = dst {
            if clobber.contains(d) && !rename.contains_key(&d) {
                let Some(t) = temps.pop() else {
                    // Out of temporaries: leave it below the resolve. Its
                    // reads may already be renamed to temps — still correct,
                    // because the temps hold exactly the hoisted values and
                    // are never reused.
                    skip(
                        &inst,
                        &mut remainder,
                        &mut skipped_writes,
                        &mut skipped_reads,
                    );
                    continue;
                };
                rename.insert(d, t);
                commits.push((d, t));
            }
            if let Some(&t) = rename.get(&d) {
                set_dst(&mut inst, t);
            }
        }
        if let Inst::Load { speculative, .. } = &mut inst {
            *speculative = true;
        }
        hoisted.push(inst);
    }
    HoistSplit {
        hoisted,
        remainder,
        commits,
    }
}

/// Rewrites an instruction's register reads through the rename map.
fn rewrite_reads(
    inst: &mut Inst,
    rename: &std::collections::HashMap<vanguard_isa::Reg, vanguard_isa::Reg>,
) {
    if rename.is_empty() {
        return;
    }
    let map = |r: &mut vanguard_isa::Reg| {
        if let Some(&t) = rename.get(r) {
            *r = t;
        }
    };
    match inst {
        Inst::Alu { a, b, .. } => {
            if let vanguard_isa::Operand::Reg(r) = a {
                map(r);
            }
            if let vanguard_isa::Operand::Reg(r) = b {
                map(r);
            }
        }
        Inst::Cmp { a, b, .. } => {
            map(a);
            if let vanguard_isa::Operand::Reg(r) = b {
                map(r);
            }
        }
        Inst::Fp { a, b, .. } => {
            map(a);
            map(b);
        }
        Inst::Load { base, .. } => map(base),
        Inst::Store { src, base, .. } => {
            map(src);
            map(base);
        }
        _ => {}
    }
}

/// Rewrites an instruction's destination register.
fn set_dst(inst: &mut Inst, t: vanguard_isa::Reg) {
    match inst {
        Inst::Alu { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Fp { dst, .. }
        | Inst::Load { dst, .. } => *dst = t,
        _ => {}
    }
}

fn transform_site(
    program: &mut Program,
    site: BlockId,
    options: &TransformOptions,
) -> Result<SiteOutcome, String> {
    let a_block = program.block(site);
    let Some(&Inst::Branch { cond, src, target }) = a_block.terminator() else {
        return Err("terminator is not a conditional branch".into());
    };
    let taken_succ = target;
    let Some(fall_succ) = a_block.fallthrough() else {
        return Err("branch without fall-through".into());
    };
    if taken_succ == fall_succ || taken_succ == site || fall_succ == site {
        return Err("degenerate successor structure".into());
    }

    let slice = condition_slice(a_block).map_err(|e| format!("slice: {e:?}"))?;
    let slice_insts: Vec<Inst> = slice.indices.iter().map(|&i| a_block.insts()[i]).collect();

    let cfg = Cfg::build(program);
    let liveness = Liveness::build(program, &cfg);

    // Registers a hoisted instruction must never write: anything the
    // alternate (correction) path may read, the condition register, and
    // everything the pushed-down slice touches.
    let clobber_base = {
        let mut s = slice.inputs.union(&slice.outputs);
        s.insert(src);
        s
    };
    let clobber_taken = clobber_base.union(liveness.live_in(fall_succ));
    let clobber_fall = clobber_base.union(liveness.live_in(taken_succ));

    let body_of = |b: &BasicBlock| -> Vec<Inst> {
        match b.terminator() {
            Some(t) if t.is_control() => b.insts()[..b.insts().len() - 1].to_vec(),
            _ => b.insts().to_vec(),
        }
    };
    let taken_block = program.block(taken_succ).clone();
    let fall_block = program.block(fall_succ).clone();
    // Shadow-temporary pool: registers unused anywhere in the program
    // (§2.2: "additional registers to hold speculative values").
    let mut temps: Vec<vanguard_isa::Reg> = if options.shadow_temps {
        let mut used = RegSet::new();
        for (_, b) in program.iter() {
            for inst in b.insts() {
                if let Some(d) = inst.dst() {
                    used.insert(d);
                }
                used.extend(inst.srcs());
            }
        }
        RegSet::all().difference(&used).iter().collect()
    } else {
        Vec::new()
    };
    let taken_split = hoist_prefix(
        &body_of(&taken_block),
        &clobber_taken,
        options.max_hoist,
        options.hoist_loads,
        &mut temps,
    );
    let fall_split = hoist_prefix(
        &body_of(&fall_block),
        &clobber_fall,
        options.max_hoist,
        options.hoist_loads,
        &mut temps,
    );

    // Suffix blocks B' (Figure 5d): the successor minus its hoisted prefix.
    let make_suffix =
        |program: &mut Program, orig: &BasicBlock, split: &HoistSplit, label: &str| -> BlockId {
            let mut nb = BasicBlock::new(format!("{}.{label}", orig.name()));
            // Commit moves first: they sit in the resolve's shadow, executing
            // only on the correctly-predicted path (§3).
            for &(arch, temp) in &split.commits {
                nb.insts_mut()
                    .push(Inst::mov(arch, vanguard_isa::Operand::Reg(temp)));
            }
            nb.insts_mut().extend(split.remainder.iter().cloned());
            if let Some(t) = orig.terminator() {
                if t.is_control() {
                    nb.insts_mut().push(*t);
                }
            }
            nb.set_fallthrough(orig.fallthrough());
            program.add_block(nb)
        };
    let taken_suffix = make_suffix(program, &taken_block, &taken_split, "suffix");
    let fall_suffix = make_suffix(program, &fall_block, &fall_split, "suffix");

    // Resolution blocks A' (Figure 5b/c): pushed-down slice + hoisted
    // prefix + resolve. The resolve is taken only on misprediction and
    // targets the *original* alternate successor (the compensation path).
    let a_name = program.block(site).name().to_string();
    let mut res_taken = BasicBlock::new(format!("{a_name}.resolve_t"));
    res_taken.insts_mut().extend(slice_insts.iter().cloned());
    res_taken
        .insts_mut()
        .extend(taken_split.hoisted.iter().cloned());
    res_taken.insts_mut().push(Inst::Resolve {
        cond: cond.negate(), // mispredict iff the branch was NOT taken
        src,
        target: fall_succ,
    });
    res_taken.set_fallthrough(Some(taken_suffix));
    let res_taken_id = program.add_block(res_taken);

    let mut res_fall = BasicBlock::new(format!("{a_name}.resolve_nt"));
    res_fall.insts_mut().extend(slice_insts.iter().cloned());
    res_fall
        .insts_mut()
        .extend(fall_split.hoisted.iter().cloned());
    res_fall.insts_mut().push(Inst::Resolve {
        cond, // mispredict iff the branch WAS taken
        src,
        target: taken_succ,
    });
    res_fall.set_fallthrough(Some(fall_suffix));
    let res_fall_id = program.add_block(res_fall);

    // Rewrite A: drop the branch, DCE the now-dead slice, append predict.
    let a = program.block_mut(site);
    a.insts_mut().pop();
    let removed = dce_slice(a, &slice.indices);
    a.insts_mut().push(Inst::Predict {
        target: res_taken_id,
    });
    a.set_fallthrough(Some(res_fall_id));

    Ok(SiteOutcome {
        block: site,
        hoisted_taken: taken_split.hoisted.len(),
        hoisted_fallthrough: fall_split.hoisted.len(),
        slice_insts: slice_insts.len(),
        removed_from_block: removed,
        commit_moves: taken_split.commits.len() + fall_split.commits.len(),
        executed: 0,
    })
}

/// Removes slice instructions from `a` whose destinations are not read by
/// any remaining (non-slice) instruction of `a`. Returns how many were
/// removed. (The resolution blocks recompute them for every consumer
/// beyond `a`.)
fn dce_slice(a: &mut BasicBlock, slice_indices: &[usize]) -> usize {
    let insts = a.insts();
    let in_slice: Vec<bool> = {
        let mut v = vec![false; insts.len()];
        for &i in slice_indices {
            v[i] = true;
        }
        v
    };
    let mut removable = vec![false; insts.len()];
    // Iterate in reverse: a slice inst is removable if its dst is not read
    // by any later instruction that will remain.
    for &i in slice_indices.iter().rev() {
        let Some(d) = insts[i].dst() else { continue };
        let mut read_later = false;
        for (j, inst) in insts.iter().enumerate().skip(i + 1) {
            if in_slice[j] && removable[j] {
                continue; // that reader is itself being removed
            }
            if inst.srcs().contains(&d) {
                read_later = true;
                break;
            }
            if inst.dst() == Some(d) {
                break; // redefined before any read
            }
        }
        removable[i] = !read_later;
    }
    let removed = removable.iter().filter(|&&r| r).count();
    let kept: Vec<Inst> = insts
        .iter()
        .enumerate()
        .filter(|&(i, _)| !removable[i])
        .map(|(_, inst)| *inst)
        .collect();
    *a.insts_mut() = kept;
    removed
}

/// Checks whether a reg appears in sources (helper for tests).
#[cfg(test)]
fn reads(inst: &Inst, r: vanguard_isa::Reg) -> bool {
    inst.srcs().contains(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{
        AluOp, CmpKind, CondKind, Interpreter, Memory, Operand, ProgramBuilder, Reg, StopReason,
        TakenOracle,
    };

    /// The Figure 6 shape: a loop over a condition array with loads on
    /// both sides of a predictable-but-unbiased forward branch.
    ///
    /// head:  r4 = load cond[i]
    ///        r5 = (r4 != 0)
    ///        br.nz r5 -> bb_t
    /// bb_f:  r6 = load data_f[i]; r7 = r6+1; store out_f[i] = r7 -> latch
    /// bb_t:  r8 = load data_t[i]; r9 = r8+2; store out_t[i] = r9 -> latch
    /// latch: i++, loop
    fn figure6_loop(n: i64) -> (Program, BlockId) {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let head = b.block("head");
        let bb_f = b.block("bb_f");
        let bb_t = b.block("bb_t");
        let latch = b.block("latch");
        let exit = b.block("exit");

        b.push(entry, Inst::mov(Reg(1), Operand::Imm(n)));
        b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000))); // cond base
        b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000))); // data base
        b.push(entry, Inst::mov(Reg(11), Operand::Imm(0x30000))); // out base
        b.fallthrough(entry, head);

        b.push(head, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            head,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            head,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(5),
                target: bb_t,
            },
        );
        b.fallthrough(head, bb_f);

        b.push(bb_f, Inst::load(Reg(6), Reg(10), 0));
        b.push(
            bb_f,
            Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(6)), Operand::Imm(1)),
        );
        b.push(bb_f, Inst::store(Reg(7), Reg(11), 0));
        b.push(bb_f, Inst::Jump { target: latch });

        b.push(bb_t, Inst::load(Reg(8), Reg(10), 8));
        b.push(
            bb_t,
            Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(8)), Operand::Imm(2)),
        );
        b.push(bb_t, Inst::store(Reg(9), Reg(11), 8));
        b.push(bb_t, Inst::Jump { target: latch });

        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(10), Operand::Reg(Reg(10)), Operand::Imm(16)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(11), Operand::Reg(Reg(11)), Operand::Imm(16)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: head,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        (b.finish().unwrap(), head)
    }

    fn memory_for(n: usize, pattern: impl Fn(usize) -> bool) -> Memory {
        let mut mem = Memory::new();
        let cond: Vec<u64> = (0..n).map(|i| u64::from(pattern(i))).collect();
        mem.load_words(0x10000, &cond);
        let data: Vec<u64> = (0..2 * n).map(|i| i as u64 * 3 + 1).collect();
        mem.load_words(0x20000, &data);
        mem.map_region(0x30000, (2 * n) as u64 * 8);
        mem
    }

    fn profile_of(site: BlockId, taken: u64, total: u64, correct: u64) -> Profile {
        let mut p = Profile::new();
        for i in 0..total {
            p.record(site, i < taken, i < correct);
        }
        p.dynamic_insts = total * 10;
        p
    }

    fn transform_fig6(n: i64) -> (Program, Program, TransformReport) {
        let (p0, head) = figure6_loop(n);
        let mut p1 = p0.clone();
        // 60/40 bias, 95% predictability: a textbook candidate.
        let profile = profile_of(head, 60 * n as u64 / 100, n as u64, 95 * n as u64 / 100);
        let report = decompose_branches(&mut p1, &profile, &TransformOptions::default());
        (p0, p1, report)
    }

    #[test]
    fn figure6_site_is_converted() {
        let (_, p1, report) = transform_fig6(100);
        assert_eq!(report.converted.len(), 1, "skipped: {:?}", report.skipped);
        let site = &report.converted[0];
        assert_eq!(site.slice_insts, 2, "ld + cmp pushed down");
        assert!(
            site.hoisted_taken >= 2,
            "load+add hoisted, got {}",
            site.hoisted_taken
        );
        assert!(site.hoisted_fallthrough >= 2);
        assert_eq!(site.removed_from_block, 2, "slice DCE'd from head");
        // A predict and two resolves now exist.
        let summary = p1.static_summary();
        assert_eq!(summary.mnemonics.get("predict"), Some(&1));
        assert_eq!(
            summary.mnemonics.get("resolve.nz").copied().unwrap_or(0)
                + summary.mnemonics.get("resolve.z").copied().unwrap_or(0),
            2
        );
        // Hoisted loads became speculative.
        assert!(summary.mnemonics.get("ld.s").copied().unwrap_or(0) >= 2);
    }

    #[test]
    fn transformed_program_is_valid_and_bigger() {
        let (p0, p1, report) = transform_fig6(100);
        assert!(p1.validate().is_ok());
        assert!(report.code_bytes_after > report.code_bytes_before);
        assert!(p1.num_blocks() > p0.num_blocks());
        assert!(report.pbc() > 0.0);
        assert!(report.piscs() > 0.0);
    }

    #[test]
    fn semantics_preserved_under_adversarial_oracles() {
        let n = 64usize;
        let (p0, p1, _) = transform_fig6(n as i64);
        for (name, pattern) in [
            (
                "all-taken",
                Box::new(|_: usize| true) as Box<dyn Fn(usize) -> bool>,
            ),
            ("all-not", Box::new(|_| false)),
            ("alternating", Box::new(|i| i % 2 == 0)),
            ("pattern", Box::new(|i| i % 5 != 3)),
        ] {
            let run = |p: &Program, oracle: &mut TakenOracle| {
                let mut i = Interpreter::new(p, memory_for(n, &pattern));
                let out = i.run(oracle).unwrap();
                assert_eq!(out.stop, StopReason::Halted);
                let mut mem_out = Vec::new();
                for k in 0..2 * n as u64 {
                    mem_out.push(i.memory().read(0x30000 + k * 8));
                }
                (*i.regs(), mem_out)
            };
            let reference = run(&p0, &mut TakenOracle::AlwaysTaken);
            for mut oracle in [
                TakenOracle::AlwaysTaken,
                TakenOracle::AlwaysNotTaken,
                TakenOracle::random(11),
                TakenOracle::Alternate { next: false },
            ] {
                let got = run(&p1, &mut oracle);
                assert_eq!(got.1, reference.1, "{name} / {oracle:?}: memory differs");
                // Live-out registers must match. Dead per-iteration
                // temporaries (r4–r9) may legitimately differ when a
                // speculative hoist executed on a corrected path.
                for r in [1usize, 2, 3, 10, 11] {
                    assert_eq!(got.0[r], reference.0[r], "{name} / {oracle:?}: r{r}");
                }
            }
        }
    }

    #[test]
    fn resolve_fires_exactly_on_mispredictions() {
        let n = 200usize;
        let (_, p1, _) = transform_fig6(n as i64);
        // Alternating pattern with an always-taken oracle: the predict is
        // wrong exactly when the branch is not taken (half the time).
        let mut interp = Interpreter::new(&p1, memory_for(n, |i| i % 2 == 0));
        let out = interp.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.record.predicts, n as u64);
        assert_eq!(out.record.resolves, n as u64);
        assert_eq!(out.record.resolve_mispredicts, n as u64 / 2);
    }

    #[test]
    fn correction_paths_reexecute_the_full_successor() {
        // With an always-wrong oracle every iteration goes through
        // correction code; results must still be exact.
        let n = 50usize;
        let (p0, p1, _) = transform_fig6(n as i64);
        let pattern = |i: usize| i.is_multiple_of(3);
        let mut ref_i = Interpreter::new(&p0, memory_for(n, pattern));
        ref_i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        // Adversarial oracle: always predict the wrong way by construction
        // (predict the complement of the pattern via LastOutcome inversion
        // is fiddly; random is adversarial enough plus the exhaustive test
        // above covers always-taken/always-not).
        let mut i = Interpreter::new(&p1, memory_for(n, pattern));
        i.run(&mut TakenOracle::random(99)).unwrap();
        for k in 0..2 * n as u64 {
            assert_eq!(
                i.memory().read(0x30000 + k * 8),
                ref_i.memory().read(0x30000 + k * 8),
                "word {k}"
            );
        }
    }

    #[test]
    fn hoist_prefix_respects_clobbers_and_stores() {
        let body = vec![
            Inst::load(Reg(6), Reg(10), 0),
            Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(6)), Operand::Imm(1)),
            Inst::store(Reg(7), Reg(11), 0),
            Inst::load(Reg(8), Reg(10), 8), // after the store: barred
            Inst::alu(AluOp::Add, Reg(9), Operand::Imm(1), Operand::Imm(1)),
        ];
        let clobber: RegSet = [Reg(9)].into_iter().collect();
        let split = hoist_prefix(&body, &clobber, 16, true, &mut Vec::new());
        // r6 load and r7 add hoist; store stays; r8 load barred by the
        // store; r9 add blocked by the clobber set.
        assert_eq!(split.hoisted.len(), 2);
        assert!(matches!(
            split.hoisted[0],
            Inst::Load {
                speculative: true,
                ..
            }
        ));
        assert_eq!(split.remainder.len(), 3);
        assert!(reads(&split.hoisted[1], Reg(6)));
    }

    #[test]
    fn hoist_budget_is_respected() {
        let body = vec![
            Inst::load(Reg(6), Reg(10), 0),
            Inst::load(Reg(7), Reg(10), 8),
            Inst::load(Reg(8), Reg(10), 16),
        ];
        let split = hoist_prefix(&body, &RegSet::new(), 2, true, &mut Vec::new());
        assert_eq!(split.hoisted.len(), 2);
        assert_eq!(split.remainder.len(), 1);
    }

    #[test]
    fn hoist_loads_off_leaves_loads_behind() {
        let body = vec![
            Inst::load(Reg(6), Reg(10), 0),
            Inst::alu(AluOp::Add, Reg(9), Operand::Imm(1), Operand::Imm(1)),
        ];
        let split = hoist_prefix(&body, &RegSet::new(), 8, false, &mut Vec::new());
        assert_eq!(split.hoisted.len(), 1); // only the ALU op
        assert!(matches!(split.remainder[0], Inst::Load { .. }));
    }

    #[test]
    fn degenerate_sites_are_skipped_not_broken() {
        // Branch whose target equals its fall-through.
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let j = b.block("join");
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: j,
            },
        );
        b.fallthrough(e, j);
        b.push(j, Inst::Halt);
        b.set_entry(e);
        let mut p = b.finish().unwrap();
        let profile = profile_of(e, 60, 100, 95);
        let report = decompose_branches(&mut p, &profile, &TransformOptions::default());
        assert!(report.converted.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn shadow_temps_hoist_clobbering_instructions() {
        // r9 is live on the alternate path; without temps the write stays
        // behind, with temps it hoists into a temporary plus a commit move.
        let body = vec![
            Inst::load(Reg(6), Reg(10), 0),
            Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(6)), Operand::Imm(1)),
            Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(9)), Operand::Imm(2)),
        ];
        let clobber: RegSet = [Reg(9)].into_iter().collect();
        // Without temps: the r9 write and its dependant stay behind.
        let split = hoist_prefix(&body, &clobber, 16, true, &mut Vec::new());
        assert_eq!(split.hoisted.len(), 1);
        assert!(split.commits.is_empty());
        // With a temp pool: everything hoists; one commit move recorded.
        let mut temps = vec![Reg(60), Reg(61)];
        let split = hoist_prefix(&body, &clobber, 16, true, &mut temps);
        assert_eq!(split.hoisted.len(), 3, "hoisted {:?}", split.hoisted);
        assert_eq!(split.commits, vec![(Reg(9), Reg(61))]);
        // The hoisted writer and reader both use the temp.
        assert_eq!(split.hoisted[1].dst(), Some(Reg(61)));
        assert!(split.hoisted[2].srcs().contains(&Reg(61)));
    }

    #[test]
    fn shadow_temps_preserve_semantics_under_adversarial_oracles() {
        // A kernel where the taken path writes a register that is live on
        // the fall-through path — only convertible with shadow temps.
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let head = b.block("head");
        let bb_f = b.block("bb_f");
        let bb_t = b.block("bb_t");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.push(entry, Inst::mov(Reg(1), Operand::Imm(60)));
        b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.push(entry, Inst::mov(Reg(9), Operand::Imm(5))); // live-in both paths
        b.fallthrough(entry, head);
        b.push(head, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            head,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(5),
                a: Reg(4),
                b: Operand::Imm(0),
            },
        );
        b.push(
            head,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(5),
                target: bb_t,
            },
        );
        b.fallthrough(head, bb_f);
        // Fall path READS r9 (so r9 is live-in on the correction path of
        // the taken side).
        b.push(
            bb_f,
            Inst::alu(AluOp::Add, Reg(6), Operand::Reg(Reg(9)), Operand::Imm(1)),
        );
        b.push(bb_f, Inst::store(Reg(6), Reg(3), 0x20000));
        b.push(bb_f, Inst::Jump { target: latch });
        // Taken path WRITES r9 (clobber without temps).
        b.push(
            bb_t,
            Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(9)), Operand::Imm(7)),
        );
        b.push(bb_t, Inst::store(Reg(9), Reg(3), 0x30000));
        b.push(bb_t, Inst::Jump { target: latch });
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: head,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::store(Reg(9), Reg(3), 0x40000));
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        let p0 = b.finish().unwrap();

        let profile = profile_of(head, 50, 100, 95);
        let opts = TransformOptions {
            shadow_temps: true,
            ..TransformOptions::default()
        };
        let mut p1 = p0.clone();
        let report = decompose_branches(&mut p1, &profile, &opts);
        assert_eq!(report.converted.len(), 1);
        let site = &report.converted[0];
        assert!(site.commit_moves >= 1, "expected a commit move: {site:?}");
        assert!(site.hoisted_taken >= 1);

        let mem = || {
            let mut m = Memory::new();
            let conds: Vec<u64> = (0..60).map(|i| u64::from(i % 3 != 1)).collect();
            m.load_words(0x10000, &conds);
            m.map_region(0x30000, 0x20000);
            m
        };
        let run = |p: &Program, oracle: &mut TakenOracle| {
            let mut i = Interpreter::new(p, mem());
            i.run(oracle).unwrap();
            let snap: Vec<Option<u64>> =
                (0..256).map(|k| i.memory().read(0x30000 + k * 8)).collect();
            (i.reg(Reg(9)), snap)
        };
        let want = run(&p0, &mut TakenOracle::AlwaysTaken);
        for mut oracle in [
            TakenOracle::AlwaysTaken,
            TakenOracle::AlwaysNotTaken,
            TakenOracle::random(42),
        ] {
            assert_eq!(run(&p1, &mut oracle), want, "oracle {oracle:?}");
        }
    }

    #[test]
    fn without_shadow_temps_clobbering_hoists_are_refused() {
        let body = vec![Inst::alu(
            AluOp::Add,
            Reg(9),
            Operand::Reg(Reg(9)),
            Operand::Imm(7),
        )];
        let clobber: RegSet = [Reg(9)].into_iter().collect();
        let split = hoist_prefix(&body, &clobber, 16, true, &mut Vec::new());
        assert!(split.hoisted.is_empty());
        assert_eq!(split.remainder.len(), 1);
    }
}

//! Profile-guided candidate selection (§5 of the paper).

use vanguard_ir::{BranchDirection, Cfg, Profile};
use vanguard_isa::{BlockId, Inst, Program};

/// Selection heuristic parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectOptions {
    /// Required margin of predictability over bias. The paper's evaluation
    /// uses 0.05 ("we transform forward branches whose predictability
    /// exceeds bias by at least 5%; this heuristic provided the best
    /// overall performance").
    pub threshold: f64,
    /// Minimum profiled executions for statistical confidence.
    pub min_executions: u64,
    /// Transform forward branches only (backward/loop branches are left to
    /// loop transformations, footnote 1 of the paper).
    pub forward_only: bool,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            threshold: 0.05,
            min_executions: 64,
            forward_only: true,
        }
    }
}

/// A branch site selected for decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Block whose terminator is the branch.
    pub block: BlockId,
    /// Profiled bias.
    pub bias: f64,
    /// Profiled predictability.
    pub predictability: f64,
    /// Profiled executions.
    pub executed: u64,
}

/// Applies the paper's selection heuristic: profiled **forward**
/// conditional branches whose predictability exceeds bias by at least
/// `options.threshold`.
///
/// Returns candidates in block order.
pub fn select_candidates(
    program: &Program,
    profile: &Profile,
    options: &SelectOptions,
) -> Vec<Candidate> {
    let cfg = Cfg::build(program);
    let mut out = Vec::new();
    for (bid, block) in program.iter() {
        if !matches!(block.terminator(), Some(Inst::Branch { .. })) {
            continue;
        }
        if !cfg.is_reachable(bid) {
            continue;
        }
        if options.forward_only
            && cfg.branch_direction(program, bid) != Some(BranchDirection::Forward)
        {
            continue;
        }
        let Some(stats) = profile.site(bid) else {
            continue;
        };
        if stats.executed < options.min_executions {
            continue;
        }
        if !stats.exceeds_bias_by(options.threshold) {
            continue;
        }
        out.push(Candidate {
            block: bid,
            bias: stats.bias(),
            predictability: stats.predictability(),
            executed: stats.executed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{CmpKind, CondKind, Operand, ProgramBuilder, Reg};

    /// Forward branch in `fwd`, backward branch in `latch`.
    fn two_branch_program() -> (Program, BlockId, BlockId) {
        let mut b = ProgramBuilder::new();
        let fwd = b.block("fwd");
        let t = b.block("t");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.push(
            fwd,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(fwd, t); // degenerate but fine for selection tests
        b.push(t, Inst::Nop);
        b.fallthrough(t, latch);
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(3),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: fwd,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(fwd);
        let p = b.finish().unwrap();
        (p, fwd, latch)
    }

    fn profile_with(site: BlockId, taken: u64, total: u64, correct: u64) -> Profile {
        let mut p = Profile::new();
        for i in 0..total {
            p.record(site, i < taken, i < correct);
        }
        p
    }

    #[test]
    fn qualifying_forward_branch_is_selected() {
        let (p, fwd, _) = two_branch_program();
        // 60/40 bias, 90% predictability.
        let profile = profile_with(fwd, 60, 100, 90);
        let cands = select_candidates(&p, &profile, &SelectOptions::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].block, fwd);
        assert!((cands[0].bias - 0.6).abs() < 1e-9);
        assert!((cands[0].predictability - 0.9).abs() < 1e-9);
    }

    #[test]
    fn backward_branches_are_excluded() {
        let (p, _, latch) = two_branch_program();
        let profile = profile_with(latch, 60, 100, 95);
        let cands = select_candidates(&p, &profile, &SelectOptions::default());
        assert!(cands.is_empty(), "loop branch must not qualify");
        // …unless forward_only is disabled.
        let cands = select_candidates(
            &p,
            &profile,
            &SelectOptions {
                forward_only: false,
                ..SelectOptions::default()
            },
        );
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn highly_biased_branches_fail_the_margin() {
        let (p, fwd, _) = two_branch_program();
        // 97% bias, 99% predictability: margin 2% < 5% — superblock
        // territory, not ours.
        let profile = profile_with(fwd, 97, 100, 99);
        assert!(select_candidates(&p, &profile, &SelectOptions::default()).is_empty());
    }

    #[test]
    fn unpredictable_branches_fail_the_margin() {
        let (p, fwd, _) = two_branch_program();
        // 55% bias, 55% predictability: predication territory.
        let profile = profile_with(fwd, 55, 100, 55);
        assert!(select_candidates(&p, &profile, &SelectOptions::default()).is_empty());
    }

    #[test]
    fn cold_branches_are_excluded() {
        let (p, fwd, _) = two_branch_program();
        let profile = profile_with(fwd, 6, 10, 10);
        let opts = SelectOptions {
            min_executions: 64,
            ..SelectOptions::default()
        };
        assert!(select_candidates(&p, &profile, &opts).is_empty());
    }

    #[test]
    fn unprofiled_branches_are_excluded() {
        let (p, _, _) = two_branch_program();
        let profile = Profile::new();
        assert!(select_candidates(&p, &profile, &SelectOptions::default()).is_empty());
    }
}

//! Static invariant checker ("transform lint") for decomposed programs.
//!
//! [`decompose_branches`](crate::decompose_branches) must obey the paper's
//! §3 structural contract, and until now that contract was enforced only
//! dynamically (replaying kernels under adversarial oracles). This module
//! checks it *statically*, by walking the CFG of a compiled program:
//!
//! 1. **Pairing** — every `predict` has a downstream pair of resolution
//!    blocks (its taken target and its fall-through both terminate in a
//!    `resolve`), the two resolves test the same condition register with
//!    complementary conditions, and no path holds more than
//!    [`DBB_ENTRIES`] outstanding predictions (the Decomposed Branch
//!    Buffer pairs each resolve with its predict and has 16 entries).
//! 2. **Store sinking** — resolution blocks contain no store above their
//!    `resolve`: stores are irreversible and must sink below the
//!    resolution point (§3, "stores are not hoisted").
//! 3. **Non-faulting hoists** — every load speculatively hoisted above a
//!    `resolve` is the non-faulting `ld.s` form (§2.2 mechanism 1). The
//!    pushed-down condition slice is exempt: it re-executes work from
//!    *before* the original branch, whose faults are architectural.
//! 4. **Live-in protection** — no speculative (non-slice) instruction
//!    above a `resolve` writes a register that is live into the resolve's
//!    correction target; shadow temporaries exist precisely so that such
//!    values are written elsewhere and committed "in the shadow of the
//!    resolve" (§2.2 mechanism 3).
//! 5. **Correction coverage** — for each direction, the architectural
//!    register writes of the correctly-predicted path (resolution block
//!    projected through its commit moves, plus its suffix block) equal
//!    the writes of the correction block that repairs a misprediction of
//!    the *other* direction, so predicted and corrected executions
//!    converge to the same def-set.
//! 6. **Shadow dominance** — a suffix block that consumes a value
//!    computed speculatively in its resolution block (hoisted values and
//!    shadow-temp commit moves) must be dominated by that resolution
//!    block; otherwise some path observes the speculative state without
//!    having passed the resolve.
//!
//! Violations are reported as structured [`LintDiagnostic`]s carrying the
//! block and instruction location. Clean programs — untransformed
//! baselines and everything `decompose_branches` emits — produce none;
//! the fuzz harness and the mutation tests in `tests/lint_mutations.rs`
//! keep both directions honest.

use crate::passes::{pass_for, PassContract, TransformKind};
use std::fmt;
use vanguard_bpred::DBB_ENTRIES;
use vanguard_ir::{Cfg, DomTree, Liveness, RegSet};
use vanguard_isa::{BasicBlock, BlockId, CondKind, Inst, Program, Reg};

/// The invariant a [`LintDiagnostic`] reports a violation of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A `predict`'s taken target or fall-through does not terminate in a
    /// `resolve` (the predict has no downstream resolution pair).
    UnpairedPredict,
    /// A predict's two resolution blocks disagree on the condition
    /// register or do not test complementary conditions.
    MismatchedResolvePair,
    /// A `resolve` is reachable with no outstanding prediction to pair
    /// with (the DBB would underflow).
    UnmatchedResolve,
    /// Some path accumulates more than [`DBB_ENTRIES`] outstanding
    /// predictions before resolving them.
    DbbOverflow,
    /// A store appears above a `resolve` (stores must sink below the
    /// resolution point).
    StoreAboveResolve,
    /// A hoisted (non-slice) load above a `resolve` is not the
    /// non-faulting `ld.s` form.
    FaultingHoistedLoad,
    /// A speculative instruction above a `resolve` writes a register that
    /// is live into the correction target.
    ClobberedLiveIn,
    /// A correction block fails to write a register the corresponding
    /// predicted path writes (misprediction damage is not repaired).
    MissingCorrectionWrite,
    /// A correction block writes a register the corresponding predicted
    /// path does not (predicted and corrected executions diverge).
    ExtraCorrectionWrite,
    /// A suffix block consumes a speculative value from a resolution
    /// block that does not dominate it.
    ShadowCommitNotDominated,
    /// The melded program contains more stores than the original
    /// (melding must be side-effect-equivalent and may never
    /// speculatively execute a store).
    MeldStoreGrowth,
    /// The melded program contains more conditional branches than the
    /// original (melding removes branches; it may never add one).
    MeldBranchGrowth,
    /// The melded program contains decomposition artifacts
    /// (`predict`/`resolve`) — the meld pass works purely at the IR
    /// level and must not emit decode-model instructions.
    MeldResidualDecomposition,
    /// A resolution block of a shadow-exposure program carries an
    /// instruction outside the pushed-down condition slice — exposing a
    /// shadow branch at decode is a model of *prediction* reaching the
    /// front end early, and moves no code.
    ShadowSpeculativeWork,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UnpairedPredict => "unpaired-predict",
            LintKind::MismatchedResolvePair => "mismatched-resolve-pair",
            LintKind::UnmatchedResolve => "unmatched-resolve",
            LintKind::DbbOverflow => "dbb-overflow",
            LintKind::StoreAboveResolve => "store-above-resolve",
            LintKind::FaultingHoistedLoad => "faulting-hoisted-load",
            LintKind::ClobberedLiveIn => "clobbered-live-in",
            LintKind::MissingCorrectionWrite => "missing-correction-write",
            LintKind::ExtraCorrectionWrite => "extra-correction-write",
            LintKind::ShadowCommitNotDominated => "shadow-commit-not-dominated",
            LintKind::MeldStoreGrowth => "meld-store-growth",
            LintKind::MeldBranchGrowth => "meld-branch-growth",
            LintKind::MeldResidualDecomposition => "meld-residual-decomposition",
            LintKind::ShadowSpeculativeWork => "shadow-speculative-work",
        };
        f.write_str(s)
    }
}

/// One structural-invariant violation, located at a block and (where
/// meaningful) an instruction index within it.
#[derive(Clone, Debug)]
pub struct LintDiagnostic {
    /// Which invariant is violated.
    pub kind: LintKind,
    /// Block the violation is located at.
    pub block: BlockId,
    /// Instruction index within `block`, when the violation is tied to a
    /// specific instruction.
    pub inst: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(
                f,
                "{}: {} at inst {}: {}",
                self.kind, self.block, i, self.message
            ),
            None => write!(f, "{}: {}: {}", self.kind, self.block, self.message),
        }
    }
}

/// Everything the lint needs to know about one resolution block.
struct ResolveInfo {
    cond: CondKind,
    src: Reg,
    /// Correction target taken on misprediction.
    target: BlockId,
    /// Per-instruction membership in the backward slice of `src` (the
    /// pushed-down condition slice).
    in_slice: Vec<bool>,
    /// Raw destinations of the speculative (non-slice) instructions above
    /// the resolve — shadow temporaries included un-projected.
    spec_defs: RegSet,
}

/// Extracts [`ResolveInfo`] from a resolve-terminated block.
fn resolve_info(block: &BasicBlock) -> Option<ResolveInfo> {
    let Some(&Inst::Resolve { cond, src, target }) = block.terminator() else {
        return None;
    };
    let n = block.insts().len();
    // Backward slice of the resolve's condition register within the block.
    // Any instruction order is handled (the list scheduler interleaves
    // slice and hoisted instructions).
    let mut in_slice = vec![false; n];
    let mut needed = RegSet::new();
    needed.insert(src);
    for i in (0..n - 1).rev() {
        let inst = &block.insts()[i];
        if let Some(d) = inst.dst() {
            if needed.contains(d) {
                in_slice[i] = true;
                needed.remove(d);
                needed.extend(inst.srcs());
            }
        }
    }
    let mut spec_defs = RegSet::new();
    for (i, inst) in block.insts().iter().enumerate().take(n - 1) {
        if !in_slice[i] {
            if let Some(d) = inst.dst() {
                spec_defs.insert(d);
            }
        }
    }
    Some(ResolveInfo {
        cond,
        src,
        target,
        in_slice,
        spec_defs,
    })
}

/// Checks the §3 structural invariants of a (possibly) decomposed
/// program and returns every violation found. Programs containing no
/// `predict`/`resolve` instructions trivially pass.
pub fn lint_program(program: &Program) -> Vec<LintDiagnostic> {
    let cfg = Cfg::build(program);
    let liveness = Liveness::build(program, &cfg);
    let dom = DomTree::build(program, &cfg);
    let mut diags = Vec::new();

    // Per-block resolve information, indexed by block id.
    let resolves: Vec<Option<ResolveInfo>> = program
        .iter()
        .map(|(_, block)| resolve_info(block))
        .collect();

    for (bid, block) in program.iter() {
        if let Some(info) = &resolves[bid.index()] {
            check_resolution_block(program, &liveness, &dom, bid, block, info, &mut diags);
        }
        if let Some(&Inst::Predict { target }) = block.terminator() {
            check_predict_pair(
                program, &liveness, bid, block, target, &resolves, &mut diags,
            );
        }
    }

    check_dbb_depth(program, &cfg, &resolves, &mut diags);
    diags
}

/// Checks `transformed` against the structural contract of the pass that
/// produced it ([`crate::PassContract`], selected by `kind`):
///
/// * **Decomposition** (vanguard, stacked) — the full §3 contract,
///   [`lint_program`].
/// * **Meld** — side-effect equivalence against `original`: no new
///   stores, no new conditional branches, and no decomposition
///   artifacts (`predict`/`resolve`).
/// * **ShadowExposure** (shadow) — the §3 contract *plus* resolution
///   blocks carrying only the pushed-down condition slice: exposing a
///   shadow branch at decode moves no code.
///
/// `original` is the pre-transformation program; contracts that are
/// purely structural ignore it.
pub fn lint_variant(
    kind: TransformKind,
    original: &Program,
    transformed: &Program,
) -> Vec<LintDiagnostic> {
    match pass_for(kind).contract() {
        PassContract::Decomposition => lint_program(transformed),
        PassContract::Meld => lint_meld(original, transformed),
        PassContract::ShadowExposure => {
            let mut diags = lint_program(transformed);
            check_shadow_exposure(transformed, &mut diags);
            diags
        }
    }
}

/// The meld contract: side-effect equivalence by counting. Melding
/// replaces branches with straight-line blend code, so stores and
/// conditional branches may only *decrease*, and no decode-model
/// instruction may appear.
fn lint_meld(original: &Program, transformed: &Program) -> Vec<LintDiagnostic> {
    fn count(p: &Program, f: impl Fn(&Inst) -> bool) -> usize {
        p.iter()
            .flat_map(|(_, b)| b.insts())
            .filter(|i| f(i))
            .count()
    }
    let mut diags = Vec::new();
    let (stores_before, stores_after) = (
        count(original, |i| matches!(i, Inst::Store { .. })),
        count(transformed, |i| matches!(i, Inst::Store { .. })),
    );
    if stores_after > stores_before {
        diags.push(LintDiagnostic {
            kind: LintKind::MeldStoreGrowth,
            block: transformed.entry(),
            inst: None,
            message: format!(
                "melded program has {stores_after} stores, original had {stores_before}; \
                 melding may never add a store"
            ),
        });
    }
    let (branches_before, branches_after) = (
        count(original, |i| matches!(i, Inst::Branch { .. })),
        count(transformed, |i| matches!(i, Inst::Branch { .. })),
    );
    if branches_after > branches_before {
        diags.push(LintDiagnostic {
            kind: LintKind::MeldBranchGrowth,
            block: transformed.entry(),
            inst: None,
            message: format!(
                "melded program has {branches_after} conditional branches, original had \
                 {branches_before}; melding may never add a branch"
            ),
        });
    }
    for (bid, block) in transformed.iter() {
        for (i, inst) in block.insts().iter().enumerate() {
            if matches!(inst, Inst::Predict { .. } | Inst::Resolve { .. }) {
                diags.push(LintDiagnostic {
                    kind: LintKind::MeldResidualDecomposition,
                    block: bid,
                    inst: Some(i),
                    message: format!(
                        "`{inst}` in a melded program; melding is a pure IR transformation"
                    ),
                });
            }
        }
    }
    diags
}

/// The shadow-exposure refinement of the §3 contract: resolution blocks
/// carry *only* the pushed-down condition slice above their resolve.
fn check_shadow_exposure(program: &Program, diags: &mut Vec<LintDiagnostic>) {
    for (bid, block) in program.iter() {
        let Some(info) = resolve_info(block) else {
            continue;
        };
        let n = block.insts().len();
        for (i, inst) in block.insts().iter().enumerate().take(n - 1) {
            if !info.in_slice[i] && !matches!(inst, Inst::Nop) {
                diags.push(LintDiagnostic {
                    kind: LintKind::ShadowSpeculativeWork,
                    block: bid,
                    inst: Some(i),
                    message: format!(
                        "`{inst}` above the resolve is outside the condition slice; shadow \
                         exposure models early prediction delivery and moves no code"
                    ),
                });
            }
        }
    }
}

/// Checks 2–4 and 6: store sinking, non-faulting hoists, live-in
/// protection, and shadow dominance for one resolution block.
fn check_resolution_block(
    program: &Program,
    liveness: &Liveness,
    dom: &DomTree,
    bid: BlockId,
    block: &BasicBlock,
    info: &ResolveInfo,
    diags: &mut Vec<LintDiagnostic>,
) {
    let correction_live_in = liveness.live_in(info.target);
    let n = block.insts().len();
    for (i, inst) in block.insts().iter().enumerate().take(n - 1) {
        if matches!(inst, Inst::Store { .. }) {
            diags.push(LintDiagnostic {
                kind: LintKind::StoreAboveResolve,
                block: bid,
                inst: Some(i),
                message: format!("`{inst}` above the resolve; stores must sink below it"),
            });
            continue;
        }
        if info.in_slice[i] {
            // The pushed-down condition slice recomputes pre-branch work;
            // its faults and writes are architectural.
            continue;
        }
        if let Inst::Load {
            speculative: false, ..
        } = inst
        {
            diags.push(LintDiagnostic {
                kind: LintKind::FaultingHoistedLoad,
                block: bid,
                inst: Some(i),
                message: format!("hoisted `{inst}` is not the non-faulting ld.s form"),
            });
        }
        if let Some(d) = inst.dst() {
            if correction_live_in.contains(d) {
                diags.push(LintDiagnostic {
                    kind: LintKind::ClobberedLiveIn,
                    block: bid,
                    inst: Some(i),
                    message: format!(
                        "`{inst}` clobbers {d}, live into correction block {}",
                        info.target
                    ),
                });
            }
        }
    }

    // Shadow dominance: the suffix consumes speculative values (hoisted
    // results and shadow-temp commits) that only exist after this block's
    // resolve, so every path into the suffix must pass through it.
    let Some(suffix) = block.fallthrough() else {
        return; // Program::validate rejects this; nothing more to check.
    };
    let mut killed = RegSet::new();
    for (i, inst) in program.block(suffix).insts().iter().enumerate() {
        let reads_spec = inst
            .srcs()
            .iter()
            .any(|&r| info.spec_defs.contains(r) && !killed.contains(r));
        if reads_spec && !dom.dominates(bid, suffix) {
            diags.push(LintDiagnostic {
                kind: LintKind::ShadowCommitNotDominated,
                block: suffix,
                inst: Some(i),
                message: format!(
                    "`{inst}` reads a speculative value from {bid}, which does not dominate {suffix}"
                ),
            });
            break;
        }
        if let Some(d) = inst.dst() {
            killed.insert(d);
        }
    }
}

/// Checks 1 (pairing shape) and 5 (correction coverage) for one predict.
fn check_predict_pair(
    program: &Program,
    liveness: &Liveness,
    bid: BlockId,
    block: &BasicBlock,
    target: BlockId,
    resolves: &[Option<ResolveInfo>],
    diags: &mut Vec<LintDiagnostic>,
) {
    let Some(fall) = block.fallthrough() else {
        return; // rejected by Program::validate.
    };
    let res_taken = resolves[target.index()].as_ref();
    let res_fall = resolves[fall.index()].as_ref();
    let (Some(res_taken), Some(res_fall)) = (res_taken, res_fall) else {
        for (dir, succ, found) in [
            ("taken", target, res_taken.is_some()),
            ("fall-through", fall, res_fall.is_some()),
        ] {
            if !found {
                diags.push(LintDiagnostic {
                    kind: LintKind::UnpairedPredict,
                    block: bid,
                    inst: Some(block.insts().len() - 1),
                    message: format!(
                        "{dir} successor {succ} of the predict does not terminate in a resolve"
                    ),
                });
            }
        }
        return;
    };
    if target == fall {
        diags.push(LintDiagnostic {
            kind: LintKind::UnpairedPredict,
            block: bid,
            inst: Some(block.insts().len() - 1),
            message: format!("predict target and fall-through are the same block {target}"),
        });
        return;
    }
    if res_taken.src != res_fall.src || res_taken.cond != res_fall.cond.negate() {
        diags.push(LintDiagnostic {
            kind: LintKind::MismatchedResolvePair,
            block: bid,
            inst: Some(block.insts().len() - 1),
            message: format!(
                "resolves {target} (resolve.{:?} {}) and {fall} (resolve.{:?} {}) must test the \
                 same register with complementary conditions",
                res_taken.cond, res_taken.src, res_fall.cond, res_fall.src
            ),
        });
    }

    // Correction coverage, cross-paired per §3: the path predicted toward
    // direction d (resolution block + suffix) and the correction block
    // repairing a misprediction *of the other direction* both realise an
    // actual-d execution, so their architectural def-sets must agree.
    for (dir, res_id, res, correction) in [
        ("taken", target, res_taken, res_fall.target),
        ("fall-through", fall, res_fall, res_taken.target),
    ] {
        let Some(suffix) = program.block(res_id).fallthrough() else {
            continue;
        };
        let correction_defs = liveness.defs(correction);
        let correction_live_in = liveness.live_in(correction);
        // Shadow temporaries: speculative destinations that are dead on
        // the correction path (unknown to the original program). Their
        // architectural projection arrives via commit moves in the
        // suffix, which `defs(suffix)` already covers.
        let temps = res
            .spec_defs
            .difference(correction_defs)
            .difference(correction_live_in);
        let predicted_defs = res
            .spec_defs
            .difference(&temps)
            .union(liveness.defs(suffix));
        let missing = predicted_defs.difference(correction_defs);
        let extra = correction_defs.difference(&predicted_defs);
        if !missing.is_empty() {
            diags.push(LintDiagnostic {
                kind: LintKind::MissingCorrectionWrite,
                block: correction,
                inst: None,
                message: format!(
                    "correction block {correction} does not write {missing:?}, written on the \
                     predicted-{dir} path ({res_id} + {suffix}) of the predict in {bid}"
                ),
            });
        }
        if !extra.is_empty() {
            diags.push(LintDiagnostic {
                kind: LintKind::ExtraCorrectionWrite,
                block: correction,
                inst: None,
                message: format!(
                    "correction block {correction} writes {extra:?}, never written on the \
                     predicted-{dir} path ({res_id} + {suffix}) of the predict in {bid}"
                ),
            });
        }
    }
}

/// Checks 1's depth bound: a forward dataflow over the set of possible
/// outstanding-prediction counts per block. `predict` pushes a DBB entry,
/// `resolve` pops one; more than [`DBB_ENTRIES`] outstanding on any path
/// overflows the buffer, and a pop at depth zero has no predict to pair
/// with.
fn check_dbb_depth(
    program: &Program,
    cfg: &Cfg,
    resolves: &[Option<ResolveInfo>],
    diags: &mut Vec<LintDiagnostic>,
) {
    // Depths are capped at DBB_ENTRIES + 1 so cyclic predict chains
    // terminate; each (block, depth) state is visited once.
    let cap = DBB_ENTRIES + 1;
    let n = program.num_blocks();
    let mut seen = vec![vec![false; cap + 1]; n];
    let mut overflowed = vec![false; n];
    let mut underflowed = vec![false; n];
    let mut work = vec![(program.entry(), 0usize)];
    seen[program.entry().index()][0] = true;
    while let Some((bid, depth)) = work.pop() {
        let block = program.block(bid);
        let out_depth = match block.terminator() {
            Some(Inst::Predict { .. }) => {
                let d = (depth + 1).min(cap);
                if d > DBB_ENTRIES && !overflowed[bid.index()] {
                    overflowed[bid.index()] = true;
                    diags.push(LintDiagnostic {
                        kind: LintKind::DbbOverflow,
                        block: bid,
                        inst: Some(block.insts().len() - 1),
                        message: format!(
                            "a path reaches this predict with {DBB_ENTRIES} predictions already \
                             outstanding (DBB has {DBB_ENTRIES} entries)"
                        ),
                    });
                }
                d
            }
            Some(Inst::Resolve { .. }) => {
                if depth == 0 {
                    if !underflowed[bid.index()] {
                        underflowed[bid.index()] = true;
                        diags.push(LintDiagnostic {
                            kind: LintKind::UnmatchedResolve,
                            block: bid,
                            inst: Some(block.insts().len() - 1),
                            message: "a path reaches this resolve with no outstanding predict to \
                                      pair with"
                                .into(),
                        });
                    }
                    0
                } else {
                    depth - 1
                }
            }
            _ => depth,
        };
        for &succ in cfg.succs(bid) {
            if !seen[succ.index()][out_depth] {
                seen[succ.index()][out_depth] = true;
                work.push((succ, out_depth));
            }
        }
    }
    let _ = resolves;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, CmpKind, Operand, ProgramBuilder};

    /// entry → head(predict) → {rt, rf} → suffixes → exit, the §3 shape.
    fn decomposed_diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let head = b.block("head");
        let rt = b.block("head.resolve_t");
        let rf = b.block("head.resolve_nt");
        let st = b.block("bb_t.suffix");
        let sf = b.block("bb_f.suffix");
        let bb_t = b.block("bb_t");
        let bb_f = b.block("bb_f");
        let exit = b.block("exit");

        b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000)));
        b.fallthrough(entry, head);
        b.push(head, Inst::Predict { target: rt });
        b.fallthrough(head, rf);

        for (res, cond, hoist_dst, off, suffix, correction) in [
            (rt, CondKind::Z, Reg(8), 8, st, bb_f),
            (rf, CondKind::Nz, Reg(6), 0, sf, bb_t),
        ] {
            // Pushed-down slice: ld + cmp feeding the resolve.
            b.push(res, Inst::load(Reg(4), Reg(3), 0));
            b.push(
                res,
                Inst::Cmp {
                    kind: CmpKind::Ne,
                    dst: Reg(5),
                    a: Reg(4),
                    b: Operand::Imm(0),
                },
            );
            // Speculatively hoisted load.
            b.push(res, Inst::load_spec(hoist_dst, Reg(10), off));
            b.push(
                res,
                Inst::Resolve {
                    cond,
                    src: Reg(5),
                    target: correction,
                },
            );
            b.fallthrough(res, suffix);
        }
        // Suffixes consume the hoisted value; originals recompute it.
        for (blk, src, off) in [
            (st, Reg(8), 8i64),
            (sf, Reg(6), 0),
            (bb_t, Reg(8), 8),
            (bb_f, Reg(6), 0),
        ] {
            if blk == bb_t || blk == bb_f {
                b.push(blk, Inst::load(src, Reg(10), off));
            }
            b.push(
                blk,
                Inst::alu(AluOp::Add, Reg(12), Operand::Reg(src), Operand::Imm(1)),
            );
            b.push(blk, Inst::store(Reg(12), Reg(3), 0x100));
            b.push(blk, Inst::Jump { target: exit });
        }
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        b.finish().unwrap()
    }

    #[test]
    fn clean_decomposition_passes() {
        let p = decomposed_diamond();
        let diags = lint_program(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn plain_programs_trivially_pass() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::store(Reg(1), Reg(2), 0));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn store_above_resolve_is_flagged() {
        let mut p = decomposed_diamond();
        // rt is block 2; insert a store above its resolve.
        let rt = BlockId(2);
        let at = p.block(rt).insts().len() - 1;
        p.block_mut(rt)
            .insts_mut()
            .insert(at, Inst::store(Reg(4), Reg(3), 0x200));
        let diags = lint_program(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::StoreAboveResolve && d.block == rt),
            "{diags:?}"
        );
    }

    #[test]
    fn resolve_without_predict_is_flagged() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let r = b.block("resolve");
        let s = b.block("suffix");
        b.push(e, Inst::Nop);
        b.fallthrough(e, r);
        b.push(
            r,
            Inst::Resolve {
                cond: CondKind::Nz,
                src: Reg(1),
                target: s,
            },
        );
        b.fallthrough(r, s);
        b.push(s, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let diags = lint_program(&p);
        assert!(
            diags.iter().any(|d| d.kind == LintKind::UnmatchedResolve),
            "{diags:?}"
        );
    }

    #[test]
    fn mismatched_conditions_are_flagged() {
        let mut p = decomposed_diamond();
        // Make both resolves test the same (non-complementary) condition.
        let rf = BlockId(3);
        let last = p.block(rf).insts().len() - 1;
        if let Inst::Resolve { cond, .. } = &mut p.block_mut(rf).insts_mut()[last] {
            *cond = CondKind::Z;
        }
        let diags = lint_program(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::MismatchedResolvePair),
            "{diags:?}"
        );
    }

    /// A trivial straight-line program with one store and no branches.
    fn straight_line() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(7)));
        b.push(e, Inst::store(Reg(1), Reg(2), 0));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn meld_contract_accepts_identity() {
        let p = straight_line();
        assert!(lint_variant(TransformKind::Meld, &p, &p).is_empty());
    }

    #[test]
    fn meld_contract_flags_new_store() {
        let original = straight_line();
        let mut melded = original.clone();
        melded
            .block_mut(BlockId(0))
            .insts_mut()
            .insert(0, Inst::store(Reg(1), Reg(2), 8));
        let diags = lint_variant(TransformKind::Meld, &original, &melded);
        assert!(
            diags.iter().any(|d| d.kind == LintKind::MeldStoreGrowth),
            "{diags:?}"
        );
    }

    #[test]
    fn meld_contract_flags_residual_decomposition() {
        let original = straight_line();
        let melded = decomposed_diamond();
        let diags = lint_variant(TransformKind::Meld, &original, &melded);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::MeldResidualDecomposition),
            "{diags:?}"
        );
    }

    #[test]
    fn shadow_contract_flags_hoisted_work() {
        // decomposed_diamond hoists an ld.s into each resolution block —
        // clean under the vanguard contract, speculative work under the
        // shadow contract.
        let p = decomposed_diamond();
        let original = straight_line();
        assert!(lint_variant(TransformKind::Vanguard, &original, &p).is_empty());
        let diags = lint_variant(TransformKind::Shadow, &original, &p);
        let flagged: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::ShadowSpeculativeWork)
            .collect();
        assert_eq!(flagged.len(), 2, "{diags:?}");
    }

    #[test]
    fn shadow_contract_accepts_slice_only_resolution_blocks() {
        let mut p = decomposed_diamond();
        // Strip the hoisted ld.s from both resolution blocks; the suffix
        // loads stay architectural via the correction twins, so re-point
        // the suffixes at fresh loads by replacing the hoisted consumers.
        for (res, suffix, dst, off) in [
            (BlockId(2), BlockId(4), Reg(8), 8i64),
            (BlockId(3), BlockId(5), Reg(6), 0),
        ] {
            let insts = p.block_mut(res).insts_mut();
            insts.retain(|i| {
                !matches!(
                    i,
                    Inst::Load {
                        speculative: true,
                        ..
                    }
                )
            });
            p.block_mut(suffix)
                .insts_mut()
                .insert(0, Inst::load(dst, Reg(10), off));
        }
        let diags = lint_variant(TransformKind::Shadow, &straight_line(), &p);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

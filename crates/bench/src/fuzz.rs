//! Differential fuzzing driver for the Decomposed Branch Transformation.
//!
//! Each case is one seed: [`FuzzSpec::from_seed`] generates a random
//! kernel, the full [`Experiment`] pipeline profiles and compiles it,
//! and the compiled pair must then survive three independent gates:
//!
//! 1. **Static lint** — [`lint_program`] on both compiled programs
//!    (zero diagnostics; the §3 structural contract).
//! 2. **Interpreter differential** — [`verify_equivalence`]: the
//!    transformed program under adversarial prediction oracles
//!    (always-taken, always-not-taken, alternating, seeded random) must
//!    reach the original program's observable state (registers the
//!    original uses, plus the output memory region). The baseline goes
//!    through the same gate, checking layout/scheduling alone.
//! 3. **Simulator parity** — both compiled programs run on the cycle
//!    simulator (steady-state replay disabled), whose committed
//!    registers and written words must match the interpreter's (the
//!    `parity_suite` comparison, per case).
//! 4. **Replay parity** — the same simulation runs again with the
//!    steady-state replay layer enabled; every committed register,
//!    written word, and every [`SimStats`] counter must be bit-identical
//!    to the replay-off run. A failure here implicates the replay layer
//!    alone and is attributed as such in the reproducer. `--no-replay`
//!    skips this gate.
//!
//! A failing case is shrunk by greedy knob reduction to a minimal
//! reproducer and written to disk with exact replay instructions.
//! Everything is deterministic in the seed.
//!
//! Every case runs through *all* transform passes ([`TransformKind::ALL`]
//! unless `--transform` restricts it): the baseline gates once, then
//! each variant's transformed program goes through the same
//! lint/differential/parity oracle, with the lint dispatching on the
//! pass's structural contract ([`vanguard_core::lint_variant`]).

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vanguard_bpred::Combined;
use vanguard_core::{
    lint_program, lint_variant, verify_equivalence, Experiment, ExperimentInput, Observables,
    RunInput, TransformKind, TransformOptions,
};
use vanguard_isa::{
    DecodedImage, InterpConfig, Interpreter, Memory, Program, Reg, StopReason, TakenOracle,
};
use vanguard_sim::{MachineConfig, SimStats, Simulator, StopCause};
use vanguard_workloads::{FuzzCase, FuzzSpec};

/// Interpreter/simulator step budget per run (generated kernels retire
/// well under a million instructions).
const MAX_STEPS: u64 = 4_000_000;
/// Seeded random prediction oracles per differential run.
const RANDOM_ORACLES: u32 = 3;
/// Greedy shrink attempts before giving up on further reduction.
const MAX_SHRINK_ATTEMPTS: usize = 64;

/// Deliberate transform sabotage, enabled by the test-only
/// `--inject` flag: proves the harness catches real bug classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Negate both resolve conditions of every pair: structurally intact
    /// (the lint cannot see it) but semantically inverted — only the
    /// interpreter differential catches it.
    FlipResolves,
    /// Strip the non-faulting mark from hoisted loads: semantically
    /// invisible on in-bounds inputs — only the lint catches it.
    FaultingLoads,
}

impl Inject {
    /// Parses the `--inject` flag value.
    pub fn parse(s: &str) -> Option<Inject> {
        match s {
            "flip-resolves" => Some(Inject::FlipResolves),
            "faulting-loads" => Some(Inject::FaultingLoads),
            _ => None,
        }
    }
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Cases to run (seeds `start_seed..start_seed + cases`).
    pub cases: u64,
    /// First seed.
    pub start_seed: u64,
    /// Wall-clock budget; the run stops early (successfully) when spent.
    pub time_budget: Option<Duration>,
    /// Directory minimized reproducers are written to.
    pub out_dir: PathBuf,
    /// Test-only transform sabotage.
    pub inject: Option<Inject>,
    /// Restrict the campaign to one pass (default: every
    /// [`TransformKind`], vanguard first).
    pub transform: Option<TransformKind>,
    /// Run gate 4 (replay-on vs replay-off bit-identity) on every case.
    /// On by default; `--no-replay` clears it to isolate whether a
    /// failure needs the replay layer at all.
    pub replay: bool,
}

/// The variant list a campaign runs: one explicit kind, or all of them
/// with vanguard first (the injected-sabotage smoke tests rely on the
/// vanguard variant being gated before the rivals).
pub fn kinds_for(transform: Option<TransformKind>) -> Vec<TransformKind> {
    match transform {
        Some(kind) => vec![kind],
        None => TransformKind::ALL.to_vec(),
    }
}

/// Why one case failed.
#[derive(Clone, Debug)]
pub enum CaseFailure {
    /// The generated program failed to profile (input bug, not transform).
    Profile(String),
    /// The lint reported diagnostics on a compiled program.
    Lint {
        /// "baseline" or "transformed".
        variant: &'static str,
        /// Rendered diagnostics.
        diagnostics: Vec<String>,
    },
    /// The interpreter differential diverged.
    Divergence {
        /// "baseline" or "transformed".
        variant: &'static str,
        /// Rendered divergences.
        divergences: Vec<String>,
    },
    /// Simulator committed state differed from the interpreter's.
    SimParity {
        /// "baseline" or "transformed".
        variant: &'static str,
        /// Description of the first mismatch.
        detail: String,
    },
    /// The replay-on simulation diverged from the replay-off one: the
    /// steady-state replay layer (not the transform) is implicated.
    ReplayParity {
        /// "baseline" or "transformed".
        variant: &'static str,
        /// Description of the first mismatch.
        detail: String,
    },
}

impl fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseFailure::Profile(e) => write!(f, "profile error: {e}"),
            CaseFailure::Lint {
                variant,
                diagnostics,
            } => {
                writeln!(f, "lint violations on {variant}:")?;
                for d in diagnostics {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            CaseFailure::Divergence {
                variant,
                divergences,
            } => {
                writeln!(f, "interpreter differential divergence on {variant}:")?;
                for d in divergences {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            CaseFailure::SimParity { variant, detail } => {
                write!(
                    f,
                    "simulator/interpreter parity mismatch on {variant}: {detail}"
                )
            }
            CaseFailure::ReplayParity { variant, detail } => {
                write!(
                    f,
                    "replay-on vs replay-off mismatch on {variant} (steady-state \
                     replay layer implicated): {detail}"
                )
            }
        }
    }
}

/// Outcome of a whole fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzStats {
    /// Cases executed.
    pub cases_run: u64,
    /// Cases where the selector converted at least one site.
    pub transformed: u64,
    /// Total sites converted across all cases.
    pub sites_converted: u64,
    /// Failing seeds, with the shrunk spec and failure.
    pub failures: Vec<(u64, FuzzSpec, String)>,
}

/// Maps the spec's transform knobs onto the experiment, with the
/// selector relaxed so short fuzz loops still qualify.
fn experiment_for(spec: &FuzzSpec, kind: TransformKind) -> Experiment {
    let mut exp = Experiment::new(MachineConfig::four_wide());
    exp.transform = TransformOptions {
        kind,
        max_hoist: spec.max_hoist,
        hoist_loads: spec.hoist_loads,
        shadow_temps: spec.shadow_temps,
        ..TransformOptions::default()
    };
    exp.transform.select.min_executions = spec.iterations.min(32);
    exp
}

/// Registers the original program reads or writes: the architecturally
/// observable set. Shadow temporaries the transform introduces are by
/// construction *not* in it, and their final values legitimately depend
/// on the prediction stream.
fn observable_regs(program: &Program) -> Vec<Reg> {
    let mut seen = [false; vanguard_isa::NUM_ARCH_REGS];
    for (_, block) in program.iter() {
        for inst in block.insts() {
            if let Some(d) = inst.dst() {
                seen[d.index()] = true;
            }
            for r in inst.srcs() {
                seen[r.index()] = true;
            }
        }
    }
    (0..vanguard_isa::NUM_ARCH_REGS)
        .filter(|&i| seen[i])
        .map(|i| Reg(i as u8))
        .collect()
}

/// Applies the requested sabotage to a compiled transformed program.
fn sabotage(program: &mut Program, inject: Inject) {
    for i in 0..program.num_blocks() {
        let block = program.block_mut(vanguard_isa::BlockId(i as u32));
        for inst in block.insts_mut() {
            match (inject, inst) {
                (Inject::FlipResolves, vanguard_isa::Inst::Resolve { cond, .. }) => {
                    *cond = cond.negate();
                }
                (Inject::FaultingLoads, vanguard_isa::Inst::Load { speculative, .. }) => {
                    *speculative = false;
                }
                _ => {}
            }
        }
    }
}

/// Committed state of one execution: observable register values in the
/// caller's order, plus every explicitly written memory word.
type CommittedState = (Vec<u64>, Vec<(u64, u64)>);

/// Interpreter committed state (oracle-independent for observables).
fn interp_state(
    program: &Program,
    memory: Memory,
    init: &[(Reg, u64)],
    regs: &[Reg],
) -> Result<CommittedState, String> {
    let mut i = Interpreter::new(program, memory).with_config(InterpConfig {
        max_steps: MAX_STEPS,
    });
    for &(r, v) in init {
        i.set_reg(r, v);
    }
    let out = i
        .run(&mut TakenOracle::AlwaysNotTaken)
        .map_err(|e| e.to_string())?;
    if out.stop != StopReason::Halted {
        return Err(format!("interpreter did not halt within {MAX_STEPS} steps"));
    }
    let vals = regs.iter().map(|&r| i.reg(r)).collect();
    Ok((vals, i.memory().written_words()))
}

/// Simulator committed state (plus the full cycle-level counters) for
/// the same program and input, with the steady-state replay layer
/// toggled per `replay`.
fn sim_state(
    program: &Program,
    memory: Memory,
    init: &[(Reg, u64)],
    regs: &[Reg],
    replay: bool,
) -> Result<(CommittedState, SimStats), String> {
    let image = Arc::new(DecodedImage::build(program));
    let mut sim = Simulator::with_image(
        image,
        memory,
        MachineConfig::four_wide(),
        Box::new(Combined::ptlsim_default()),
    );
    sim.set_replay(replay);
    for &(r, v) in init {
        sim.set_reg(r, v);
    }
    let res = sim.run().map_err(|e| e.to_string())?;
    if res.stop != StopCause::Halted {
        return Err(format!("simulator stopped on {:?}", res.stop));
    }
    let vals = regs.iter().map(|&r| res.regs[r.index()]).collect();
    Ok(((vals, res.memory.written_words()), res.stats))
}

/// Gates 2 through 4 for one compiled program under one label (`replay`
/// controls whether gate 4 runs).
fn runtime_gates(
    variant: &'static str,
    program: &Program,
    case: &FuzzCase,
    obs: &Observables,
    replay: bool,
) -> Result<(), CaseFailure> {
    // Gate 2: interpreter differential under adversarial oracles.
    let divs = verify_equivalence(
        &case.program,
        program,
        &case.memory,
        &case.init_regs,
        obs,
        RANDOM_ORACLES,
        MAX_STEPS,
    )
    .map_err(|e| CaseFailure::Profile(format!("reference run faulted: {e}")))?;
    if !divs.is_empty() {
        return Err(CaseFailure::Divergence {
            variant,
            divergences: divs.iter().map(|d| d.to_string()).collect(),
        });
    }

    // Gate 3: cycle-simulator parity with the interpreter (replay off —
    // the plain simulation is the semantic reference).
    let i = interp_state(program, case.memory.clone(), &case.init_regs, &obs.regs)
        .map_err(|detail| CaseFailure::SimParity { variant, detail })?;
    let (s, off_stats) = sim_state(
        program,
        case.memory.clone(),
        &case.init_regs,
        &obs.regs,
        false,
    )
    .map_err(|detail| CaseFailure::SimParity { variant, detail })?;
    if i.0 != s.0 {
        let r = obs
            .regs
            .iter()
            .zip(i.0.iter().zip(&s.0))
            .find(|(_, (a, b))| a != b);
        let (reg, (iv, sv)) = r.expect("some register differs");
        return Err(CaseFailure::SimParity {
            variant,
            detail: format!("{reg}: interpreter {iv:#x} vs simulator {sv:#x}"),
        });
    }
    if i.1 != s.1 {
        return Err(CaseFailure::SimParity {
            variant,
            detail: format!(
                "written words differ: interpreter {} words vs simulator {}",
                i.1.len(),
                s.1.len()
            ),
        });
    }
    if !replay {
        return Ok(());
    }

    // Gate 4: the replay-on run must be bit-identical to the replay-off
    // run just gated — committed registers, written words, and every
    // cycle-level counter.
    let (r, on_stats) = sim_state(
        program,
        case.memory.clone(),
        &case.init_regs,
        &obs.regs,
        true,
    )
    .map_err(|detail| CaseFailure::ReplayParity { variant, detail })?;
    if s.0 != r.0 {
        let reg = obs
            .regs
            .iter()
            .zip(s.0.iter().zip(&r.0))
            .find(|(_, (a, b))| a != b);
        let (reg, (ov, rv)) = reg.expect("some register differs");
        return Err(CaseFailure::ReplayParity {
            variant,
            detail: format!("{reg}: replay-off {ov:#x} vs replay-on {rv:#x}"),
        });
    }
    if s.1 != r.1 {
        return Err(CaseFailure::ReplayParity {
            variant,
            detail: format!(
                "written words differ: replay-off {} words vs replay-on {}",
                s.1.len(),
                r.1.len()
            ),
        });
    }
    if off_stats != on_stats {
        return Err(CaseFailure::ReplayParity {
            variant,
            detail: format!("SimStats differ: replay-off {off_stats:?} vs replay-on {on_stats:?}"),
        });
    }
    Ok(())
}

/// Runs one case through all four gates for every transform pass.
/// `Ok(sites)` is the largest per-variant count of changed sites
/// (converted branches + melded hammocks; 0 = every selector declined —
/// still checked).
pub fn run_case(spec: &FuzzSpec, inject: Option<Inject>) -> Result<u64, CaseFailure> {
    run_case_kinds(spec, inject, &kinds_for(None), true)
}

/// [`run_case`] restricted to an explicit variant list (`replay` gates
/// the replay-parity check). The baseline program is identical across
/// variants and gates once (against the first kind's compile); each
/// variant's transformed program then runs the full oracle under its
/// pass-specific lint contract. The TRAIN profile is computed once and
/// shared across every variant and both replay modes.
pub fn run_case_kinds(
    spec: &FuzzSpec,
    inject: Option<Inject>,
    kinds: &[TransformKind],
    replay: bool,
) -> Result<u64, CaseFailure> {
    let case: FuzzCase = spec.build();
    let input = ExperimentInput {
        name: format!("fuzz-{}", spec.seed),
        program: case.program.clone(),
        train: RunInput {
            memory: case.memory.clone(),
            init_regs: case.init_regs.clone(),
        },
        refs: vec![RunInput {
            memory: case.memory.clone(),
            init_regs: case.init_regs.clone(),
        }],
        seed: Some(spec.seed),
    };
    // The profile depends only on program + predictor, never on the
    // transform: compute it once and share it across every variant.
    let profile = experiment_for(spec, TransformKind::Vanguard)
        .profile(&input)
        .map_err(|e| CaseFailure::Profile(e.to_string()))?;
    let obs = Observables {
        regs: observable_regs(&case.program),
        memory_ranges: vec![case.out_range],
    };

    let mut max_sites = 0u64;
    for (idx, &kind) in kinds.iter().enumerate() {
        let exp = experiment_for(spec, kind);
        let (baseline, mut transformed, report) = exp.compile_pair(&case.program, &profile);
        if let Some(inject) = inject {
            sabotage(&mut transformed, inject);
        }
        let sites = (report.converted.len() + report.melded) as u64;
        max_sites = max_sites.max(sites);

        if idx == 0 {
            // The baseline side is transform-independent (layout +
            // scheduling only): gate it once.
            let diags = lint_program(&baseline);
            if !diags.is_empty() {
                return Err(CaseFailure::Lint {
                    variant: "baseline",
                    diagnostics: diags.iter().map(|d| d.to_string()).collect(),
                });
            }
            runtime_gates("baseline", &baseline, &case, &obs, replay)?;
        } else if sites == 0 && inject.is_none() {
            // This variant's selector declined every site, so its
            // transformed program is the already-gated baseline.
            continue;
        }

        // Gate 1: pass-contract lint on the transformed program.
        let diags = lint_variant(kind, &baseline, &transformed);
        if !diags.is_empty() {
            return Err(CaseFailure::Lint {
                variant: kind.name(),
                diagnostics: diags.iter().map(|d| d.to_string()).collect(),
            });
        }
        runtime_gates(kind.name(), &transformed, &case, &obs, replay)?;
    }

    Ok(max_sites)
}

/// Greedy shrink: repeatedly tries knob reductions, keeping any that
/// still fail, until no reduction makes progress (or the attempt budget
/// runs out). Returns the minimal failing spec and its failure.
pub fn shrink(
    spec: &FuzzSpec,
    inject: Option<Inject>,
    failure: CaseFailure,
) -> (FuzzSpec, CaseFailure) {
    shrink_kinds(spec, inject, failure, &kinds_for(None), true)
}

/// [`shrink`] restricted to an explicit variant list, so a campaign
/// limited to one pass shrinks against that pass's oracle only
/// (`replay` matches the campaign's replay-parity gating, so a
/// replay-implicating failure shrinks against the gate that caught it).
pub fn shrink_kinds(
    spec: &FuzzSpec,
    inject: Option<Inject>,
    failure: CaseFailure,
    kinds: &[TransformKind],
    replay: bool,
) -> (FuzzSpec, CaseFailure) {
    let mut best = spec.clone();
    let mut best_failure = failure;
    let mut attempts = 0;
    loop {
        let mut reduced = false;
        let candidates: Vec<FuzzSpec> = [
            FuzzSpec {
                iterations: best.iterations / 2,
                ..best.clone()
            },
            FuzzSpec {
                iterations: best.iterations.saturating_sub(1),
                ..best.clone()
            },
            FuzzSpec {
                sites: best.sites - 1,
                ..best.clone()
            },
            FuzzSpec {
                side_insts: best.side_insts - 1,
                ..best.clone()
            },
            FuzzSpec {
                stores_per_side: 0,
                ..best.clone()
            },
            FuzzSpec {
                persistent: best.persistent - 1,
                ..best.clone()
            },
            FuzzSpec {
                cond_chain: false,
                ..best.clone()
            },
            FuzzSpec {
                shadow_temps: false,
                ..best.clone()
            },
            FuzzSpec {
                max_hoist: best.max_hoist / 2,
                ..best.clone()
            },
        ]
        .into_iter()
        .filter(|c| {
            *c != best
                && c.iterations >= 2
                && c.sites >= 1
                && c.side_insts >= 1
                && c.persistent >= 1
                && c.max_hoist >= 1
        })
        .collect();
        for candidate in candidates {
            attempts += 1;
            if attempts > MAX_SHRINK_ATTEMPTS {
                return (best, best_failure);
            }
            if let Err(f) = run_case_kinds(&candidate, inject, kinds, replay) {
                best = candidate;
                best_failure = f;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (best, best_failure);
        }
    }
}

/// The pass a failure implicates: its variant label *is* a kind name
/// for transformed-side failures (baseline/profile failures fall back
/// to vanguard — the transform is not implicated there anyway).
pub fn failure_kind(failure: &CaseFailure) -> TransformKind {
    let variant = match failure {
        CaseFailure::Lint { variant, .. }
        | CaseFailure::Divergence { variant, .. }
        | CaseFailure::SimParity { variant, .. }
        | CaseFailure::ReplayParity { variant, .. } => variant,
        CaseFailure::Profile(_) => "vanguard",
    };
    TransformKind::parse(variant).unwrap_or_default()
}

/// Writes a minimized reproducer directory: the spec, replay command,
/// failure description, and both programs' disassembly (the transformed
/// side compiled under the pass the failure implicates).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reproducer(
    dir: &Path,
    spec: &FuzzSpec,
    inject: Option<Inject>,
    failure: &CaseFailure,
) -> std::io::Result<PathBuf> {
    let case_dir = dir.join(format!("seed-{}", spec.seed));
    std::fs::create_dir_all(&case_dir)?;
    let kind = failure_kind(failure);
    let mut replay = format!(
        "cargo run --release -p vanguard-bench --bin vanguard-fuzz -- \\\n  --one {} --sites {} --side-insts {} --stores {} --persistent {} \\\n  --iterations {} --cond-chain {} --shadow-temps {} --hoist-loads {} --max-hoist {}",
        spec.seed,
        spec.sites,
        spec.side_insts,
        spec.stores_per_side,
        spec.persistent,
        spec.iterations,
        spec.cond_chain,
        spec.shadow_temps,
        spec.hoist_loads,
        spec.max_hoist,
    );
    if kind != TransformKind::Vanguard {
        replay.push_str(&format!(" \\\n  --transform {kind}"));
    }
    if let Some(inject) = inject {
        let flag = match inject {
            Inject::FlipResolves => "flip-resolves",
            Inject::FaultingLoads => "faulting-loads",
        };
        replay.push_str(&format!(" \\\n  --inject {flag}"));
    }
    let attribution = if matches!(failure, CaseFailure::ReplayParity { .. }) {
        "\nattribution: the steady-state replay layer is implicated — the \
         replay-on\nsimulation diverged from replay-off. The same command with \
         --no-replay skips\nthe replay-parity gate and should pass; the bug is \
         in the simulator's replay\nmemoization, not the transform.\n"
    } else {
        ""
    };
    std::fs::write(
        case_dir.join("repro.txt"),
        format!(
            "minimized spec:\n{spec:#?}\n\nreplay:\n{replay}\n\nfailure:\n{failure}\n{attribution}"
        ),
    )?;
    let case = spec.build();
    std::fs::write(case_dir.join("original.asm"), case.program.disassemble())?;
    let exp = experiment_for(spec, kind);
    if let Ok(profile) = exp.profile(&ExperimentInput {
        name: "repro".into(),
        program: case.program.clone(),
        train: RunInput {
            memory: case.memory.clone(),
            init_regs: case.init_regs.clone(),
        },
        refs: vec![RunInput {
            memory: case.memory.clone(),
            init_regs: case.init_regs.clone(),
        }],
        seed: Some(spec.seed),
    }) {
        let (_, mut transformed, _) = exp.compile_pair(&case.program, &profile);
        if let Some(inject) = inject {
            sabotage(&mut transformed, inject);
        }
        std::fs::write(case_dir.join("transformed.asm"), transformed.disassemble())?;
    }
    Ok(case_dir)
}

/// Runs the full fuzzing campaign described by `config`, shrinking and
/// persisting every failure. Progress goes to stderr.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzStats {
    let started = Instant::now();
    let mut stats = FuzzStats::default();
    let kinds = kinds_for(config.transform);
    for i in 0..config.cases {
        if let Some(budget) = config.time_budget {
            if started.elapsed() >= budget {
                eprintln!("[fuzz] time budget spent after {} cases", stats.cases_run);
                break;
            }
        }
        let seed = config.start_seed + i;
        let spec = FuzzSpec::from_seed(seed);
        stats.cases_run += 1;
        match run_case_kinds(&spec, config.inject, &kinds, config.replay) {
            Ok(sites) => {
                if sites > 0 {
                    stats.transformed += 1;
                    stats.sites_converted += sites;
                }
            }
            Err(failure) => {
                eprintln!("[fuzz] seed {seed} FAILED: shrinking…");
                let (min_spec, min_failure) =
                    shrink_kinds(&spec, config.inject, failure, &kinds, config.replay);
                match write_reproducer(&config.out_dir, &min_spec, config.inject, &min_failure) {
                    Ok(dir) => eprintln!("[fuzz] reproducer written to {}", dir.display()),
                    Err(e) => eprintln!("[fuzz] failed to write reproducer: {e}"),
                }
                stats
                    .failures
                    .push((seed, min_spec, min_failure.to_string()));
            }
        }
        if stats.cases_run % 100 == 0 {
            eprintln!(
                "[fuzz] {} cases, {} transformed ({} sites), {} failures, {:.1}s",
                stats.cases_run,
                stats.transformed,
                stats.sites_converted,
                stats.failures.len(),
                started.elapsed().as_secs_f64()
            );
        }
    }
    stats
}

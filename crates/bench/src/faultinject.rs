//! Deterministic fault-injection harness: the robustness gate.
//!
//! Each [`FaultClass`] stages one failure mode against a small quick-scale
//! benchmark suite running on the experiment engine, then asserts the
//! engine's containment contract (DESIGN.md §7.8):
//!
//! * the suite **completes** — no process abort, every job yields a
//!   [`JobResult`];
//! * the injected failure surfaces as the *typed* outcome for its class
//!   (`Faulted`, `TimedOut`, a retried/`Recovered` job, or a quarantined
//!   corrupt cache entry), visible in `EngineStats::summary`;
//! * every **unaffected** job's statistics are bit-identical to a clean
//!   run — fault handling never perturbs healthy results.
//!
//! Everything is deterministic in the harness seed: the seed picks the
//! panicked job index, the corrupted cache entry, and the flipped bit,
//! so a failing CI run is replayable with `--seed N`.
//!
//! The module is the library behind the `faultinject` binary and the
//! `tests/fault_recovery.rs` integration tests.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;
use vanguard_bpred::Combined;
use vanguard_core::engine::{
    Engine, FaultPolicy, JobResult, PredictorKind, SimJob, SweepCell, DEFAULT_MAX_PROFILE_STEPS,
};
use vanguard_core::{ExperimentInput, RunInput, TransformOptions};
use vanguard_isa::{
    AluOp, CmpKind, CondKind, DecodedImage, Inst, Memory, Operand, Program, ProgramBuilder, Reg,
};
use vanguard_sim::{MachineConfig, SimError, SimResult, SimStats, Simulator, StopCause};
use vanguard_workloads::suite;

use crate::{quick_spec, to_experiment_input, BenchScale};

/// Benchmarks of the fault suite (a prefix of SPEC2006 INT at quick
/// scale — large enough to prove non-perturbation, small enough for CI).
const FAULT_SUITE_SPECS: usize = 4;

/// Declares [`FaultClass`] from one variant list: the enum, the
/// [`FaultClass::ALL`] run order, and the CLI name mapping all derive
/// from the same declaration, so a class added here is automatically in
/// the `--all-classes` suite, the binary's class list, and the
/// `BENCH_robustness.json` refresh — there is no hand-maintained array
/// to forget.
macro_rules! declare_fault_classes {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A fault class the harness can stage.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum FaultClass {
            $($(#[$doc])* $variant,)+
        }

        impl FaultClass {
            /// Every class, in the order the harness runs them.
            pub const ALL: [FaultClass; [$(FaultClass::$variant),+].len()] =
                [$(FaultClass::$variant),+];

            /// The CLI name of the class.
            pub fn name(self) -> &'static str {
                match self {
                    $(FaultClass::$variant => $name,)+
                }
            }

            /// Parses a `--class` flag value.
            pub fn parse(s: &str) -> Option<FaultClass> {
                FaultClass::ALL.into_iter().find(|c| c.name() == s)
            }
        }
    };
}

declare_fault_classes! {
    /// A guest program traps (committed load fault) on one REF input.
    GuestTrap => "guest-trap",
    /// A guest program wedges in an effectively-infinite loop; the
    /// cycle-budget watchdog must cancel it.
    Hang => "hang",
    /// A worker thread panics mid-job; the retry must recover it.
    WorkerPanic => "worker-panic",
    /// An on-disk profile cache entry is truncated.
    CacheTruncation => "cache-truncation",
    /// A single bit of an on-disk profile cache entry is flipped.
    CacheBitflip => "cache-bitflip",
    /// A steady-state replay memo entry is corrupted in place; the
    /// replay verify guards must detect it and fall back to full
    /// simulation bit-identically.
    ReplayDivergence => "replay-divergence",
    /// A sweep worker *process* is `SIGKILL`ed mid-sweep; the resumed
    /// sweep must complete off the journal with no job's side effects
    /// run twice and a merged output byte-identical to an uninterrupted
    /// serial run, at shard counts 1, 2, and 4.
    KillAndResume => "kill-and-resume",
    /// A claim holder dies (`SIGKILL`) or wedges (live but silent)
    /// mid-job; a peer must steal the claim once its lease runs out and
    /// the sweep must finish in the *same* run — no manual resume, no
    /// duplicate journal records, byte-identical merged output. Orphaned
    /// claim files are swept to quarantine on startup.
    DeadClaimHolder => "dead-claim-holder",
    /// Workers are `SIGKILL`ed while the journal is compacting under a
    /// tiny threshold; the snapshot + tail must survive the crash and
    /// the resumed sweep must complete with no duplicate or resurrected
    /// records and byte-identical merged output.
    CompactionUnderKill => "compaction-under-kill",
    /// The artifact cache hits disk pressure: stores fail outright
    /// (simulated `ENOSPC` via a poisoned cache path) or a byte budget
    /// evicts entries under the suite's feet. Both degrade to
    /// compute-without-store — counted in `EngineStats`, never a job
    /// failure, bit-identical results.
    CacheEnospc => "cache-enospc",
}

/// One named assertion of a class scenario.
#[derive(Clone, Debug)]
pub struct Check {
    /// What the assertion claims.
    pub name: &'static str,
    /// Whether it held.
    pub passed: bool,
    /// Evidence (counts, first mismatch, paths).
    pub detail: String,
}

/// The outcome of staging one fault class.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// The staged class.
    pub class: FaultClass,
    /// Every assertion the scenario made.
    pub checks: Vec<Check>,
    /// The fault run's `EngineStats::summary` rendering.
    pub summary: String,
}

impl ClassReport {
    /// Whether every check of the scenario held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// Watchdog overhead on a clean run (the < 2 % gate of
/// `BENCH_robustness.json`).
#[derive(Clone, Copy, Debug)]
pub struct OverheadReport {
    /// Measurement rounds (min-of-N on each side).
    pub rounds: usize,
    /// Best worker-summed simulate-stage time with watchdogs disabled.
    pub clean_sim_ms: f64,
    /// Best worker-summed simulate-stage time with both watchdogs armed
    /// at non-tripping budgets.
    pub armed_sim_ms: f64,
}

impl OverheadReport {
    /// Relative cost of arming the watchdogs, in percent (clamped at 0:
    /// a faster armed run is measurement noise, not a negative cost).
    pub fn overhead_pct(&self) -> f64 {
        if self.clean_sim_ms <= 0.0 {
            return 0.0;
        }
        ((self.armed_sim_ms - self.clean_sim_ms) / self.clean_sim_ms * 100.0).max(0.0)
    }
}

/// A policy independent of the caller's environment (the harness never
/// wants `VANGUARD_*` variables steering a determinism gate), with a
/// short retry backoff to keep scenario runs fast.
fn isolated_policy() -> FaultPolicy {
    FaultPolicy {
        backoff: Duration::from_millis(1),
        ..FaultPolicy::default()
    }
}

fn suite_inputs() -> Vec<ExperimentInput> {
    suite::spec2006_int()
        .into_iter()
        .take(FAULT_SUITE_SPECS)
        .map(|s| to_experiment_input(quick_spec(s, BenchScale::Quick).build()))
        .collect()
}

/// Builds an engine holding the fault suite (plus an optional victim
/// benchmark appended *after* the suite, so suite job indices match the
/// clean run), returning the flat job list and the suite-only job count.
fn engine_with_suite(
    victim: Option<ExperimentInput>,
    policy: FaultPolicy,
) -> (Engine, Vec<SimJob>, usize) {
    let mut engine = Engine::new();
    engine.set_fault_policy(policy);
    let mut cells = Vec::new();
    for input in suite_inputs() {
        let bench = engine.add_benchmark(input);
        cells.push(SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        });
    }
    let suite_jobs = engine.jobs_for_cells(&cells).len();
    if let Some(v) = victim {
        let bench = engine.add_benchmark(v);
        cells.push(SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        });
    }
    let jobs = engine.jobs_for_cells(&cells);
    (engine, jobs, suite_jobs)
}

fn run_all(engine: &Engine, jobs: &[SimJob]) -> Vec<JobResult> {
    engine.run_jobs(
        jobs,
        &TransformOptions::default(),
        DEFAULT_MAX_PROFILE_STEPS,
    )
}

/// The clean-run reference: per-job [`SimStats`] of the fault suite with
/// no victim and no watchdogs. Every scenario's non-perturbation check
/// compares against this, bitwise.
pub fn clean_suite_stats() -> Vec<SimStats> {
    let (engine, jobs, _) = engine_with_suite(None, isolated_policy());
    run_all(&engine, &jobs)
        .iter()
        .map(|r| r.expect_completed().stats)
        .collect()
}

/// A benchmark that profiles cleanly on TRAIN but commits a load from an
/// unmapped address on REF: the canonical guest-trap victim. The load
/// address comes from `r20`, mapped for TRAIN and wild for REF.
pub fn trap_victim() -> ExperimentInput {
    let mut pb = ProgramBuilder::new();
    let main = pb.block("main");
    pb.push(main, Inst::load(Reg(21), Reg(20), 0));
    pb.push(main, Inst::Halt);
    pb.set_entry(main);
    let program = pb.finish().expect("trap victim is structurally valid");
    let mut train_mem = Memory::new();
    train_mem.map_region(0x1000, 4096);
    ExperimentInput {
        name: "victim-trap".into(),
        program,
        train: RunInput {
            memory: train_mem,
            init_regs: vec![(Reg(20), 0x1000)],
        },
        refs: vec![RunInput {
            memory: Memory::new(),
            init_regs: vec![(Reg(20), 0xdead_0000)],
        }],
        seed: None,
    }
}

/// A benchmark that halts after 64 iterations on TRAIN but spins for
/// 2^64 iterations on REF (`r1` starts at 0 and wraps): the hang victim
/// only a watchdog can stop.
pub fn hang_victim() -> ExperimentInput {
    let mut pb = ProgramBuilder::new();
    let spin = pb.block("spin");
    let done = pb.block("done");
    pb.push(
        spin,
        Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
    );
    pb.push(
        spin,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(2),
            a: Reg(1),
            b: Operand::Imm(0),
        },
    );
    pb.push(
        spin,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(2),
            target: spin,
        },
    );
    pb.fallthrough(spin, done);
    pb.push(done, Inst::Halt);
    pb.set_entry(spin);
    let program = pb.finish().expect("hang victim is structurally valid");
    ExperimentInput {
        name: "victim-hang".into(),
        program,
        train: RunInput {
            memory: Memory::new(),
            init_regs: vec![(Reg(1), 64)],
        },
        refs: vec![RunInput {
            memory: Memory::new(),
            init_regs: vec![(Reg(1), 0)],
        }],
        seed: None,
    }
}

fn push_check(checks: &mut Vec<Check>, name: &'static str, passed: bool, detail: String) {
    checks.push(Check {
        name,
        passed,
        detail,
    });
}

/// Bitwise comparison of suite-job statistics against the clean run,
/// reporting the first divergent job.
fn suite_identical(results: &[JobResult], clean: &[SimStats]) -> (bool, String) {
    if results.len() != clean.len() {
        return (
            false,
            format!("{} results vs {} clean jobs", results.len(), clean.len()),
        );
    }
    for (i, (r, c)) in results.iter().zip(clean).enumerate() {
        match r.success() {
            Some(s) if s.stats == *c => {}
            Some(_) => return (false, format!("job {i} stats diverged from the clean run")),
            None => return (false, format!("job {i} did not complete: {r:?}")),
        }
    }
    (true, format!("{} jobs bit-identical", clean.len()))
}

fn guest_trap_class(scratch: &Path, clean: &[SimStats]) -> ClassReport {
    let qdir = scratch.join("quarantine-guest-trap");
    let _ = fs::remove_dir_all(&qdir);
    let mut policy = isolated_policy();
    policy.quarantine_dir = Some(qdir.clone());
    let (engine, jobs, nsuite) = engine_with_suite(Some(trap_victim()), policy);
    let results = run_all(&engine, &jobs);
    let stats = engine.stats();
    let mut checks = Vec::new();

    push_check(
        &mut checks,
        "suite completes without aborting",
        results.len() == jobs.len(),
        format!("{} of {} jobs reported", results.len(), jobs.len()),
    );
    let victim = &results[nsuite..];
    let all_faulted = victim.iter().all(|r| {
        matches!(
            r,
            JobResult::Faulted {
                trap: SimError::LoadFault { .. },
                ..
            }
        )
    });
    push_check(
        &mut checks,
        "victim jobs fault with a typed load trap",
        all_faulted,
        format!("{victim:?}"),
    );
    let (same, detail) = suite_identical(&results[..nsuite], clean);
    push_check(
        &mut checks,
        "unaffected suite is bit-identical",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "summary counts the faulted jobs",
        stats.jobs_faulted == victim.len() as u64 && stats.summary().contains("faulted"),
        format!("jobs_faulted = {}", stats.jobs_faulted),
    );
    let repro_ok = fs::read_dir(&qdir)
        .map(|entries| {
            entries.flatten().any(|e| {
                e.path().join("repro.txt").is_file() && e.path().join("program.asm").is_file()
            })
        })
        .unwrap_or(false);
    push_check(
        &mut checks,
        "quarantine reproducer written",
        repro_ok,
        qdir.display().to_string(),
    );
    // Replayability: a fresh engine reproduces the identical trap.
    let (replay_engine, replay_jobs, _) = {
        let mut engine = Engine::new();
        engine.set_fault_policy(isolated_policy());
        let bench = engine.add_benchmark(trap_victim());
        let jobs = engine.jobs_for_cells(&[SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }]);
        (engine, jobs, 0usize)
    };
    let replay = run_all(&replay_engine, &replay_jobs);
    let replays = victim.iter().zip(&replay).all(|(a, b)| match (a, b) {
        (
            JobResult::Faulted {
                trap: t1,
                pc: p1,
                cycle: c1,
                ..
            },
            JobResult::Faulted {
                trap: t2,
                pc: p2,
                cycle: c2,
                ..
            },
        ) => t1 == t2 && p1 == p2 && c1 == c2,
        _ => false,
    });
    push_check(
        &mut checks,
        "fault replays deterministically",
        replays,
        format!("{replay:?}"),
    );
    ClassReport {
        class: FaultClass::GuestTrap,
        checks,
        summary: stats.summary(),
    }
}

fn hang_class(clean: &[SimStats]) -> ClassReport {
    // Budget: far above anything a healthy suite job needs, far below
    // the victim's 2^64-iteration spin.
    let budget = clean.iter().map(|s| s.cycles).max().unwrap_or(0) * 4 + 100_000;
    let mut policy = isolated_policy();
    policy.max_cycles = Some(budget);
    let (engine, jobs, nsuite) = engine_with_suite(Some(hang_victim()), policy);
    let results = run_all(&engine, &jobs);
    let stats = engine.stats();
    let mut checks = Vec::new();

    let victim = &results[nsuite..];
    let timed_out = victim
        .iter()
        .all(|r| matches!(r, JobResult::TimedOut { cycles, .. } if *cycles >= budget));
    push_check(
        &mut checks,
        "watchdog cancels the wedged jobs",
        timed_out,
        format!("budget {budget} cycles; victim outcomes {victim:?}"),
    );
    let (same, detail) = suite_identical(&results[..nsuite], clean);
    push_check(
        &mut checks,
        "armed watchdog does not perturb the suite",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "summary counts the timed-out jobs",
        stats.jobs_timed_out == victim.len() as u64 && stats.summary().contains("timed out"),
        format!("jobs_timed_out = {}", stats.jobs_timed_out),
    );
    ClassReport {
        class: FaultClass::Hang,
        checks,
        summary: stats.summary(),
    }
}

fn worker_panic_class(seed: u64, clean: &[SimStats]) -> ClassReport {
    let (engine, jobs, _) = engine_with_suite(None, isolated_policy());
    let target = (seed as usize) % jobs.len();
    engine.inject_worker_panic(target, 1);
    let results = run_all(&engine, &jobs);
    let stats = engine.stats();
    let mut checks = Vec::new();

    push_check(
        &mut checks,
        "panicked job recovers via retry",
        results[target].is_completed() && results[target].retried(),
        format!("job {target}: {:?}", results[target]),
    );
    let (same, detail) = suite_identical(&results, clean);
    push_check(
        &mut checks,
        "recovered run is bit-identical to clean",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "summary counts the retry, no failures",
        stats.jobs_retried == 1 && stats.jobs_failed == 0 && stats.summary().contains("retried"),
        format!(
            "jobs_retried = {}, jobs_failed = {}",
            stats.jobs_retried, stats.jobs_failed
        ),
    );
    ClassReport {
        class: FaultClass::WorkerPanic,
        checks,
        summary: stats.summary(),
    }
}

/// Truncates a cache entry to half its length.
fn truncate_entry(path: &Path) -> std::io::Result<()> {
    let data = fs::read(path)?;
    fs::write(path, &data[..data.len() / 2])
}

/// Flips one seed-chosen bit of a cache entry.
fn bitflip_entry(path: &Path, seed: u64) -> std::io::Result<()> {
    let mut data = fs::read(path)?;
    let i = if data.len() > 21 {
        20 + (seed as usize % (data.len() - 20))
    } else {
        data.len().saturating_sub(1)
    };
    data[i] ^= 1 << (seed % 8) as u8;
    fs::write(path, &data)
}

fn cache_class(class: FaultClass, seed: u64, scratch: &Path, clean: &[SimStats]) -> ClassReport {
    let cdir = scratch.join(format!("cache-{}", class.name()));
    let _ = fs::remove_dir_all(&cdir);
    let mut policy = isolated_policy();
    policy.cache_dir = Some(cdir.clone());
    let mut checks = Vec::new();

    // Populate the disk cache with a throwaway engine.
    {
        let (engine, jobs, _) = engine_with_suite(None, policy.clone());
        run_all(&engine, &jobs);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&cdir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "bin"))
                .collect()
        })
        .unwrap_or_default();
    entries.sort();
    push_check(
        &mut checks,
        "disk cache populated",
        !entries.is_empty(),
        format!("{} entries in {}", entries.len(), cdir.display()),
    );
    if entries.is_empty() {
        return ClassReport {
            class,
            checks,
            summary: String::new(),
        };
    }
    let target = &entries[seed as usize % entries.len()];
    let corrupted = match class {
        FaultClass::CacheTruncation => truncate_entry(target),
        _ => bitflip_entry(target, seed),
    };
    push_check(
        &mut checks,
        "entry corrupted on disk",
        corrupted.is_ok(),
        target.display().to_string(),
    );

    // Recovery: a fresh engine over the damaged cache.
    let (engine, jobs, _) = engine_with_suite(None, policy.clone());
    let results = run_all(&engine, &jobs);
    let stats = engine.stats();
    let (same, detail) = suite_identical(&results, clean);
    push_check(
        &mut checks,
        "corrupt entry evicted and recomputed bit-identically",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "corruption detected and counted",
        stats.cache_corrupt >= 1,
        format!("cache_corrupt = {}", stats.cache_corrupt),
    );
    let quarantined = fs::read_dir(cdir.join("quarantine"))
        .map(|rd| rd.count() >= 1)
        .unwrap_or(false);
    push_check(
        &mut checks,
        "corrupt entry quarantined, not deleted silently",
        quarantined,
        cdir.join("quarantine").display().to_string(),
    );
    // Self-healing: the recomputed entry was re-stored, so a third
    // engine sees a fully healthy cache.
    let (healed, jobs2, _) = engine_with_suite(None, policy);
    run_all(&healed, &jobs2);
    push_check(
        &mut checks,
        "cache self-heals after recompute",
        healed.stats().cache_corrupt == 0,
        format!("cache_corrupt = {}", healed.stats().cache_corrupt),
    );
    ClassReport {
        class,
        checks,
        summary: stats.summary(),
    }
}

/// A steady-state loop that the replay layer memoizes heavily: the
/// replay-divergence victim. Finite (50 000 iterations), pure ALU body.
pub fn replay_victim() -> Program {
    let mut pb = ProgramBuilder::new();
    let spin = pb.block("spin");
    let done = pb.block("done");
    pb.push(
        spin,
        Inst::alu(
            AluOp::Add,
            Reg(3),
            Operand::Reg(Reg(3)),
            Operand::Reg(Reg(1)),
        ),
    );
    pb.push(
        spin,
        Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
    );
    pb.push(
        spin,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(2),
            a: Reg(1),
            b: Operand::Imm(0),
        },
    );
    pb.push(
        spin,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(2),
            target: spin,
        },
    );
    pb.fallthrough(spin, done);
    pb.push(done, Inst::Halt);
    pb.set_entry(spin);
    pb.finish().expect("replay victim is structurally valid")
}

/// Stages the replay-divergence class: the simulator's replay memo
/// table is deliberately corrupted ([`Simulator::set_replay_corruption`]
/// flips one guarded quantity of every entry at record time), and the
/// verify guards must catch every corrupted entry, fall back to full
/// simulation, and still produce a run bit-identical to replay-off.
/// Unlike the engine-level classes, the fault lives *inside* one
/// simulation, so the victim runs on the simulator directly.
fn replay_divergence_class(seed: u64) -> ClassReport {
    let program = replay_victim();
    let image = std::sync::Arc::new(DecodedImage::build(&program));
    let run = |replay: bool, corrupt: Option<u64>| -> SimResult {
        let mut sim = Simulator::with_image(
            image.clone(),
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(replay);
        if let Some(seed) = corrupt {
            sim.set_replay_corruption(seed);
        }
        sim.set_reg(Reg(1), 50_000);
        let res = sim.run().expect("replay victim never faults");
        assert_eq!(res.stop, StopCause::Halted);
        res
    };
    let off = run(false, None);
    let clean_on = run(true, None);
    let corrupted = run(true, Some(seed));
    let mut checks = Vec::new();

    push_check(
        &mut checks,
        "victim exercises replay when healthy",
        clean_on.replay.hits > 100 && clean_on.replay.recordings >= 1,
        format!("{:?}", clean_on.replay),
    );
    push_check(
        &mut checks,
        "healthy replay is bit-identical to replay-off",
        clean_on.stats == off.stats && clean_on.regs == off.regs,
        format!(
            "on {:?} vs off {:?}",
            clean_on.stats.cycles, off.stats.cycles
        ),
    );
    push_check(
        &mut checks,
        "memo entries corrupted in place",
        corrupted.replay.corrupted_entries >= 1,
        format!("corrupted_entries = {}", corrupted.replay.corrupted_entries),
    );
    push_check(
        &mut checks,
        "verify guard rejects every corrupted entry",
        corrupted.replay.hits == 0 && corrupted.replay.divergences >= 1,
        format!("{:?}", corrupted.replay),
    );
    push_check(
        &mut checks,
        "corrupted run falls back bit-identically",
        corrupted.stats == off.stats
            && corrupted.regs == off.regs
            && corrupted.memory.written_words() == off.memory.written_words(),
        format!(
            "corrupted cycles {} vs replay-off {}",
            corrupted.stats.cycles, off.stats.cycles
        ),
    );
    ClassReport {
        class: FaultClass::ReplayDivergence,
        checks,
        summary: format!(
            "replay  : {} corrupted entries, {} divergences, 0 hits, fell back to full simulation",
            corrupted.replay.corrupted_entries, corrupted.replay.divergences
        ),
    }
}

/// Shard counts the kill-and-resume scenario must hold at.
const KILL_RESUME_SHARDS: [usize; 3] = [1, 2, 4];

/// Stages the kill-and-resume class: a quick sweep is run sharded, its
/// worker processes are `SIGKILL`ed after a seed-chosen number of jobs
/// journal, and the sweep is resumed off the journal. At every shard
/// count the contract is the same: the interruption is real (partial
/// journal), the resume completes, no job's side effects ran twice
/// (zero duplicate journal records), and the merged output is
/// byte-identical to an uninterrupted serial single-process run.
///
/// Worker processes are spawned from [`sweep::harness_worker_exe`]:
/// the `faultinject` and `vanguard-sweep` binaries re-exec themselves
/// (both hook [`sweep::maybe_run_worker`]); test harnesses must point
/// `VANGUARD_SWEEP_WORKER_EXE` at the `vanguard-sweep` binary instead
/// (a re-exec'd libtest binary would run the whole test suite).
fn kill_and_resume_class(seed: u64, scratch: &Path) -> ClassReport {
    use crate::sweep::{self, ShardOptions, Sweep, SweepRequest};
    use vanguard_core::Journal;

    let mut checks = Vec::new();
    let mut summary = String::new();
    let report = |checks, summary| ClassReport {
        class: FaultClass::KillAndResume,
        checks,
        summary,
    };
    let worker_exe = match sweep::harness_worker_exe() {
        Ok(exe) => exe,
        Err(e) => {
            push_check(
                &mut checks,
                "worker executable resolves",
                false,
                e.to_string(),
            );
            return report(checks, summary);
        }
    };
    let request = SweepRequest::ci_quick();
    // The serial reference runs in its own cache directory: the
    // byte-identity claim must not depend on artifacts the sharded
    // runs produced.
    let serial_dir = scratch.join("kill-resume-serial");
    let _ = fs::remove_dir_all(&serial_dir);
    let serial_policy = FaultPolicy {
        cache_dir: Some(serial_dir.join("cache")),
        ..isolated_policy()
    };
    let serial = match Sweep::build(request.clone(), serial_policy) {
        Ok(sweep) => sweep.run_serial(),
        Err(e) => {
            push_check(&mut checks, "serial reference sweep builds", false, e);
            return report(checks, summary);
        }
    };

    for shards in KILL_RESUME_SHARDS {
        let dir = scratch.join(format!("kill-resume-{shards}"));
        let _ = fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");
        let policy = FaultPolicy {
            cache_dir: Some(cache_dir.clone()),
            ..isolated_policy()
        };
        let sweep_run = match Sweep::build(request.clone(), policy) {
            Ok(s) => s,
            Err(e) => {
                push_check(&mut checks, "sharded sweep builds", false, e);
                continue;
            }
        };
        let total = sweep_run.plan().len();
        let journal = Journal::new(dir.join("journal.vgj"));
        // Seed-chosen kill point, early enough that in-flight jobs
        // (one per shard, each throttled 40 ms) cannot finish the
        // sweep before the SIGKILL lands.
        let kill_after = 1 + (seed as usize % 2);
        let mut sink = std::io::sink();
        let mut kill_opts = ShardOptions::new(worker_exe.clone(), shards, cache_dir.clone());
        kill_opts.kill_after = Some(kill_after);
        kill_opts.throttle_ms = Some(40);
        let first = sweep::run_sharded(&sweep_run, &journal, &kill_opts, &mut sink);
        let partial = match &first {
            Ok(run) => run.killed && run.completed < total,
            Err(_) => false,
        };
        push_check(
            &mut checks,
            "SIGKILL mid-sweep leaves a partial journal",
            partial,
            format!("shards={shards}: kill after {kill_after} -> {first:?} of {total} jobs"),
        );
        let second = sweep::run_sharded(
            &sweep_run,
            &journal,
            &ShardOptions::new(worker_exe.clone(), shards, cache_dir.clone()),
            &mut sink,
        );
        let resumed = matches!(&second, Ok(run) if run.complete());
        push_check(
            &mut checks,
            "resume completes the sweep off the journal",
            resumed,
            format!("shards={shards}: {second:?}"),
        );
        let snapshot = match journal.read() {
            Ok(s) => s,
            Err(e) => {
                push_check(
                    &mut checks,
                    "journal readable after resume",
                    false,
                    format!("shards={shards}: {e}"),
                );
                continue;
            }
        };
        let duplicates = snapshot.duplicate_keys();
        push_check(
            &mut checks,
            "no job ran its side effects twice",
            duplicates.is_empty(),
            format!(
                "shards={shards}: {} records, duplicates {duplicates:?}",
                snapshot.records.len()
            ),
        );
        let merged = sweep_run.merged(&snapshot);
        let identical = merged.as_deref() == Ok(serial.as_str());
        push_check(
            &mut checks,
            "merged output byte-identical to serial run",
            identical,
            match &merged {
                Ok(m) if identical => format!("shards={shards}: {} bytes", m.len()),
                Ok(_) => format!("shards={shards}: merged text diverged from serial"),
                Err(missing) => format!("shards={shards}: merge missing {} jobs", missing.len()),
            },
        );
        let first_completed = first.map(|r| r.completed).unwrap_or(0);
        let _ = writeln!(
            summary,
            "shards={shards}: killed at {first_completed}/{total}, resumed to {}/{total}",
            snapshot.records.len()
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&serial_dir);
    report(checks, summary)
}

/// Builds a serial-reference merged output for the sweep classes, in
/// its own cache directory so the byte-identity claims never depend on
/// artifacts a sharded run produced. Returns `Err(check)` with a failed
/// check when the build fails.
fn serial_reference(scratch: &Path, tag: &str) -> Result<String, Check> {
    use crate::sweep::{Sweep, SweepRequest};
    let serial_dir = scratch.join(format!("{tag}-serial"));
    let _ = fs::remove_dir_all(&serial_dir);
    let policy = FaultPolicy {
        cache_dir: Some(serial_dir.join("cache")),
        ..isolated_policy()
    };
    let out = match Sweep::build(SweepRequest::ci_quick(), policy) {
        Ok(sweep) => Ok(sweep.run_serial()),
        Err(e) => Err(Check {
            name: "serial reference sweep builds",
            passed: false,
            detail: e,
        }),
    };
    let _ = fs::remove_dir_all(&serial_dir);
    out
}

/// Stages the dead-claim-holder class in three acts:
///
/// 1. **Wedged holder** — the harness itself claims a seed-chosen job
///    and holds the (live) lock without heartbeating for the whole run.
///    Workers under a 150 ms lease must report the claim `Expired`,
///    steal the job, and finish the sweep with exactly one record.
/// 2. **Dead holder** — one of two workers is `SIGKILL`ed mid-sweep.
///    The OS releases its claim locks outright, the survivor (or a
///    respawned fleet) takes over, and the *same* `run_sharded` call
///    completes: no manual resume, no duplicates, byte-identical
///    output. This is the acceptance scenario of DESIGN.md §7.12.
/// 3. **Orphan sweep** — a stale unlocked claim file is swept to the
///    cache quarantine by `sweep_stale_claims` once its lease expires.
fn dead_claim_holder_class(seed: u64, scratch: &Path) -> ClassReport {
    use crate::sweep::{self, ShardOptions, Sweep, SweepRequest, JOB_CLAIM_TAG};
    use vanguard_core::{DiskCache, Journal};

    let mut checks = Vec::new();
    let mut summary = String::new();
    let report = |checks, summary| ClassReport {
        class: FaultClass::DeadClaimHolder,
        checks,
        summary,
    };
    let worker_exe = match sweep::harness_worker_exe() {
        Ok(exe) => exe,
        Err(e) => {
            push_check(
                &mut checks,
                "worker executable resolves",
                false,
                e.to_string(),
            );
            return report(checks, summary);
        }
    };
    let serial = match serial_reference(scratch, "dead-claim") {
        Ok(s) => s,
        Err(check) => {
            checks.push(check);
            return report(checks, summary);
        }
    };

    // Act 1: a live-but-wedged holder. The harness claim never
    // heartbeats, so its mtime ages past the 150 ms worker lease.
    {
        let dir = scratch.join("dead-claim-wedged");
        let _ = fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");
        let policy = FaultPolicy {
            cache_dir: Some(cache_dir.clone()),
            ..isolated_policy()
        };
        match Sweep::build(SweepRequest::ci_quick(), policy) {
            Ok(sweep_run) => {
                let victim = sweep_run.plan()[seed as usize % sweep_run.plan().len()].key;
                let claims = DiskCache::new(&cache_dir);
                let wedged = claims.try_claim(JOB_CLAIM_TAG, victim);
                push_check(
                    &mut checks,
                    "harness wedges a live claim holder",
                    matches!(wedged, Ok(Some(_))),
                    format!("victim job {victim:016x}"),
                );
                let journal = Journal::new(dir.join("journal.vgj"));
                let mut opts = ShardOptions::new(worker_exe.clone(), 2, cache_dir.clone());
                opts.lease_ms = Some(150);
                opts.throttle_ms = Some(10);
                let mut sink = std::io::sink();
                let run = sweep::run_sharded(&sweep_run, &journal, &opts, &mut sink);
                let healed = matches!(&run, Ok(r) if r.complete() && !r.killed);
                push_check(
                    &mut checks,
                    "lease expiry steals the wedged job in-run",
                    healed,
                    format!("{run:?}"),
                );
                let snapshot = journal.read().unwrap_or_default();
                push_check(
                    &mut checks,
                    "steal produced no duplicate records",
                    snapshot.duplicate_keys().is_empty()
                        && snapshot.records.len() == sweep_run.plan().len(),
                    format!(
                        "{} records, duplicates {:?}",
                        snapshot.records.len(),
                        snapshot.duplicate_keys()
                    ),
                );
                let merged = sweep_run.merged(&snapshot);
                push_check(
                    &mut checks,
                    "wedged-holder output byte-identical to serial",
                    merged.as_deref() == Ok(serial.as_str()),
                    format!("{} bytes expected", serial.len()),
                );
                let _ = writeln!(
                    summary,
                    "wedged: {}/{} jobs after steal",
                    snapshot.records.len(),
                    sweep_run.plan().len()
                );
                drop(wedged);
            }
            Err(e) => push_check(&mut checks, "wedged-holder sweep builds", false, e),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // Act 2: a SIGKILLed holder. kill_count = 1 wounds the fleet
    // without aborting the parent — the run must self-heal in place.
    {
        let dir = scratch.join("dead-claim-killed");
        let _ = fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");
        let policy = FaultPolicy {
            cache_dir: Some(cache_dir.clone()),
            ..isolated_policy()
        };
        match Sweep::build(SweepRequest::ci_quick(), policy) {
            Ok(sweep_run) => {
                let journal = Journal::new(dir.join("journal.vgj"));
                let mut opts = ShardOptions::new(worker_exe.clone(), 2, cache_dir.clone());
                opts.kill_after = Some(1);
                opts.kill_count = Some(1);
                opts.throttle_ms = Some(40);
                opts.lease_ms = Some(150);
                let mut sink = std::io::sink();
                let run = sweep::run_sharded(&sweep_run, &journal, &opts, &mut sink);
                let healed = matches!(&run, Ok(r) if r.complete() && !r.killed);
                push_check(
                    &mut checks,
                    "SIGKILLed shard self-heals with no resume",
                    healed,
                    format!("{run:?}"),
                );
                let snapshot = journal.read().unwrap_or_default();
                push_check(
                    &mut checks,
                    "self-heal produced no duplicate records",
                    snapshot.duplicate_keys().is_empty(),
                    format!(
                        "{} records, duplicates {:?}",
                        snapshot.records.len(),
                        snapshot.duplicate_keys()
                    ),
                );
                let merged = sweep_run.merged(&snapshot);
                push_check(
                    &mut checks,
                    "self-healed output byte-identical to serial",
                    merged.as_deref() == Ok(serial.as_str()),
                    format!("{} bytes expected", serial.len()),
                );
                let _ = writeln!(
                    summary,
                    "killed: {}/{} jobs after self-heal",
                    snapshot.records.len(),
                    sweep_run.plan().len()
                );
            }
            Err(e) => push_check(&mut checks, "killed-holder sweep builds", false, e),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // Act 3: orphaned claim debris is swept to quarantine on startup.
    {
        let cache_dir = scratch.join("dead-claim-orphan");
        let _ = fs::remove_dir_all(&cache_dir);
        let _ = fs::create_dir_all(&cache_dir);
        let orphan = cache_dir.join(format!("claim-{JOB_CLAIM_TAG}-{:016x}.lock", 0xdead_u64));
        let _ = fs::write(&orphan, b"orphan");
        std::thread::sleep(Duration::from_millis(120));
        let cache = DiskCache::new(&cache_dir);
        let swept = cache.sweep_stale_claims(Duration::from_millis(100));
        let quarantined = cache_dir
            .join("quarantine")
            .join(orphan.file_name().unwrap_or_default())
            .is_file();
        push_check(
            &mut checks,
            "stale orphan claim swept to quarantine",
            matches!(swept, Ok(1)) && !orphan.exists() && quarantined,
            format!("swept = {swept:?}"),
        );
        let _ = fs::remove_dir_all(&cache_dir);
    }
    report(checks, summary)
}

/// Stages the compaction-under-kill class: a sharded sweep runs with a
/// deliberately tiny journal-compaction threshold so snapshots are cut
/// mid-run, the whole fleet is `SIGKILL`ed, and the resumed sweep (still
/// compacting) must complete off the snapshot + tail with no duplicate
/// or resurrected records and a merged output byte-identical to serial.
fn compaction_under_kill_class(seed: u64, scratch: &Path) -> ClassReport {
    use crate::sweep::{self, ShardOptions, Sweep, SweepRequest};
    use vanguard_core::Journal;

    const COMPACT_BYTES: u64 = 256;
    let mut checks = Vec::new();
    let mut summary = String::new();
    let report = |checks, summary| ClassReport {
        class: FaultClass::CompactionUnderKill,
        checks,
        summary,
    };
    let worker_exe = match sweep::harness_worker_exe() {
        Ok(exe) => exe,
        Err(e) => {
            push_check(
                &mut checks,
                "worker executable resolves",
                false,
                e.to_string(),
            );
            return report(checks, summary);
        }
    };
    let serial = match serial_reference(scratch, "compact-kill") {
        Ok(s) => s,
        Err(check) => {
            checks.push(check);
            return report(checks, summary);
        }
    };

    let dir = scratch.join("compact-kill");
    let _ = fs::remove_dir_all(&dir);
    let cache_dir = dir.join("cache");
    let policy = FaultPolicy {
        cache_dir: Some(cache_dir.clone()),
        ..isolated_policy()
    };
    let sweep_run = match Sweep::build(SweepRequest::ci_quick(), policy) {
        Ok(s) => s,
        Err(e) => {
            push_check(&mut checks, "sharded sweep builds", false, e);
            return report(checks, summary);
        }
    };
    let total = sweep_run.plan().len();
    let journal = Journal::new(dir.join("journal.vgj"));
    let kill_after = 1 + (seed as usize % 2);
    let mut sink = std::io::sink();
    let mut kill_opts = ShardOptions::new(worker_exe.clone(), 2, cache_dir.clone());
    kill_opts.kill_after = Some(kill_after);
    kill_opts.throttle_ms = Some(40);
    kill_opts.compact_bytes = Some(COMPACT_BYTES);
    let first = sweep::run_sharded(&sweep_run, &journal, &kill_opts, &mut sink);
    let partial = matches!(&first, Ok(run) if run.killed && run.completed < total);
    push_check(
        &mut checks,
        "SIGKILL mid-compaction leaves a partial journal",
        partial,
        format!("kill after {kill_after} -> {first:?} of {total} jobs"),
    );
    let mut resume_opts = ShardOptions::new(worker_exe, 2, cache_dir);
    resume_opts.compact_bytes = Some(COMPACT_BYTES);
    let second = sweep::run_sharded(&sweep_run, &journal, &resume_opts, &mut sink);
    push_check(
        &mut checks,
        "resume completes over the compacted journal",
        matches!(&second, Ok(run) if run.complete()),
        format!("{second:?}"),
    );
    push_check(
        &mut checks,
        "compaction actually fired (snapshot on disk)",
        journal.snapshot_path().is_file(),
        journal.snapshot_path().display().to_string(),
    );
    match journal.read() {
        Ok(snapshot) => {
            let duplicates = snapshot.duplicate_keys();
            push_check(
                &mut checks,
                "no duplicate or resurrected records",
                duplicates.is_empty() && snapshot.records.len() == total,
                format!(
                    "{} records of {total}, duplicates {duplicates:?}",
                    snapshot.records.len()
                ),
            );
            let merged = sweep_run.merged(&snapshot);
            push_check(
                &mut checks,
                "merged output byte-identical to serial run",
                merged.as_deref() == Ok(serial.as_str()),
                format!("{} bytes expected", serial.len()),
            );
            let first_completed = first.map(|r| r.completed).unwrap_or(0);
            let _ = writeln!(
                summary,
                "killed at {first_completed}/{total} (threshold {COMPACT_BYTES} B), \
                 resumed to {}/{total}",
                snapshot.records.len()
            );
        }
        Err(e) => push_check(
            &mut checks,
            "journal readable after resume",
            false,
            e.to_string(),
        ),
    }
    let _ = fs::remove_dir_all(&dir);
    report(checks, summary)
}

/// Stages the cache-ENOSPC class in two acts:
///
/// 1. **Failed stores** — the cache directory path runs *through a
///    regular file*, so every create fails (`ENOTDIR` stands in for
///    `ENOSPC`; permission bits are useless under root). The suite must
///    complete bit-identically, degrading to compute-without-store and
///    counting the failures.
/// 2. **Budget eviction** — a 1-byte `VANGUARD_CACHE_BUDGET`-style
///    budget evicts every unclaimed entry as it lands. The suite must
///    still complete bit-identically, with evictions counted.
fn cache_enospc_class(scratch: &Path, clean: &[SimStats]) -> ClassReport {
    let mut checks = Vec::new();
    let dir = scratch.join("cache-enospc");
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::create_dir_all(&dir);

    // Act 1: a poisoned cache path — every store (and load) errors.
    let blocker = dir.join("blocker");
    let _ = fs::write(&blocker, b"not a directory");
    let mut policy = isolated_policy();
    policy.cache_dir = Some(blocker.join("cache"));
    let (engine, jobs, _) = engine_with_suite(None, policy);
    let results = run_all(&engine, &jobs);
    let stats = engine.stats();
    let (same, detail) = suite_identical(&results, clean);
    push_check(
        &mut checks,
        "full-disk cache degrades to compute-without-store",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "failed stores counted, zero job failures",
        stats.cache_store_failures >= 1 && stats.jobs_failed == 0,
        format!(
            "cache_store_failures = {}, jobs_failed = {}",
            stats.cache_store_failures, stats.jobs_failed
        ),
    );
    push_check(
        &mut checks,
        "summary surfaces the store failures",
        stats.summary().contains("store failures"),
        stats.summary(),
    );

    // Act 2: a 1-byte budget — every store lands, then is evicted.
    let mut budget_policy = isolated_policy();
    budget_policy.cache_dir = Some(dir.join("budget-cache"));
    budget_policy.cache_budget = Some(1);
    let (budget_engine, budget_jobs, _) = engine_with_suite(None, budget_policy);
    let budget_results = run_all(&budget_engine, &budget_jobs);
    let budget_stats = budget_engine.stats();
    let (same, detail) = suite_identical(&budget_results, clean);
    push_check(
        &mut checks,
        "budget eviction does not perturb results",
        same,
        detail,
    );
    push_check(
        &mut checks,
        "evictions counted, zero job failures",
        budget_stats.cache_evictions >= 1 && budget_stats.jobs_failed == 0,
        format!(
            "cache_evictions = {}, jobs_failed = {}",
            budget_stats.cache_evictions, budget_stats.jobs_failed
        ),
    );
    let _ = fs::remove_dir_all(&dir);
    ClassReport {
        class: FaultClass::CacheEnospc,
        checks,
        summary: stats.summary(),
    }
}

/// Stages one fault class against the suite and checks the containment
/// contract. `scratch` hosts quarantine/cache directories (created as
/// needed); `clean` is the [`clean_suite_stats`] reference.
pub fn run_class(class: FaultClass, seed: u64, scratch: &Path, clean: &[SimStats]) -> ClassReport {
    match class {
        FaultClass::GuestTrap => guest_trap_class(scratch, clean),
        FaultClass::Hang => hang_class(clean),
        FaultClass::WorkerPanic => worker_panic_class(seed, clean),
        FaultClass::CacheTruncation | FaultClass::CacheBitflip => {
            cache_class(class, seed, scratch, clean)
        }
        FaultClass::ReplayDivergence => replay_divergence_class(seed),
        FaultClass::KillAndResume => kill_and_resume_class(seed, scratch),
        FaultClass::DeadClaimHolder => dead_claim_holder_class(seed, scratch),
        FaultClass::CompactionUnderKill => compaction_under_kill_class(seed, scratch),
        FaultClass::CacheEnospc => cache_enospc_class(scratch, clean),
    }
}

/// Measures the simulate-stage cost of arming both watchdogs at
/// non-tripping budgets, min-of-`rounds` per side (the
/// `BENCH_robustness.json` overhead figure).
pub fn measure_overhead(rounds: usize) -> OverheadReport {
    let run_side = |armed: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..rounds.max(1) {
            let mut policy = isolated_policy();
            if armed {
                policy.max_cycles = Some(u64::MAX / 2);
                policy.job_timeout = Some(Duration::from_secs(3600));
                // A non-evicting cache budget arms the disk-pressure
                // accounting path too, keeping the gate honest for the
                // full robustness configuration.
                policy.cache_budget = Some(u64::MAX / 2);
            }
            let (engine, jobs, _) = engine_with_suite(None, policy);
            run_all(&engine, &jobs);
            best = best.min(engine.stats().sim_nanos as f64 / 1e6);
        }
        best
    };
    OverheadReport {
        rounds: rounds.max(1),
        clean_sim_ms: run_side(false),
        armed_sim_ms: run_side(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_roundtrip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::parse(class.name()), Some(class));
        }
        assert_eq!(FaultClass::parse("no-such-class"), None);
    }

    #[test]
    fn victims_are_valid_programs() {
        for victim in [trap_victim(), hang_victim()] {
            assert!(victim.program.validate().is_ok(), "{}", victim.name);
            assert_eq!(victim.refs.len(), 1);
        }
    }

    #[test]
    fn trap_victim_profiles_cleanly_but_faults_on_ref() {
        let mut engine = Engine::new();
        engine.set_fault_policy(isolated_policy());
        let bench = engine.add_benchmark(trap_victim());
        let jobs = engine.jobs_for_cells(&[SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        }]);
        let results = run_all(&engine, &jobs);
        assert!(results.iter().all(|r| matches!(
            r,
            JobResult::Faulted {
                trap: SimError::LoadFault { .. },
                ..
            }
        )));
        // The profile stage itself succeeded (the failure is REF-only).
        assert_eq!(engine.stats().profile_misses, 1);
    }
}

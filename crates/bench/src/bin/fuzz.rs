//! `vanguard-fuzz`: differential fuzzing of the Decomposed Branch
//! Transformation.
//!
//! ```text
//! # campaign: 1000 seeded cases (or stop after 120 s), reproducers to ./fuzz-out
//! cargo run --release -p vanguard-bench --bin vanguard-fuzz -- \
//!     --cases 1000 --seed 0 --time-budget 120 --out fuzz-out
//!
//! # replay one (possibly shrunk) case with explicit knobs
//! cargo run --release -p vanguard-bench --bin vanguard-fuzz -- \
//!     --one 42 --sites 1 --side-insts 2 --iterations 10
//!
//! # prove the harness catches sabotage (test-only)
//! cargo run --release -p vanguard-bench --bin vanguard-fuzz -- \
//!     --cases 20 --inject flip-resolves
//! ```
//!
//! Exit status is non-zero iff any case failed (after shrinking and
//! writing reproducers), so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use vanguard_bench::fuzz::{
    kinds_for, run_case_kinds, run_fuzz, shrink_kinds, write_reproducer, FuzzConfig, Inject,
};
use vanguard_core::TransformKind;
use vanguard_workloads::FuzzSpec;

fn usage() -> ! {
    eprintln!(
        "usage: vanguard-fuzz [--cases N] [--seed S] [--time-budget SECS] [--out DIR]\n\
         \x20                  [--transform vanguard|meld|shadow|stacked]\n\
         \x20                  [--inject flip-resolves|faulting-loads] [--no-replay]\n\
         \x20                  [--one SEED [--sites N] [--side-insts N] [--stores N]\n\
         \x20                   [--persistent N] [--iterations N] [--cond-chain BOOL]\n\
         \x20                   [--shadow-temps BOOL] [--hoist-loads BOOL] [--max-hoist N]]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut cases: u64 = 1000;
    let mut seed: u64 = 0;
    let mut time_budget: Option<Duration> = None;
    let mut out_dir = PathBuf::from("fuzz-out");
    let mut inject: Option<Inject> = None;
    let mut transform: Option<TransformKind> = None;
    let mut one: Option<u64> = None;
    let mut replay = true;
    let mut overrides: Vec<(String, String)> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => cases = parse(args.next()),
            "--seed" => seed = parse(args.next()),
            "--time-budget" => time_budget = Some(Duration::from_secs(parse(args.next()))),
            "--out" => out_dir = PathBuf::from(parse::<String>(args.next())),
            "--transform" => {
                transform = Some(
                    args.next()
                        .as_deref()
                        .and_then(TransformKind::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--inject" => {
                inject = Some(
                    args.next()
                        .as_deref()
                        .and_then(Inject::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--one" => one = Some(parse(args.next())),
            "--no-replay" => replay = false,
            knob @ ("--sites" | "--side-insts" | "--stores" | "--persistent" | "--iterations"
            | "--cond-chain" | "--shadow-temps" | "--hoist-loads" | "--max-hoist") => {
                overrides.push((knob.to_string(), parse(args.next())));
            }
            _ => usage(),
        }
    }

    if let Some(seed) = one {
        // Replay mode: one case, knobs overridable for shrunk reproducers.
        let mut spec = FuzzSpec::from_seed(seed);
        for (knob, value) in &overrides {
            match knob.as_str() {
                "--sites" => spec.sites = value.parse().unwrap_or_else(|_| usage()),
                "--side-insts" => spec.side_insts = value.parse().unwrap_or_else(|_| usage()),
                "--stores" => spec.stores_per_side = value.parse().unwrap_or_else(|_| usage()),
                "--persistent" => spec.persistent = value.parse().unwrap_or_else(|_| usage()),
                "--iterations" => spec.iterations = value.parse().unwrap_or_else(|_| usage()),
                "--cond-chain" => spec.cond_chain = value.parse().unwrap_or_else(|_| usage()),
                "--shadow-temps" => spec.shadow_temps = value.parse().unwrap_or_else(|_| usage()),
                "--hoist-loads" => spec.hoist_loads = value.parse().unwrap_or_else(|_| usage()),
                "--max-hoist" => spec.max_hoist = value.parse().unwrap_or_else(|_| usage()),
                _ => unreachable!("knob list matches the parser"),
            }
        }
        eprintln!("[fuzz] replaying {spec:?}");
        let kinds = kinds_for(transform);
        return match run_case_kinds(&spec, inject, &kinds, replay) {
            Ok(sites) => {
                println!("seed {seed}: PASS ({sites} sites converted)");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (min_spec, min_failure) = shrink_kinds(&spec, inject, failure, &kinds, replay);
                println!("seed {seed}: FAIL\n{min_failure}");
                match write_reproducer(&out_dir, &min_spec, inject, &min_failure) {
                    Ok(dir) => eprintln!("[fuzz] reproducer written to {}", dir.display()),
                    Err(e) => eprintln!("[fuzz] failed to write reproducer: {e}"),
                }
                ExitCode::FAILURE
            }
        };
    }

    let config = FuzzConfig {
        cases,
        start_seed: seed,
        time_budget,
        out_dir,
        inject,
        transform,
        replay,
    };
    let stats = run_fuzz(&config);
    println!(
        "fuzz: {} cases, {} with converted sites ({} sites total), {} failures",
        stats.cases_run,
        stats.transformed,
        stats.sites_converted,
        stats.failures.len()
    );
    for (seed, spec, failure) in &stats.failures {
        println!("  seed {seed} (shrunk to {spec:?}):\n    {failure}");
    }
    if stats.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Host-side performance benchmark of the simulation engine.
//!
//! ```text
//! cargo run --release -p vanguard-bench --bin perfbench           # writes BENCH_sim.json
//! cargo run --release -p vanguard-bench --bin perfbench -- --check
//! cargo run --release -p vanguard-bench --bin perfbench -- --out target/BENCH_sim.json
//! ```
//!
//! Two measurements, written as JSON (hand-rolled; no serde dependency):
//!
//! 1. **Quick-suite throughput** — runs the full benchmark suite at
//!    quick scale (the CI figure workload) through the experiment
//!    engine and reports per-stage wall-clock plus simulated-instruction
//!    throughput (committed MIPS per worker).
//! 2. **Memory microbenchmark** — replays one deterministic
//!    read/write sequence against the paged [`Memory`] and against
//!    [`ReferenceMemory`] (the word-granular `HashMap` store the paged
//!    implementation replaced, kept as the executable specification)
//!    and reports the speedup ratio.
//!
//! `--check` exits non-zero unless the paged store beats the reference
//! store by at least 3x on the microbenchmark — the regression gate CI
//! applies alongside byte-identity of the figure output.

use std::fmt::Write as _;
use std::time::Instant;
use vanguard_bench::{BenchScale, SuiteEngine};
use vanguard_core::engine::{PredictorKind, SweepCell};
use vanguard_isa::{Memory, ReferenceMemory};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

/// Deterministic xorshift64* stream (no external randomness).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

const REGIONS: usize = 8;
const REGION_WORDS: u64 = 4096; // 32 KiB per region
const OPS: usize = 2_000_000;
const ROUNDS: usize = 3;

fn region_base(i: usize) -> u64 {
    0x1_0000 + i as u64 * 0x8_0000
}

/// One pre-generated access: word-aligned address plus read/write flag.
fn access_sequence() -> Vec<(u64, bool)> {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut seq = Vec::with_capacity(OPS);
    let mut region = 0usize;
    let mut cursor = 0u64;
    for _ in 0..OPS {
        let r = rng.next();
        // Occasional region switch, otherwise a local random walk —
        // the locality the simulator's own traffic exhibits.
        if r.is_multiple_of(64) {
            region = (r >> 8) as usize % REGIONS;
            cursor = (r >> 16) % REGION_WORDS;
        } else {
            cursor = (cursor + (r >> 8) % 32) % REGION_WORDS;
        }
        let addr = region_base(region) + cursor * 8;
        let is_read = !r.is_multiple_of(3); // 2:1 read:write
        seq.push((addr, is_read));
    }
    seq
}

/// Times the sequence against a store; generic over the two Memory
/// implementations via small closures to keep the loop identical.
fn time_sequence<M>(
    seq: &[(u64, bool)],
    mut fresh: impl FnMut() -> M,
    read: impl Fn(&M, u64) -> Option<u64>,
    write: impl Fn(&mut M, u64, u64),
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..ROUNDS {
        let mut mem = fresh();
        let mut sum = 0u64;
        let started = Instant::now();
        for &(addr, is_read) in seq {
            if is_read {
                sum = sum.wrapping_add(read(&mem, addr).unwrap_or(0));
            } else {
                write(&mut mem, addr, addr ^ sum);
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        best = best.min(elapsed);
        checksum = sum;
    }
    (best, checksum)
}

struct MemBenchResult {
    paged_secs: f64,
    reference_secs: f64,
    speedup: f64,
}

fn memory_microbench() -> MemBenchResult {
    let seq = access_sequence();
    let (paged_secs, paged_sum) = time_sequence(
        &seq,
        || {
            let mut m = Memory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    let (reference_secs, reference_sum) = time_sequence(
        &seq,
        || {
            let mut m = ReferenceMemory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    assert_eq!(
        paged_sum, reference_sum,
        "paged and reference stores diverged on the benchmark sequence"
    );
    MemBenchResult {
        paged_secs,
        reference_secs,
        speedup: reference_secs / paged_secs,
    }
}

fn quick_suite() -> (vanguard_core::engine::EngineStats, usize, f64) {
    let mut engine = SuiteEngine::new(BenchScale::Quick);
    let specs = suite::all_benchmarks();
    let cells: Vec<SweepCell> = specs
        .iter()
        .map(|spec| SweepCell {
            bench: engine.bench_id(spec),
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        })
        .collect();
    let started = Instant::now();
    engine
        .run_cells(&cells)
        .expect("quick suite simulates cleanly");
    let wall = started.elapsed().as_secs_f64();
    (engine.engine().stats(), specs.len(), wall)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_sim.json", |s| s.as_str());

    eprintln!("[perfbench] memory microbenchmark: {OPS} ops x {ROUNDS} rounds ...");
    let mem = memory_microbench();
    eprintln!(
        "[perfbench] paged {:.1} ns/op, reference {:.1} ns/op, speedup {:.2}x",
        mem.paged_secs * 1e9 / OPS as f64,
        mem.reference_secs * 1e9 / OPS as f64,
        mem.speedup
    );

    eprintln!("[perfbench] quick-suite sweep (4-wide, Combined24KB) ...");
    let (stats, benchmarks, suite_wall) = quick_suite();
    eprintln!(
        "[perfbench] {} jobs, {:.1} ms wall, {:.2} MIPS/worker",
        stats.sim_jobs,
        suite_wall * 1e3,
        stats.sim_mips()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"vanguard-perfbench-v1\",");
    let _ = writeln!(json, "  \"quick_suite\": {{");
    let _ = writeln!(json, "    \"benchmarks\": {benchmarks},");
    let _ = writeln!(json, "    \"wall_clock_ms\": {},", json_f(suite_wall * 1e3));
    let _ = writeln!(json, "    \"profile_runs\": {},", stats.profile_misses);
    let _ = writeln!(
        json,
        "    \"profile_wall_ms\": {},",
        json_f(stats.profile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"compile_runs\": {},", stats.compile_misses);
    let _ = writeln!(
        json,
        "    \"compile_wall_ms\": {},",
        json_f(stats.compile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"sim_jobs\": {},", stats.sim_jobs);
    let _ = writeln!(json, "    \"sim_insts\": {},", stats.sim_insts);
    let _ = writeln!(
        json,
        "    \"sim_wall_ms_worker_summed\": {},",
        json_f(stats.sim_nanos as f64 / 1e6)
    );
    let _ = writeln!(
        json,
        "    \"sim_mips_per_worker\": {}",
        json_f(stats.sim_mips())
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"memory_microbench\": {{");
    let _ = writeln!(json, "    \"ops\": {OPS},");
    let _ = writeln!(json, "    \"rounds\": {ROUNDS},");
    let _ = writeln!(
        json,
        "    \"paged_ns_per_op\": {},",
        json_f(mem.paged_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"reference_ns_per_op\": {},",
        json_f(mem.reference_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_reference\": {}",
        json_f(mem.speedup)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(out_path, &json).expect("write BENCH_sim.json");
    eprintln!("[perfbench] wrote {out_path}");

    if check && mem.speedup < 3.0 {
        eprintln!(
            "[perfbench] FAIL: paged memory speedup {:.2}x below the 3x gate",
            mem.speedup
        );
        std::process::exit(1);
    }
    if check {
        eprintln!("[perfbench] check passed");
    }
}

//! Host-side performance benchmark of the simulation engine.
//!
//! ```text
//! cargo run --release -p vanguard-bench --bin perfbench           # writes BENCH_sim.json
//! cargo run --release -p vanguard-bench --bin perfbench -- --check
//! cargo run --release -p vanguard-bench --bin perfbench -- --out target/BENCH_sim.json
//! ```
//!
//! Three measurements, written as JSON (hand-rolled; no serde
//! dependency):
//!
//! 1. **Quick-suite throughput** — runs the full benchmark suite at
//!    quick scale (the CI figure workload) through the experiment
//!    engine — once with the steady-state replay layer on and once with
//!    it off, sharing profiles and compiled pairs — asserts the two
//!    sweeps are bit-identical, and reports per-stage wall-clock,
//!    simulated-instruction throughput (committed MIPS per worker), and
//!    per-benchmark replay hit rates.
//! 2. **Steady-state replay microbenchmark** — a loop-dominated kernel
//!    (three ~8000-iteration sites over an 8 KB data footprint) run
//!    replay-on and replay-off on a bare [`Simulator`], with committed
//!    state asserted bit-identical and the wall-clock ratio reported.
//! 3. **Memory microbenchmark** — replays one deterministic
//!    read/write sequence against the paged [`Memory`] and against
//!    [`ReferenceMemory`] (the word-granular `HashMap` store the paged
//!    implementation replaced, kept as the executable specification)
//!    and reports the speedup ratio.
//!
//! `--check` exits non-zero unless the paged store beats the reference
//! store by at least 3x on the memory microbenchmark AND replay beats
//! replay-off by at least 3x on the steady-state kernel — the
//! regression gates CI applies alongside byte-identity of the figure
//! output.

use std::fmt::Write as _;
use std::time::Instant;
use vanguard_bench::{BenchScale, SuiteEngine};
use vanguard_bpred::Combined;
use vanguard_core::engine::{PredictorKind, SimJob, Variant};
use vanguard_isa::{
    AluOp, CmpKind, CondKind, Inst, Memory, Operand, Program, ProgramBuilder, ReferenceMemory, Reg,
};
use vanguard_sim::{MachineConfig, SimResult, Simulator};
use vanguard_workloads::suite;

/// Deterministic xorshift64* stream (no external randomness).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

const REGIONS: usize = 8;
const REGION_WORDS: u64 = 4096; // 32 KiB per region
const OPS: usize = 2_000_000;
const ROUNDS: usize = 3;

fn region_base(i: usize) -> u64 {
    0x1_0000 + i as u64 * 0x8_0000
}

/// One pre-generated access: word-aligned address plus read/write flag.
fn access_sequence() -> Vec<(u64, bool)> {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut seq = Vec::with_capacity(OPS);
    let mut region = 0usize;
    let mut cursor = 0u64;
    for _ in 0..OPS {
        let r = rng.next();
        // Occasional region switch, otherwise a local random walk —
        // the locality the simulator's own traffic exhibits.
        if r.is_multiple_of(64) {
            region = (r >> 8) as usize % REGIONS;
            cursor = (r >> 16) % REGION_WORDS;
        } else {
            cursor = (cursor + (r >> 8) % 32) % REGION_WORDS;
        }
        let addr = region_base(region) + cursor * 8;
        let is_read = !r.is_multiple_of(3); // 2:1 read:write
        seq.push((addr, is_read));
    }
    seq
}

/// Times the sequence against a store; generic over the two Memory
/// implementations via small closures to keep the loop identical.
fn time_sequence<M>(
    seq: &[(u64, bool)],
    mut fresh: impl FnMut() -> M,
    read: impl Fn(&M, u64) -> Option<u64>,
    write: impl Fn(&mut M, u64, u64),
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..ROUNDS {
        let mut mem = fresh();
        let mut sum = 0u64;
        let started = Instant::now();
        for &(addr, is_read) in seq {
            if is_read {
                sum = sum.wrapping_add(read(&mem, addr).unwrap_or(0));
            } else {
                write(&mut mem, addr, addr ^ sum);
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        best = best.min(elapsed);
        checksum = sum;
    }
    (best, checksum)
}

struct MemBenchResult {
    paged_secs: f64,
    reference_secs: f64,
    speedup: f64,
}

fn memory_microbench() -> MemBenchResult {
    let seq = access_sequence();
    let (paged_secs, paged_sum) = time_sequence(
        &seq,
        || {
            let mut m = Memory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    let (reference_secs, reference_sum) = time_sequence(
        &seq,
        || {
            let mut m = ReferenceMemory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    assert_eq!(
        paged_sum, reference_sum,
        "paged and reference stores diverged on the benchmark sequence"
    );
    MemBenchResult {
        paged_secs,
        reference_secs,
        speedup: reference_secs / paged_secs,
    }
}

/// Per-benchmark replay effectiveness over the quick-suite sweep
/// (baseline + transformed variants summed).
struct BenchReplayRow {
    name: String,
    hits: u64,
    misses: u64,
    replayed_cycles: u64,
    cycles: u64,
}

impl BenchReplayRow {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct QuickSuiteResult {
    /// Engine statistics snapshotted after the replay-on sweep.
    stats: vanguard_core::engine::EngineStats,
    benchmarks: usize,
    wall_on: f64,
    wall_off: f64,
    rows: Vec<BenchReplayRow>,
}

/// Runs the quick-scale suite twice — replay on, then replay off — on
/// one shared engine (profiles and compiled pairs are computed once;
/// the replay policy is not part of the artifact key) and asserts the
/// two sweeps produced bit-identical statistics for every job.
fn quick_suite() -> QuickSuiteResult {
    let mut engine = SuiteEngine::new(BenchScale::Quick);
    let specs = suite::all_benchmarks();
    let mut jobs: Vec<SimJob> = Vec::new();
    for spec in &specs {
        let bench = engine.bench_id(spec);
        for variant in [Variant::Baseline, Variant::Transformed] {
            jobs.push(SimJob {
                bench,
                ref_input: 0,
                machine: MachineConfig::four_wide(),
                predictor: PredictorKind::Combined24KB,
                variant,
            });
        }
    }
    engine.set_replay(true);
    let started = Instant::now();
    let on = engine.run_jobs(&jobs);
    let wall_on = started.elapsed().as_secs_f64();
    let stats = engine.engine().stats();
    engine.set_replay(false);
    let started = Instant::now();
    let off = engine.run_jobs(&jobs);
    let wall_off = started.elapsed().as_secs_f64();

    let mut rows: Vec<BenchReplayRow> = specs
        .iter()
        .map(|s| BenchReplayRow {
            name: s.name.clone(),
            hits: 0,
            misses: 0,
            replayed_cycles: 0,
            cycles: 0,
        })
        .collect();
    for (a, b) in on.iter().zip(off.iter()) {
        let (ja, jb) = (a.expect_completed(), b.expect_completed());
        assert_eq!(
            ja.stats, jb.stats,
            "replay-on vs replay-off divergence on {:?}",
            ja.job
        );
        let row = &mut rows[ja.job.bench];
        row.hits += ja.replay.hits;
        row.misses += ja.replay.misses;
        row.replayed_cycles += ja.replay.replayed_cycles;
        row.cycles += ja.stats.cycles;
    }
    QuickSuiteResult {
        stats,
        benchmarks: specs.len(),
        wall_on,
        wall_off,
        rows,
    }
}

// ------------------------------------------------------------------
// Steady-state replay microbenchmark
// ------------------------------------------------------------------

const STEADY_ITERS: i64 = 8000;
const STEADY_SITES: usize = 3;
const STEADY_ROUNDS: usize = 3;
/// ALU operations per loop body (a dependent reduction chain — the
/// arithmetic payload a real steady loop carries between its memory
/// accesses).
const STEADY_ALU_OPS: usize = 28;
/// 8 KB data footprint per site — L1-resident after the first lap, so
/// steady-state iterations are memoizable.
const STEADY_FOOT_MASK: i64 = 8191 & !7;
const STEADY_BASE: i64 = 0x2_0000;

/// The gate kernel: three consecutive ~[`STEADY_ITERS`]-iteration loop
/// sites, each striding a store + load over its own 8 KB footprint with
/// an [`STEADY_ALU_OPS`]-operation arithmetic payload and a highly
/// predictable backward branch — the loop shape the replay layer is
/// built for.
fn steady_state_program() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    b.set_entry(entry);
    let mut prev = entry;
    for site in 0..STEADY_SITES {
        let body = b.block(format!("steady{site}"));
        let base = STEADY_BASE + (site as i64) * 0x1_0000;
        b.push(prev, Inst::mov(Reg(1), Operand::Imm(STEADY_ITERS)));
        b.push(prev, Inst::mov(Reg(4), Operand::Imm(base)));
        b.fallthrough(prev, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        // cursor = base + ((i * 8) & footprint mask): a word-stride walk
        // that wraps inside the L1-resident region.
        b.push(
            body,
            Inst::alu(AluOp::Shl, Reg(5), Operand::Reg(Reg(1)), Operand::Imm(3)),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::And,
                Reg(5),
                Operand::Reg(Reg(5)),
                Operand::Imm(STEADY_FOOT_MASK),
            ),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(5),
                Operand::Reg(Reg(5)),
                Operand::Reg(Reg(4)),
            ),
        );
        b.push(
            body,
            Inst::Store {
                src: Reg(3),
                base: Reg(5),
                offset: 0,
            },
        );
        b.push(
            body,
            Inst::Load {
                dst: Reg(6),
                base: Reg(5),
                offset: 0,
                speculative: false,
            },
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(6)),
            ),
        );
        // The arithmetic payload: a dependent chain folding the loaded
        // value through registers 7..10 back into the accumulator.
        for k in 0..STEADY_ALU_OPS {
            let dst = Reg(7 + (k % 4) as u8);
            let src = Reg(7 + ((k + 1) % 4) as u8);
            let op = match k % 3 {
                0 => AluOp::Add,
                1 => AluOp::Xor,
                _ => AluOp::Shr,
            };
            b.push(
                body,
                Inst::alu(op, dst, Operand::Reg(src), Operand::Imm((k % 7) as i64 + 1)),
            );
        }
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(7)),
            ),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Xor,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Imm(site as i64 + 1),
            ),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        let next = b.block(format!("after{site}"));
        b.fallthrough(body, next);
        prev = next;
    }
    b.push(prev, Inst::Halt);
    b.finish().unwrap()
}

/// Best-of-[`STEADY_ROUNDS`] wall time of the gate kernel with the
/// given replay policy, plus the final round's result.
fn run_steady(program: &Program, replay: bool) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..STEADY_ROUNDS {
        let mut sim = Simulator::new(
            program,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(replay);
        let started = Instant::now();
        let r = sim.run().expect("steady-state kernel simulates cleanly");
        best = best.min(started.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

struct ReplayBenchResult {
    on_secs: f64,
    off_secs: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    replayed_cycles: u64,
    cycles: u64,
}

/// Runs the steady-state kernel replay-on and replay-off, asserting the
/// committed state and every statistic are bit-identical.
fn replay_microbench() -> ReplayBenchResult {
    let program = steady_state_program();
    let (on_secs, on) = run_steady(&program, true);
    let (off_secs, off) = run_steady(&program, false);
    assert_eq!(on.stats, off.stats, "replay changed reported statistics");
    assert_eq!(on.regs, off.regs, "replay changed architectural registers");
    assert_eq!(on.stop, off.stop, "replay changed the stop cause");
    assert_eq!(
        on.memory.written_words(),
        off.memory.written_words(),
        "replay changed committed memory"
    );
    let total = on.replay.hits + on.replay.misses;
    ReplayBenchResult {
        on_secs,
        off_secs,
        speedup: off_secs / on_secs,
        hits: on.replay.hits,
        misses: on.replay.misses,
        hit_rate: if total == 0 {
            0.0
        } else {
            on.replay.hits as f64 / total as f64
        },
        replayed_cycles: on.replay.replayed_cycles,
        cycles: on.stats.cycles,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_sim.json", |s| s.as_str());

    eprintln!("[perfbench] memory microbenchmark: {OPS} ops x {ROUNDS} rounds ...");
    let mem = memory_microbench();
    eprintln!(
        "[perfbench] paged {:.1} ns/op, reference {:.1} ns/op, speedup {:.2}x",
        mem.paged_secs * 1e9 / OPS as f64,
        mem.reference_secs * 1e9 / OPS as f64,
        mem.speedup
    );

    eprintln!("[perfbench] steady-state replay microbenchmark: {STEADY_SITES} sites x {STEADY_ITERS} iterations ...");
    let replay = replay_microbench();
    eprintln!(
        "[perfbench] replay on {:.1} ms, off {:.1} ms, speedup {:.2}x, hit rate {:.1}%",
        replay.on_secs * 1e3,
        replay.off_secs * 1e3,
        replay.speedup,
        replay.hit_rate * 100.0
    );

    eprintln!("[perfbench] quick-suite sweep (4-wide, Combined24KB, replay on + off) ...");
    let qs = quick_suite();
    let (stats, benchmarks) = (&qs.stats, qs.benchmarks);
    eprintln!(
        "[perfbench] {} jobs, {:.1} ms wall (replay on) vs {:.1} ms (off), {:.2} MIPS/worker",
        stats.sim_jobs,
        qs.wall_on * 1e3,
        qs.wall_off * 1e3,
        stats.sim_mips()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"vanguard-perfbench-v2\",");
    let _ = writeln!(json, "  \"quick_suite\": {{");
    let _ = writeln!(json, "    \"benchmarks\": {benchmarks},");
    let _ = writeln!(json, "    \"wall_clock_ms\": {},", json_f(qs.wall_on * 1e3));
    let _ = writeln!(
        json,
        "    \"wall_clock_ms_replay_off\": {},",
        json_f(qs.wall_off * 1e3)
    );
    let _ = writeln!(json, "    \"replay_hits\": {},", stats.replay_hits);
    let _ = writeln!(
        json,
        "    \"replay_divergences\": {},",
        stats.replay_divergences
    );
    let _ = writeln!(json, "    \"replayed_cycles\": {},", stats.replayed_cycles);
    let _ = writeln!(json, "    \"per_benchmark_replay\": [");
    for (i, row) in qs.rows.iter().enumerate() {
        let comma = if i + 1 == qs.rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"hits\": {}, \"misses\": {}, \
             \"hit_rate\": {}, \"replayed_cycles\": {}, \"cycles\": {}}}{comma}",
            row.name,
            row.hits,
            row.misses,
            json_f(row.hit_rate()),
            row.replayed_cycles,
            row.cycles,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"profile_runs\": {},", stats.profile_misses);
    let _ = writeln!(
        json,
        "    \"profile_wall_ms\": {},",
        json_f(stats.profile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"compile_runs\": {},", stats.compile_misses);
    let _ = writeln!(
        json,
        "    \"compile_wall_ms\": {},",
        json_f(stats.compile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"sim_jobs\": {},", stats.sim_jobs);
    let _ = writeln!(json, "    \"sim_insts\": {},", stats.sim_insts);
    let _ = writeln!(
        json,
        "    \"sim_wall_ms_worker_summed\": {},",
        json_f(stats.sim_nanos as f64 / 1e6)
    );
    let _ = writeln!(
        json,
        "    \"sim_mips_per_worker\": {}",
        json_f(stats.sim_mips())
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"steady_state_replay\": {{");
    let _ = writeln!(json, "    \"sites\": {STEADY_SITES},");
    let _ = writeln!(json, "    \"iterations_per_site\": {STEADY_ITERS},");
    let _ = writeln!(json, "    \"rounds\": {STEADY_ROUNDS},");
    let _ = writeln!(
        json,
        "    \"replay_on_ms\": {},",
        json_f(replay.on_secs * 1e3)
    );
    let _ = writeln!(
        json,
        "    \"replay_off_ms\": {},",
        json_f(replay.off_secs * 1e3)
    );
    let _ = writeln!(json, "    \"hits\": {},", replay.hits);
    let _ = writeln!(json, "    \"misses\": {},", replay.misses);
    let _ = writeln!(json, "    \"hit_rate\": {},", json_f(replay.hit_rate));
    let _ = writeln!(json, "    \"replayed_cycles\": {},", replay.replayed_cycles);
    let _ = writeln!(json, "    \"total_cycles\": {},", replay.cycles);
    let _ = writeln!(
        json,
        "    \"speedup_vs_replay_off\": {}",
        json_f(replay.speedup)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"memory_microbench\": {{");
    let _ = writeln!(json, "    \"ops\": {OPS},");
    let _ = writeln!(json, "    \"rounds\": {ROUNDS},");
    let _ = writeln!(
        json,
        "    \"paged_ns_per_op\": {},",
        json_f(mem.paged_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"reference_ns_per_op\": {},",
        json_f(mem.reference_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_reference\": {}",
        json_f(mem.speedup)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(out_path, &json).expect("write BENCH_sim.json");
    eprintln!("[perfbench] wrote {out_path}");

    let mut failed = false;
    if check && mem.speedup < 3.0 {
        eprintln!(
            "[perfbench] FAIL: paged memory speedup {:.2}x below the 3x gate",
            mem.speedup
        );
        failed = true;
    }
    if check && replay.speedup < 3.0 {
        eprintln!(
            "[perfbench] FAIL: steady-state replay speedup {:.2}x below the 3x gate",
            replay.speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if check {
        eprintln!("[perfbench] check passed");
    }
}

//! Host-side performance benchmark of the simulation engine.
//!
//! ```text
//! cargo run --release -p vanguard-bench --bin perfbench           # writes BENCH_sim.json
//! cargo run --release -p vanguard-bench --bin perfbench -- --check
//! cargo run --release -p vanguard-bench --bin perfbench -- --out target/BENCH_sim.json
//! cargo run --release -p vanguard-bench --bin perfbench -- --profile-hotloop
//! ```
//!
//! Three measurements, written as JSON (hand-rolled; no serde
//! dependency):
//!
//! 1. **Quick-suite throughput** — runs the full benchmark suite at
//!    quick scale (the CI figure workload) through the experiment
//!    engine: one untimed warm-up sweep computes every profile and
//!    compiled pair, then a replay-on and a replay-off sweep are timed
//!    against the warm caches (so the two walls compare pure
//!    simulation). The sweeps are asserted bit-identical per job, and
//!    the report carries per-stage wall-clock, simulated-instruction
//!    throughput (committed MIPS per worker, replay-on sweep only), the
//!    MIPS trajectory (`history`, appended across runs), and
//!    per-benchmark replay hit rates.
//! 2. **Steady-state replay microbenchmark** — a loop-dominated kernel
//!    (three ~8000-iteration sites over an 8 KB data footprint) run
//!    replay-on and replay-off on a bare [`Simulator`], with committed
//!    state asserted bit-identical and the wall-clock ratio reported.
//! 3. **Memory microbenchmark** — replays one deterministic
//!    read/write sequence against the paged [`Memory`] and against
//!    [`ReferenceMemory`] (the word-granular `HashMap` store the paged
//!    implementation replaced, kept as the executable specification)
//!    and reports the speedup ratio.
//!
//! `--profile-hotloop` additionally runs the steady-state kernel (both
//! replay modes) and a low-convergence irregular kernel under
//! [`Simulator::run_profiled`], reporting per-stage wall shares
//! (fetch / fused issue+execute / commit / replay / batch-entry) to
//! stderr and a `hotloop_profile` JSON section — the attribution data
//! future perf PRs cite.
//!
//! `--check` exits non-zero unless ALL of:
//!
//! * the paged store beats the reference store by ≥ 3x;
//! * replay beats replay-off by ≥ 3x on the steady-state kernel;
//! * quick-suite replay-ON wall ≤ 1.05x replay-OFF (replay must never
//!   cost throughput on a real suite — the gate the adaptive arming
//!   layer exists to hold);
//! * quick-suite throughput ≥ 9.4 committed MIPS per worker.

use std::fmt::Write as _;
use std::time::Instant;
use vanguard_bench::{BenchScale, SuiteEngine};
use vanguard_bpred::Combined;
use vanguard_core::engine::{EngineStats, PredictorKind, SimJob, Variant};
use vanguard_isa::{
    AluOp, CmpKind, CondKind, Inst, Memory, Operand, Program, ProgramBuilder, ReferenceMemory, Reg,
};
use vanguard_sim::{HotloopProfile, MachineConfig, SimResult, Simulator};
use vanguard_workloads::suite;

/// Deterministic xorshift64* stream (no external randomness).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

const REGIONS: usize = 8;
const REGION_WORDS: u64 = 4096; // 32 KiB per region
const OPS: usize = 2_000_000;
const ROUNDS: usize = 3;

fn region_base(i: usize) -> u64 {
    0x1_0000 + i as u64 * 0x8_0000
}

/// One pre-generated access: word-aligned address plus read/write flag.
fn access_sequence() -> Vec<(u64, bool)> {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut seq = Vec::with_capacity(OPS);
    let mut region = 0usize;
    let mut cursor = 0u64;
    for _ in 0..OPS {
        let r = rng.next();
        // Occasional region switch, otherwise a local random walk —
        // the locality the simulator's own traffic exhibits.
        if r.is_multiple_of(64) {
            region = (r >> 8) as usize % REGIONS;
            cursor = (r >> 16) % REGION_WORDS;
        } else {
            cursor = (cursor + (r >> 8) % 32) % REGION_WORDS;
        }
        let addr = region_base(region) + cursor * 8;
        let is_read = !r.is_multiple_of(3); // 2:1 read:write
        seq.push((addr, is_read));
    }
    seq
}

/// Times the sequence against a store; generic over the two Memory
/// implementations via small closures to keep the loop identical.
fn time_sequence<M>(
    seq: &[(u64, bool)],
    mut fresh: impl FnMut() -> M,
    read: impl Fn(&M, u64) -> Option<u64>,
    write: impl Fn(&mut M, u64, u64),
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..ROUNDS {
        let mut mem = fresh();
        let mut sum = 0u64;
        let started = Instant::now();
        for &(addr, is_read) in seq {
            if is_read {
                sum = sum.wrapping_add(read(&mem, addr).unwrap_or(0));
            } else {
                write(&mut mem, addr, addr ^ sum);
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        best = best.min(elapsed);
        checksum = sum;
    }
    (best, checksum)
}

struct MemBenchResult {
    paged_secs: f64,
    reference_secs: f64,
    speedup: f64,
}

fn memory_microbench() -> MemBenchResult {
    let seq = access_sequence();
    let (paged_secs, paged_sum) = time_sequence(
        &seq,
        || {
            let mut m = Memory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    let (reference_secs, reference_sum) = time_sequence(
        &seq,
        || {
            let mut m = ReferenceMemory::new();
            for i in 0..REGIONS {
                m.map_region(region_base(i), REGION_WORDS * 8);
            }
            m
        },
        |m, a| m.read(a),
        |m, a, v| m.write(a, v),
    );
    assert_eq!(
        paged_sum, reference_sum,
        "paged and reference stores diverged on the benchmark sequence"
    );
    MemBenchResult {
        paged_secs,
        reference_secs,
        speedup: reference_secs / paged_secs,
    }
}

/// Per-benchmark replay effectiveness over the quick-suite sweep
/// (baseline + transformed variants summed).
struct BenchReplayRow {
    name: String,
    hits: u64,
    misses: u64,
    suppressed: u64,
    replayed_cycles: u64,
    cycles: u64,
}

impl BenchReplayRow {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct QuickSuiteResult {
    /// Engine counters for one timed replay-on sweep (warm-up counters
    /// subtracted), with `sim_nanos` replaced by the per-job
    /// best-of-rounds sum and profile/compile fields taken from the
    /// warm-up (the timed sweeps hit those caches by design).
    stats: EngineStats,
    benchmarks: usize,
    /// Worker-summed per-job best-of-rounds simulate seconds, replay on.
    wall_on: f64,
    /// Worker-summed per-job best-of-rounds simulate seconds, replay off.
    wall_off: f64,
    rows: Vec<BenchReplayRow>,
}

/// Timed replay-on/replay-off sweep rounds over the warm engine.
const SUITE_ROUNDS: usize = 3;

/// The sweep-delta of the engine counters across one timed sweep:
/// `after` minus `before` for the per-sweep counters, with the
/// profile/compile fields left as `after`'s cumulative values (the
/// caller overrides them from the warm-up snapshot — the timed sweeps
/// hit those caches by design, so their deltas read zero).
fn sweep_delta(after: EngineStats, before: &EngineStats) -> EngineStats {
    let mut d = after;
    d.sim_jobs -= before.sim_jobs;
    d.sim_insts -= before.sim_insts;
    d.sim_nanos -= before.sim_nanos;
    d.jobs_ok -= before.jobs_ok;
    d.replay_hits -= before.replay_hits;
    d.replay_misses -= before.replay_misses;
    d.replay_divergences -= before.replay_divergences;
    d.replay_recordings -= before.replay_recordings;
    d.replayed_cycles -= before.replayed_cycles;
    d.replay_suppressed -= before.replay_suppressed;
    d.replay_armed_sites -= before.replay_armed_sites;
    d.replay_disarmed_sites -= before.replay_disarmed_sites;
    d
}

/// Runs the quick-scale suite on one shared engine: an untimed warm-up
/// sweep that computes every profile and compiled pair (the replay
/// policy is not part of the artifact key), then [`SUITE_ROUNDS`]
/// alternating timed replay-on / replay-off sweeps against the warm
/// caches. `wall_on` and `wall_off` are worker-summed *per-job*
/// best-of-rounds simulate times — the best-of-N idiom the microbenches
/// use, applied per job, so a burst of host noise must hit the same job
/// in every round to bias the 1.05x regression gate. Every round's
/// replay-on sweep is asserted bit-identical to its replay-off sweep
/// per job.
fn quick_suite() -> QuickSuiteResult {
    let mut engine = SuiteEngine::new(BenchScale::Quick);
    let specs = suite::all_benchmarks();
    let mut jobs: Vec<SimJob> = Vec::new();
    for spec in &specs {
        let bench = engine.bench_id(spec);
        for variant in [Variant::Baseline, Variant::Transformed] {
            jobs.push(SimJob {
                bench,
                ref_input: 0,
                machine: MachineConfig::four_wide(),
                predictor: PredictorKind::Combined24KB,
                variant,
            });
        }
    }
    engine.set_replay(true);
    let _ = engine.run_jobs(&jobs); // warm-up: profiles + compiled pairs
    let warm = engine.engine().stats();

    let mut best_on = vec![f64::INFINITY; jobs.len()];
    let mut best_off = vec![f64::INFINITY; jobs.len()];
    let mut stats = EngineStats::default();
    let mut first_on: Vec<vanguard_core::engine::JobResult> = Vec::new();
    for round in 0..SUITE_ROUNDS {
        let before = engine.engine().stats();
        // Each job runs replay-on and replay-off back to back, so a
        // burst of host noise lands on both sides of the ratio alike.
        for (j, job) in jobs.iter().enumerate() {
            engine.set_replay(true);
            let on = engine.run_jobs(std::slice::from_ref(job));
            engine.set_replay(false);
            let off = engine.run_jobs(std::slice::from_ref(job));
            let (ja, jb) = (on[0].expect_completed(), off[0].expect_completed());
            assert_eq!(
                ja.stats, jb.stats,
                "replay-on vs replay-off divergence on {:?}",
                ja.job
            );
            best_on[j] = best_on[j].min(ja.sim_elapsed.as_secs_f64());
            best_off[j] = best_off[j].min(jb.sim_elapsed.as_secs_f64());
            if round == 0 {
                first_on.extend(on);
            }
        }
        if round == 0 {
            // The round interleaved replay-off jobs; keep only the
            // replay-on halves of the counters by halving nothing —
            // the off jobs contribute no replay counters, and the
            // sim_insts/sim_jobs double-count is corrected here.
            let mut d = sweep_delta(engine.engine().stats(), &before);
            d.sim_jobs /= 2;
            d.sim_insts /= 2;
            d.jobs_ok /= 2;
            stats = d;
        }
    }
    let wall_on: f64 = best_on.iter().sum();
    let wall_off: f64 = best_off.iter().sum();
    // Profile/compile counters happened in the warm-up, and the timing
    // aggregates come from the per-job bests rather than one round.
    stats.profile_misses = warm.profile_misses;
    stats.profile_nanos = warm.profile_nanos;
    stats.compile_misses = warm.compile_misses;
    stats.compile_nanos = warm.compile_nanos;
    stats.sim_nanos = (wall_on * 1e9) as u64;

    let mut rows: Vec<BenchReplayRow> = specs
        .iter()
        .map(|s| BenchReplayRow {
            name: s.name.clone(),
            hits: 0,
            misses: 0,
            suppressed: 0,
            replayed_cycles: 0,
            cycles: 0,
        })
        .collect();
    for a in first_on.iter() {
        let ja = a.expect_completed();
        let row = &mut rows[ja.job.bench];
        row.hits += ja.replay.hits;
        row.misses += ja.replay.misses;
        row.suppressed += ja.replay.suppressed_ticks;
        row.replayed_cycles += ja.replay.replayed_cycles;
        row.cycles += ja.stats.cycles;
    }
    QuickSuiteResult {
        stats,
        benchmarks: specs.len(),
        wall_on,
        wall_off,
        rows,
    }
}

// ------------------------------------------------------------------
// Steady-state replay microbenchmark
// ------------------------------------------------------------------

const STEADY_ITERS: i64 = 8000;
const STEADY_SITES: usize = 3;
const STEADY_ROUNDS: usize = 3;
/// ALU operations per loop body (a dependent reduction chain — the
/// arithmetic payload a real steady loop carries between its memory
/// accesses).
const STEADY_ALU_OPS: usize = 28;
/// 8 KB data footprint per site — L1-resident after the first lap, so
/// steady-state iterations are memoizable.
const STEADY_FOOT_MASK: i64 = 8191 & !7;
const STEADY_BASE: i64 = 0x2_0000;

/// The gate kernel: three consecutive ~[`STEADY_ITERS`]-iteration loop
/// sites, each striding a store + load over its own 8 KB footprint with
/// an [`STEADY_ALU_OPS`]-operation arithmetic payload and a highly
/// predictable backward branch — the loop shape the replay layer is
/// built for.
fn steady_state_program() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    b.set_entry(entry);
    let mut prev = entry;
    for site in 0..STEADY_SITES {
        let body = b.block(format!("steady{site}"));
        let base = STEADY_BASE + (site as i64) * 0x1_0000;
        b.push(prev, Inst::mov(Reg(1), Operand::Imm(STEADY_ITERS)));
        b.push(prev, Inst::mov(Reg(4), Operand::Imm(base)));
        b.fallthrough(prev, body);
        b.push(
            body,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        // cursor = base + ((i * 8) & footprint mask): a word-stride walk
        // that wraps inside the L1-resident region.
        b.push(
            body,
            Inst::alu(AluOp::Shl, Reg(5), Operand::Reg(Reg(1)), Operand::Imm(3)),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::And,
                Reg(5),
                Operand::Reg(Reg(5)),
                Operand::Imm(STEADY_FOOT_MASK),
            ),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(5),
                Operand::Reg(Reg(5)),
                Operand::Reg(Reg(4)),
            ),
        );
        b.push(
            body,
            Inst::Store {
                src: Reg(3),
                base: Reg(5),
                offset: 0,
            },
        );
        b.push(
            body,
            Inst::Load {
                dst: Reg(6),
                base: Reg(5),
                offset: 0,
                speculative: false,
            },
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(6)),
            ),
        );
        // The arithmetic payload: a dependent chain folding the loaded
        // value through registers 7..10 back into the accumulator.
        for k in 0..STEADY_ALU_OPS {
            let dst = Reg(7 + (k % 4) as u8);
            let src = Reg(7 + ((k + 1) % 4) as u8);
            let op = match k % 3 {
                0 => AluOp::Add,
                1 => AluOp::Xor,
                _ => AluOp::Shr,
            };
            b.push(
                body,
                Inst::alu(op, dst, Operand::Reg(src), Operand::Imm((k % 7) as i64 + 1)),
            );
        }
        b.push(
            body,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(7)),
            ),
        );
        b.push(
            body,
            Inst::alu(
                AluOp::Xor,
                Reg(3),
                Operand::Reg(Reg(3)),
                Operand::Imm(site as i64 + 1),
            ),
        );
        b.push(
            body,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        let next = b.block(format!("after{site}"));
        b.fallthrough(body, next);
        prev = next;
    }
    b.push(prev, Inst::Halt);
    b.finish().unwrap()
}

/// Best-of-[`STEADY_ROUNDS`] wall time of the gate kernel with the
/// given replay policy, plus the final round's result.
fn run_steady(program: &Program, replay: bool) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..STEADY_ROUNDS {
        let mut sim = Simulator::new(
            program,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(replay);
        let started = Instant::now();
        let r = sim.run().expect("steady-state kernel simulates cleanly");
        best = best.min(started.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

struct ReplayBenchResult {
    on_secs: f64,
    off_secs: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    replayed_cycles: u64,
    cycles: u64,
}

/// Runs the steady-state kernel replay-on and replay-off, asserting the
/// committed state and every statistic are bit-identical.
fn replay_microbench() -> ReplayBenchResult {
    let program = steady_state_program();
    let (on_secs, on) = run_steady(&program, true);
    let (off_secs, off) = run_steady(&program, false);
    assert_eq!(on.stats, off.stats, "replay changed reported statistics");
    assert_eq!(on.regs, off.regs, "replay changed architectural registers");
    assert_eq!(on.stop, off.stop, "replay changed the stop cause");
    assert_eq!(
        on.memory.written_words(),
        off.memory.written_words(),
        "replay changed committed memory"
    );
    let total = on.replay.hits + on.replay.misses;
    ReplayBenchResult {
        on_secs,
        off_secs,
        speedup: off_secs / on_secs,
        hits: on.replay.hits,
        misses: on.replay.misses,
        hit_rate: if total == 0 {
            0.0
        } else {
            on.replay.hits as f64 / total as f64
        },
        replayed_cycles: on.replay.replayed_cycles,
        cycles: on.stats.cycles,
    }
}

// ------------------------------------------------------------------
// Hot-loop stage profiling (--profile-hotloop)
// ------------------------------------------------------------------

const IRREGULAR_ITERS: i64 = 20_000;
const IRREGULAR_BASE: i64 = 0x8_0000;

/// A low-convergence kernel for profiling: a data-driven hammock whose
/// branch direction follows a pseudo-random word stream, so iteration
/// signatures never stabilise and the replay layer's probing filter is
/// exercised without ever arming — the branch behaviour the quick
/// suite's irregular benchmarks exhibit.
fn irregular_program() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    b.set_entry(entry);
    let head = b.block("head");
    let even = b.block("even");
    let odd = b.block("odd");
    let join = b.block("join");
    let done = b.block("done");
    b.push(entry, Inst::mov(Reg(1), Operand::Imm(IRREGULAR_ITERS)));
    b.push(entry, Inst::mov(Reg(4), Operand::Imm(IRREGULAR_BASE)));
    b.fallthrough(entry, head);
    b.push(
        head,
        Inst::Load {
            dst: Reg(5),
            base: Reg(4),
            offset: 0,
            speculative: false,
        },
    );
    b.push(
        head,
        Inst::alu(AluOp::And, Reg(6), Operand::Reg(Reg(5)), Operand::Imm(1)),
    );
    b.push(
        head,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(6),
            target: odd,
        },
    );
    b.fallthrough(head, even);
    // Even path: accumulate the word.
    b.push(
        even,
        Inst::alu(
            AluOp::Add,
            Reg(3),
            Operand::Reg(Reg(3)),
            Operand::Reg(Reg(5)),
        ),
    );
    b.push(even, Inst::Jump { target: join });
    // Odd path: fold it in with a different operation.
    b.push(
        odd,
        Inst::alu(
            AluOp::Xor,
            Reg(3),
            Operand::Reg(Reg(3)),
            Operand::Reg(Reg(5)),
        ),
    );
    b.fallthrough(odd, join);
    b.push(
        join,
        Inst::alu(AluOp::Add, Reg(4), Operand::Reg(Reg(4)), Operand::Imm(8)),
    );
    b.push(
        join,
        Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
    );
    b.push(
        join,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(2),
            a: Reg(1),
            b: Operand::Imm(0),
        },
    );
    b.push(
        join,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(2),
            target: head,
        },
    );
    b.fallthrough(join, done);
    b.push(done, Inst::Halt);
    b.finish().unwrap()
}

/// One profiled kernel run: label, per-stage nanosecond laps, wall.
struct HotloopRun {
    label: &'static str,
    prof: HotloopProfile,
    wall: f64,
}

/// Runs the steady kernel (replay on and off) and the irregular kernel
/// (replay on, never arms) under the instrumented pipeline loop.
fn profile_hotloop() -> Vec<HotloopRun> {
    let mut out = Vec::new();
    let steady = steady_state_program();
    for (label, replay) in [("steady_replay_on", true), ("steady_replay_off", false)] {
        let mut sim = Simulator::new(
            &steady,
            Memory::new(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.set_replay(replay);
        let started = Instant::now();
        let (_, prof) = sim
            .run_profiled()
            .expect("steady-state kernel simulates cleanly");
        out.push(HotloopRun {
            label,
            prof,
            wall: started.elapsed().as_secs_f64(),
        });
    }
    let irregular = irregular_program();
    let mut mem = Memory::new();
    let mut rng = Rng(0xbadc0ffee0ddf00d);
    let noise: Vec<u64> = (0..IRREGULAR_ITERS).map(|_| rng.next()).collect();
    mem.load_words(IRREGULAR_BASE as u64, &noise);
    let mut sim = Simulator::new(
        &irregular,
        mem,
        MachineConfig::four_wide(),
        Box::new(Combined::ptlsim_default()),
    );
    sim.set_replay(true);
    let started = Instant::now();
    let (_, prof) = sim
        .run_profiled()
        .expect("irregular kernel simulates cleanly");
    out.push(HotloopRun {
        label: "irregular_replay_on",
        prof,
        wall: started.elapsed().as_secs_f64(),
    });
    out
}

// ------------------------------------------------------------------
// MIPS history (schema v3)
// ------------------------------------------------------------------

/// Most history entries to carry forward — enough to see a trend, small
/// enough that the committed JSON stays readable.
const HISTORY_CAP: usize = 20;

/// Prior `sim_mips_per_worker` trajectory recovered from an existing
/// report at `path`: the `history` array if present (v3), else the
/// single `sim_mips_per_worker` value (v2). String-scanned rather than
/// parsed — the file is the hand-rolled JSON this binary also writes.
fn prior_mips_history(path: &str) -> Vec<f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    if let Some(i) = text.find("\"history\": [") {
        let rest = &text[i + "\"history\": [".len()..];
        if let Some(j) = rest.find(']') {
            return rest[..j]
                .split(',')
                .filter_map(|s| s.trim().parse::<f64>().ok())
                .collect();
        }
    }
    if let Some(i) = text.find("\"sim_mips_per_worker\": ") {
        let rest = &text[i + "\"sim_mips_per_worker\": ".len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            return vec![v];
        }
    }
    Vec::new()
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let want_hotloop = args.iter().any(|a| a == "--profile-hotloop");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_sim.json", |s| s.as_str());

    eprintln!("[perfbench] memory microbenchmark: {OPS} ops x {ROUNDS} rounds ...");
    let mem = memory_microbench();
    eprintln!(
        "[perfbench] paged {:.1} ns/op, reference {:.1} ns/op, speedup {:.2}x",
        mem.paged_secs * 1e9 / OPS as f64,
        mem.reference_secs * 1e9 / OPS as f64,
        mem.speedup
    );

    eprintln!("[perfbench] steady-state replay microbenchmark: {STEADY_SITES} sites x {STEADY_ITERS} iterations ...");
    let replay = replay_microbench();
    eprintln!(
        "[perfbench] replay on {:.1} ms, off {:.1} ms, speedup {:.2}x, hit rate {:.1}%",
        replay.on_secs * 1e3,
        replay.off_secs * 1e3,
        replay.speedup,
        replay.hit_rate * 100.0
    );

    eprintln!(
        "[perfbench] quick-suite sweep (4-wide, Combined24KB, warm-up + replay on + off) ..."
    );
    let qs = quick_suite();
    let (stats, benchmarks) = (&qs.stats, qs.benchmarks);
    let wall_ratio = qs.wall_on / qs.wall_off;
    eprintln!(
        "[perfbench] {} jobs, {:.1} ms wall (replay on) vs {:.1} ms (off), ratio {:.3}, {:.2} MIPS/worker",
        stats.sim_jobs,
        qs.wall_on * 1e3,
        qs.wall_off * 1e3,
        wall_ratio,
        stats.sim_mips()
    );

    // MIPS trajectory: append this run to whatever the report at
    // `out_path` already carried, so CI logs show the delta and the
    // committed JSON shows the trend.
    let prior = prior_mips_history(out_path);
    match prior.last() {
        Some(prev) => eprintln!(
            "[perfbench] sim MIPS/worker: {:.2} (prev {:.2}, delta {:+.2})",
            stats.sim_mips(),
            prev,
            stats.sim_mips() - prev
        ),
        None => eprintln!(
            "[perfbench] sim MIPS/worker: {:.2} (no prior history at {out_path})",
            stats.sim_mips()
        ),
    }
    let mut history = prior;
    history.push(stats.sim_mips());
    if history.len() > HISTORY_CAP {
        history.drain(..history.len() - HISTORY_CAP);
    }

    let hotloop = if want_hotloop {
        eprintln!("[perfbench] hot-loop stage profile ...");
        let runs = profile_hotloop();
        for run in &runs {
            let p = &run.prof;
            let t = p.total_ns().max(1) as f64;
            eprintln!(
                "[perfbench] hotloop {:<18} fetch {:>4.1}%  issue+exec {:>4.1}%  commit {:>4.1}%  replay {:>4.1}%  batch-entry {:>4.1}%  ({:.1} ms, {} cycles)",
                run.label,
                p.fetch_ns as f64 * 100.0 / t,
                p.issue_ns as f64 * 100.0 / t,
                p.commit_ns as f64 * 100.0 / t,
                p.replay_ns as f64 * 100.0 / t,
                p.other_ns as f64 * 100.0 / t,
                run.wall * 1e3,
                p.cycles,
            );
        }
        Some(runs)
    } else {
        None
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"vanguard-perfbench-v3\",");
    let _ = writeln!(json, "  \"quick_suite\": {{");
    let _ = writeln!(json, "    \"benchmarks\": {benchmarks},");
    let _ = writeln!(json, "    \"wall_clock_ms\": {},", json_f(qs.wall_on * 1e3));
    let _ = writeln!(
        json,
        "    \"wall_clock_ms_replay_off\": {},",
        json_f(qs.wall_off * 1e3)
    );
    let _ = writeln!(json, "    \"wall_ratio_on_off\": {},", json_f(wall_ratio));
    let _ = writeln!(json, "    \"replay_hits\": {},", stats.replay_hits);
    let _ = writeln!(json, "    \"replay_misses\": {},", stats.replay_misses);
    let _ = writeln!(
        json,
        "    \"replay_divergences\": {},",
        stats.replay_divergences
    );
    let _ = writeln!(json, "    \"replayed_cycles\": {},", stats.replayed_cycles);
    let _ = writeln!(
        json,
        "    \"replay_suppressed_ticks\": {},",
        stats.replay_suppressed
    );
    let _ = writeln!(
        json,
        "    \"replay_armed_sites\": {},",
        stats.replay_armed_sites
    );
    let _ = writeln!(
        json,
        "    \"replay_disarmed_sites\": {},",
        stats.replay_disarmed_sites
    );
    let _ = writeln!(json, "    \"per_benchmark_replay\": [");
    for (i, row) in qs.rows.iter().enumerate() {
        let comma = if i + 1 == qs.rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"hits\": {}, \"misses\": {}, \
             \"hit_rate\": {}, \"suppressed\": {}, \"replayed_cycles\": {}, \"cycles\": {}}}{comma}",
            row.name,
            row.hits,
            row.misses,
            json_f(row.hit_rate()),
            row.suppressed,
            row.replayed_cycles,
            row.cycles,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"profile_runs\": {},", stats.profile_misses);
    let _ = writeln!(
        json,
        "    \"profile_wall_ms\": {},",
        json_f(stats.profile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"compile_runs\": {},", stats.compile_misses);
    let _ = writeln!(
        json,
        "    \"compile_wall_ms\": {},",
        json_f(stats.compile_nanos as f64 / 1e6)
    );
    let _ = writeln!(json, "    \"sim_jobs\": {},", stats.sim_jobs);
    let _ = writeln!(json, "    \"sim_insts\": {},", stats.sim_insts);
    let _ = writeln!(
        json,
        "    \"sim_wall_ms_worker_summed\": {},",
        json_f(stats.sim_nanos as f64 / 1e6)
    );
    let _ = writeln!(
        json,
        "    \"sim_mips_per_worker\": {},",
        json_f(stats.sim_mips())
    );
    let history_items: Vec<String> = history.iter().map(|&v| json_f(v)).collect();
    let _ = writeln!(json, "    \"history\": [{}]", history_items.join(", "));
    let _ = writeln!(json, "  }},");
    if let Some(runs) = &hotloop {
        let _ = writeln!(json, "  \"hotloop_profile\": {{");
        for (i, run) in runs.iter().enumerate() {
            let p = &run.prof;
            let comma = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    \"{}\": {{\"fetch_ns\": {}, \"issue_ns\": {}, \"commit_ns\": {}, \
                 \"replay_ns\": {}, \"other_ns\": {}, \"cycles\": {}, \"wall_ms\": {}}}{comma}",
                run.label,
                p.fetch_ns,
                p.issue_ns,
                p.commit_ns,
                p.replay_ns,
                p.other_ns,
                p.cycles,
                json_f(run.wall * 1e3),
            );
        }
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"steady_state_replay\": {{");
    let _ = writeln!(json, "    \"sites\": {STEADY_SITES},");
    let _ = writeln!(json, "    \"iterations_per_site\": {STEADY_ITERS},");
    let _ = writeln!(json, "    \"rounds\": {STEADY_ROUNDS},");
    let _ = writeln!(
        json,
        "    \"replay_on_ms\": {},",
        json_f(replay.on_secs * 1e3)
    );
    let _ = writeln!(
        json,
        "    \"replay_off_ms\": {},",
        json_f(replay.off_secs * 1e3)
    );
    let _ = writeln!(json, "    \"hits\": {},", replay.hits);
    let _ = writeln!(json, "    \"misses\": {},", replay.misses);
    let _ = writeln!(json, "    \"hit_rate\": {},", json_f(replay.hit_rate));
    let _ = writeln!(json, "    \"replayed_cycles\": {},", replay.replayed_cycles);
    let _ = writeln!(json, "    \"total_cycles\": {},", replay.cycles);
    let _ = writeln!(
        json,
        "    \"speedup_vs_replay_off\": {}",
        json_f(replay.speedup)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"memory_microbench\": {{");
    let _ = writeln!(json, "    \"ops\": {OPS},");
    let _ = writeln!(json, "    \"rounds\": {ROUNDS},");
    let _ = writeln!(
        json,
        "    \"paged_ns_per_op\": {},",
        json_f(mem.paged_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"reference_ns_per_op\": {},",
        json_f(mem.reference_secs * 1e9 / OPS as f64)
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_reference\": {}",
        json_f(mem.speedup)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(out_path, &json).expect("write BENCH_sim.json");
    eprintln!("[perfbench] wrote {out_path}");

    let mut failed = false;
    if check && mem.speedup < 3.0 {
        eprintln!(
            "[perfbench] FAIL: paged memory speedup {:.2}x below the 3x gate",
            mem.speedup
        );
        failed = true;
    }
    if check && replay.speedup < 3.0 {
        eprintln!(
            "[perfbench] FAIL: steady-state replay speedup {:.2}x below the 3x gate",
            replay.speedup
        );
        failed = true;
    }
    if check && wall_ratio > 1.05 {
        eprintln!(
            "[perfbench] FAIL: quick-suite replay-ON wall is {:.3}x replay-OFF \
             (gate: <= 1.05x — replay must never cost suite throughput)",
            wall_ratio
        );
        failed = true;
    }
    if check && stats.sim_mips() < 9.4 {
        eprintln!(
            "[perfbench] FAIL: quick-suite throughput {:.2} MIPS/worker below the 9.4 gate",
            stats.sim_mips()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if check {
        eprintln!("[perfbench] check passed");
    }
}

//! Fault-injection gate: stages each fault class against the engine and
//! writes `BENCH_robustness.json`.
//!
//! ```text
//! cargo run --release -p vanguard-bench --bin faultinject -- --all-classes --seed 0
//! cargo run --release -p vanguard-bench --bin faultinject -- --class guest-trap
//! cargo run --release -p vanguard-bench --bin faultinject -- --skip-overhead --out target/r.json
//! ```
//!
//! Exit status is non-zero when any class assertion fails or the armed
//! watchdog costs ≥ 2 % of clean simulate time (the robustness gate CI
//! applies). Everything is deterministic in `--seed`.

use std::fmt::Write as _;
use vanguard_bench::faultinject::{
    clean_suite_stats, measure_overhead, run_class, ClassReport, FaultClass,
};

/// Maximum tolerated watchdog overhead on a clean run, in percent.
const OVERHEAD_GATE_PCT: f64 = 2.0;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    vanguard_bench::sweep::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_robustness.json", |s| s.as_str());
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let skip_overhead = args.iter().any(|a| a == "--skip-overhead");
    let mut classes: Vec<FaultClass> = Vec::new();
    let mut bad_flag = false;
    for (i, a) in args.iter().enumerate() {
        if a == "--class" {
            match args
                .get(i + 1)
                .map(String::as_str)
                .and_then(FaultClass::parse)
            {
                Some(c) => classes.push(c),
                None => {
                    eprintln!("[faultinject] unknown --class value: {:?}", args.get(i + 1));
                    bad_flag = true;
                }
            }
        }
    }
    if bad_flag {
        std::process::exit(2);
    }
    if classes.is_empty() || args.iter().any(|a| a == "--all-classes") {
        classes = FaultClass::ALL.to_vec();
    }

    let scratch = std::env::temp_dir().join(format!("vanguard-faultinject-{}", std::process::id()));
    eprintln!("[faultinject] seed {seed}, scratch {}", scratch.display());
    eprintln!("[faultinject] clean reference run ...");
    let clean = clean_suite_stats();

    let mut reports: Vec<ClassReport> = Vec::new();
    for class in classes {
        eprintln!("[faultinject] class {} ...", class.name());
        let report = run_class(class, seed, &scratch, &clean);
        for check in &report.checks {
            eprintln!(
                "[faultinject]   {} {}: {}",
                if check.passed { "PASS" } else { "FAIL" },
                check.name,
                check.detail
            );
        }
        reports.push(report);
    }

    let overhead = if skip_overhead {
        None
    } else {
        eprintln!("[faultinject] watchdog overhead, min-of-{rounds} per side ...");
        let o = measure_overhead(rounds);
        eprintln!(
            "[faultinject] clean {:.1} ms, armed {:.1} ms, overhead {:.2}%",
            o.clean_sim_ms,
            o.armed_sim_ms,
            o.overhead_pct()
        );
        Some(o)
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"vanguard-faultinject-v1\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"classes\": [");
    for (i, report) in reports.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"class\": {},", json_str(report.class.name()));
        let _ = writeln!(json, "      \"passed\": {},", report.passed());
        let _ = writeln!(json, "      \"checks\": [");
        for (j, check) in report.checks.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{ \"name\": {}, \"passed\": {} }}{}",
                json_str(check.name),
                check.passed,
                if j + 1 < report.checks.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]{}", if overhead.is_some() { "," } else { "" });
    if let Some(o) = overhead {
        let _ = writeln!(json, "  \"overhead\": {{");
        let _ = writeln!(json, "    \"rounds\": {},", o.rounds);
        let _ = writeln!(json, "    \"clean_sim_ms\": {:.4},", o.clean_sim_ms);
        let _ = writeln!(json, "    \"armed_sim_ms\": {:.4},", o.armed_sim_ms);
        let _ = writeln!(json, "    \"overhead_pct\": {:.4},", o.overhead_pct());
        let _ = writeln!(json, "    \"gate_pct\": {OVERHEAD_GATE_PCT},");
        let _ = writeln!(
            json,
            "    \"passed\": {}",
            o.overhead_pct() < OVERHEAD_GATE_PCT
        );
        let _ = writeln!(json, "  }}");
    }
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("write BENCH_robustness.json");
    eprintln!("[faultinject] wrote {out_path}");

    let _ = std::fs::remove_dir_all(&scratch);

    let failed_classes: Vec<&str> = reports
        .iter()
        .filter(|r| !r.passed())
        .map(|r| r.class.name())
        .collect();
    if !failed_classes.is_empty() {
        eprintln!("[faultinject] FAIL: classes {failed_classes:?}");
        std::process::exit(1);
    }
    if let Some(o) = overhead {
        if o.overhead_pct() >= OVERHEAD_GATE_PCT {
            eprintln!(
                "[faultinject] FAIL: watchdog overhead {:.2}% exceeds the {OVERHEAD_GATE_PCT}% gate",
                o.overhead_pct()
            );
            std::process::exit(1);
        }
    }
    eprintln!("[faultinject] all classes contained");
}

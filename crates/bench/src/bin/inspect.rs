//! Developer inspection tool: dumps baseline-vs-experimental statistics
//! for one benchmark (used to diagnose where cycles go).
//!
//! `--transform <kind>` swaps the pass (vanguard | meld | shadow |
//! stacked) so rival transformations can be diagnosed the same way.
//! `--no-replay` disables the simulator's steady-state replay layer
//! (bit-identical results; rules replay out when diagnosing).

use std::sync::Arc;
use vanguard_bench::{BenchScale, StderrProgress, SuiteEngine};
use vanguard_core::TransformKind;
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let transform: Option<TransformKind> = args
        .iter()
        .position(|a| a == "--transform")
        .and_then(|i| args.get(i + 1))
        .map(|v| match TransformKind::parse(v) {
            Some(kind) => kind,
            None => {
                eprintln!("unknown transform kind: {v} (want vanguard|meld|shadow|stacked)");
                std::process::exit(1);
            }
        });
    let name = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--transform"))
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "mcf".into());
    let Some(spec) = suite::all_benchmarks().into_iter().find(|s| s.name == name) else {
        let names: Vec<String> = suite::all_benchmarks()
            .into_iter()
            .map(|s| s.name)
            .collect();
        eprintln!(
            "unknown benchmark `{name}`; choose one of: {}",
            names.join(", ")
        );
        std::process::exit(1);
    };
    let mut eng = SuiteEngine::new(BenchScale::Quick);
    if let Some(kind) = transform {
        eng.set_transform_kind(kind);
    }
    if args.iter().any(|a| a == "--no-replay") {
        eng.set_replay(false);
    }
    eng.observe(Arc::new(StderrProgress::verbose()));
    let out = eng.outcome(&spec, MachineConfig::four_wide());
    let r = &out.runs[0];
    println!("== {name} ({}) ==", eng.transform().kind);
    println!(
        "speedup: {:.2}%   PBC {:.1}  PISCS {:.1}",
        out.geomean_speedup_pct(),
        out.report.pbc(),
        out.report.piscs()
    );
    println!(
        "converted: {}  melded: {}  skipped sites: {:?}",
        out.report.converted.len(),
        out.report.melded,
        out.report.skipped
    );
    for (label, s) in [("base", &r.base), ("exp ", &r.exp)] {
        println!(
            "{label}: cyc={} ipc={:.2} issued={} wp={} fetched={} br={} brmiss={} res={} resmiss={} \
             brstall={} resstall={} festall={} opstall={} fustall={} icstall={} l1d(h={},m={}) l2m={} l3m={} mem={}",
            s.cycles, s.ipc(), s.issued, s.issued_wrong_path, s.fetched,
            s.branches, s.branch_mispredicts, s.resolves, s.resolve_mispredicts,
            s.branch_stall_cycles, s.resolve_stall_cycles, s.frontend_stall_cycles,
            s.operand_stall_cycles, s.fu_stall_cycles, s.icache_stall_cycles,
            s.mem.l1d.hits, s.mem.l1d.misses, s.mem.l2.misses, s.mem.l3.misses, s.mem.memory_accesses,
        );
    }
    eprintln!("{}", eng.engine().stats().summary());
}

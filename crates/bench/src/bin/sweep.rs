//! `vanguard-sweep`: the sharded, resumable sweep service CLI.
//!
//! ```text
//! # One-shot sharded run (merged output to stdout):
//! vanguard-sweep run --request sweep.req --shards 4
//!
//! # Resume an interrupted run off its journal:
//! vanguard-sweep resume --request sweep.req --journal sweep.vgj
//!
//! # Serial reference run (no workers, no journal):
//! vanguard-sweep run --request sweep.req --serial
//!
//! # Long-running daemon: drop `<name>.req` files into the spool,
//! # collect `<name>.out` (atomically published) when done:
//! vanguard-sweep daemon --spool /tmp/sweeps
//!
//! # Pretty-print the daemon's status.json (exit 1 when absent):
//! vanguard-sweep status --spool /tmp/sweeps
//! ```
//!
//! Shard count defaults to `VANGUARD_SHARDS` (then 1). Exit codes:
//! 0 success, 2 usage, 3 interrupted (`--fault-kill-after` tripped),
//! 4 incomplete (workers exited with jobs still unjournaled).

use std::io::Write as _;
use std::path::PathBuf;
use vanguard_bench::sweep::{
    self, claim_lease_from_env, run_daemon, run_sharded, ShardOptions, Sweep, SweepRequest,
    SHARDS_ENV,
};
use vanguard_bench::sweepstatus::{now_ms, StatusSnapshot, STATUS_FILE};
use vanguard_core::engine::FaultPolicy;
use vanguard_core::{DiskCache, Journal};

fn usage() -> ! {
    eprintln!(
        "usage: vanguard-sweep run    --request FILE [--journal FILE] [--out FILE] \
         [--shards N] [--serial] [--fault-kill-after N] [--fault-kill-count N] [--throttle-ms N]\n\
         \x20      vanguard-sweep resume --request FILE --journal FILE [--out FILE] [--shards N]\n\
         \x20      vanguard-sweep daemon --spool DIR [--shards N] [--once]\n\
         \x20      vanguard-sweep status --spool DIR [--stale-ms N]"
    );
    std::process::exit(2);
}

/// `status` mode: pretty-print the daemon's `status.json`, or report a
/// stale/absent daemon. Exits 1 when the file is missing or corrupt.
fn status_main(args: &[String]) -> ! {
    let Some(spool) = flag_value(args, "--spool").map(PathBuf::from) else {
        usage();
    };
    let stale_ms: u64 = flag_value(args, "--stale-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let path = spool.join(STATUS_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "[sweep] no status at {} ({e}); daemon not running?",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let status = match StatusSnapshot::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[sweep] bad status file {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let age_ms = now_ms().saturating_sub(status.updated_ms);
    print!("{}", status.format_human(age_ms, stale_ms));
    std::process::exit(0);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn default_shards() -> usize {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn main() {
    sweep::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        usage();
    };
    let shards = flag_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(default_shards);
    let worker_exe = sweep::harness_worker_exe().unwrap_or_else(|e| {
        eprintln!("[sweep] cannot resolve worker executable: {e}");
        std::process::exit(1);
    });

    if mode == "status" {
        status_main(&args);
    }
    if mode == "daemon" {
        let Some(spool) = flag_value(&args, "--spool").map(PathBuf::from) else {
            usage();
        };
        let once = args.iter().any(|a| a == "--once");
        let mut err = std::io::stderr();
        if let Err(e) = run_daemon(&spool, &worker_exe, shards, once, &mut err) {
            eprintln!("[sweep] daemon failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if mode != "run" && mode != "resume" {
        usage();
    }

    let Some(request_path) = flag_value(&args, "--request").map(PathBuf::from) else {
        usage();
    };
    let journal_path = flag_value(&args, "--journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| request_path.with_extension("vgj"));
    if mode == "resume" && !journal_path.exists() {
        eprintln!(
            "[sweep] resume: journal {} does not exist (nothing to resume)",
            journal_path.display()
        );
        std::process::exit(2);
    }
    let serial = args.iter().any(|a| a == "--serial");
    let kill_after: Option<usize> =
        flag_value(&args, "--fault-kill-after").and_then(|v| v.parse().ok());
    let kill_count: Option<usize> =
        flag_value(&args, "--fault-kill-count").and_then(|v| v.parse().ok());
    let throttle_ms: Option<u64> = flag_value(&args, "--throttle-ms").and_then(|v| v.parse().ok());
    let out_path = flag_value(&args, "--out").map(PathBuf::from);

    let request_text = std::fs::read_to_string(&request_path).unwrap_or_else(|e| {
        eprintln!("[sweep] read {}: {e}", request_path.display());
        std::process::exit(1);
    });
    let request = SweepRequest::parse(&request_text).unwrap_or_else(|e| {
        eprintln!("[sweep] bad request: {e}");
        std::process::exit(2);
    });

    let mut policy = FaultPolicy::from_env();
    let cache_dir = policy.cache_dir.clone().unwrap_or_else(|| {
        journal_path
            .parent()
            .map(|p| p.to_path_buf())
            .unwrap_or_default()
            .join("sweep-cache")
    });
    policy.cache_dir = Some(cache_dir.clone());
    let sweep = Sweep::build(request, policy).unwrap_or_else(|e| {
        eprintln!("[sweep] {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[sweep] {} jobs, journal {}, {} shard(s){}",
        sweep.plan().len(),
        journal_path.display(),
        if serial { 0 } else { shards },
        if serial { " (serial)" } else { "" },
    );

    let merged = if serial {
        sweep.run_serial()
    } else {
        // Startup self-heal: claims whose holder is gone (lock dead,
        // lease expired) go to the cache quarantine before workers
        // start, so a previous crash never wedges this run.
        match DiskCache::new(&cache_dir).sweep_stale_claims(claim_lease_from_env()) {
            Ok(0) => {}
            Ok(n) => eprintln!("[sweep] swept {n} stale claims"),
            Err(e) => eprintln!("[sweep] stale-claim sweep: {e}"),
        }
        let journal = Journal::new(&journal_path);
        let mut opts = ShardOptions::new(worker_exe, shards, cache_dir);
        opts.kill_after = kill_after;
        opts.kill_count = kill_count;
        opts.throttle_ms = throttle_ms;
        let mut err = std::io::stderr();
        let run = run_sharded(&sweep, &journal, &opts, &mut err).unwrap_or_else(|e| {
            eprintln!("[sweep] sharded run failed: {e}");
            std::process::exit(1);
        });
        if run.killed {
            eprintln!(
                "[sweep] interrupted by --fault-kill-after: {} of {} jobs journaled; \
                 resume with: vanguard-sweep resume --request {} --journal {}",
                run.completed,
                run.total,
                request_path.display(),
                journal_path.display()
            );
            std::process::exit(3);
        }
        if !run.complete() {
            eprintln!(
                "[sweep] incomplete: {} of {} jobs journaled",
                run.completed, run.total
            );
            std::process::exit(4);
        }
        let snapshot = journal.read().unwrap_or_else(|e| {
            eprintln!("[sweep] journal read: {e}");
            std::process::exit(1);
        });
        if !snapshot.duplicate_keys().is_empty() {
            eprintln!(
                "[sweep] journal has duplicate job records: {:?}",
                snapshot.duplicate_keys()
            );
            std::process::exit(1);
        }
        sweep.merged(&snapshot).unwrap_or_else(|missing| {
            eprintln!("[sweep] merge missing {} jobs", missing.len());
            std::process::exit(4);
        })
    };

    match out_path {
        Some(path) => {
            std::fs::write(&path, &merged).unwrap_or_else(|e| {
                eprintln!("[sweep] write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("[sweep] wrote {}", path.display());
        }
        None => {
            let mut stdout = std::io::stdout();
            stdout.write_all(merged.as_bytes()).expect("stdout");
        }
    }
}
